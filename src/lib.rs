//! # vtm — learning-based incentive mechanism for vehicular twin migration
//!
//! Facade crate of the reproduction of *"Learning-based Incentive Mechanism
//! for Task Freshness-aware Vehicular Twin Migration"* (ICDCS 2023,
//! arXiv:2309.04929). It re-exports the workspace crates so that downstream
//! users need a single dependency:
//!
//! * [`core`] — AoTM, the Stackelberg game, the DRL incentive
//!   mechanism and the baseline pricing schemes (the paper's contribution),
//! * [`sim`] — the vehicular-metaverse simulator substrate
//!   (mobility, RSUs, channel, pre-copy live migration),
//! * [`rl`] — the PPO reinforcement-learning substrate, including
//!   the deterministic parallel vectorized rollout engine, the builder-style
//!   trainer and versioned policy snapshots,
//! * [`serve`] — the batched online inference layer serving price quotes
//!   from frozen policy checkpoints,
//! * [`gateway`] — the concurrent online pricing gateway (dynamic
//!   micro-batching, admission control, latency/throughput telemetry),
//! * [`fabric`] — the sharded gateway fabric (deterministic session-hash
//!   routing across independent gateway shards, hot-swap A/B policy arms,
//!   per-arm telemetry),
//! * [`journal`] — the audit-grade request journal (append-only
//!   checksummed frames, state snapshots, deterministic replay with crash
//!   recovery),
//! * [`obs`] — the observability substrate (log₂-µs histograms,
//!   per-request stage tracing, the Prometheus/JSON metrics registry),
//! * [`nn`] — the neural-network substrate,
//! * [`game`] — the generic Stackelberg game-theory substrate.
//!
//! # Example
//!
//! Solve the paper's two-VMU scenario and compare the complete-information
//! equilibrium price with the greedy baseline:
//!
//! ```
//! use vtm::prelude::*;
//!
//! let config = ExperimentConfig::paper_two_vmus();
//! let game = AotmStackelbergGame::from_config(&config);
//! let equilibrium = game.closed_form_equilibrium();
//!
//! let mut greedy = GreedyPricing::new(0, 1.0);
//! let utilities = run_scheme(&mut greedy, &game, 200);
//! let greedy_mean = utilities.iter().sum::<f64>() / utilities.len() as f64;
//! assert!(equilibrium.msp_utility >= greedy_mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vtm_core as core;
pub use vtm_fabric as fabric;
pub use vtm_game as game;
pub use vtm_gateway as gateway;
pub use vtm_journal as journal;
pub use vtm_nn as nn;
pub use vtm_obs as obs;
pub use vtm_rl as rl;
pub use vtm_serve as serve;
pub use vtm_sim as sim;

/// One-stop prelude re-exporting the preludes of every workspace crate.
pub mod prelude {
    pub use vtm_core::prelude::*;
    pub use vtm_fabric::{ArmSpec, Fabric, FabricConfig, FabricError, FabricSnapshot};
    pub use vtm_game::prelude::*;
    pub use vtm_gateway::{
        FaultPlan, Gateway, GatewayConfig, GatewayError, HealthConfig, HealthState,
        JournalBypassPolicy, QuoteTicket, TelemetrySnapshot,
    };
    pub use vtm_journal::{
        replay_journal, JournalError, JournalWriter, ReplayOptions, ReplayReport, ScanMode,
        StateSnapshot,
    };
    pub use vtm_nn::prelude::*;
    pub use vtm_rl::prelude::*;
    pub use vtm_serve::{
        InferenceMode, PricingService, Quote, QuoteRequest, ServeError, ServiceConfig,
    };
    pub use vtm_sim::prelude::*;
}

/// Training-episode budget for the `examples/`: the value of the
/// `VTM_EXAMPLE_EPISODES` environment variable, or `default` when unset or
/// unparsable. CI sets a small budget so every example runs end-to-end in
/// seconds without bit-rotting.
pub fn example_episodes(default: usize) -> usize {
    budget_from_env("VTM_EXAMPLE_EPISODES", default)
}

/// Simulated-duration budget (seconds) for the `examples/`: the value of the
/// `VTM_EXAMPLE_DURATION_S` environment variable, or `default` when unset or
/// unparsable.
pub fn example_duration_s(default: f64) -> f64 {
    match std::env::var("VTM_EXAMPLE_DURATION_S") {
        Ok(v) => v.parse().ok().filter(|&d| d > 0.0).unwrap_or(default),
        Err(_) => default,
    }
}

fn budget_from_env(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or(default),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let cfg = ExperimentConfig::paper_two_vmus();
        assert_eq!(cfg.vmus.len(), 2);
        let link = LinkBudget::default();
        assert!(link.spectral_efficiency() > 0.0);
    }

    #[test]
    fn example_budgets_fall_back_to_defaults() {
        // The variables are unset in the test environment.
        assert_eq!(crate::example_episodes(42), 42);
        assert_eq!(crate::example_duration_s(300.0), 300.0);
    }
}
