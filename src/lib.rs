//! # vtm — learning-based incentive mechanism for vehicular twin migration
//!
//! Facade crate of the reproduction of *"Learning-based Incentive Mechanism
//! for Task Freshness-aware Vehicular Twin Migration"* (ICDCS 2023,
//! arXiv:2309.04929). It re-exports the workspace crates so that downstream
//! users need a single dependency:
//!
//! * [`core`](vtm_core) — AoTM, the Stackelberg game, the DRL incentive
//!   mechanism and the baseline pricing schemes (the paper's contribution),
//! * [`sim`](vtm_sim) — the vehicular-metaverse simulator substrate
//!   (mobility, RSUs, channel, pre-copy live migration),
//! * [`rl`](vtm_rl) — the PPO reinforcement-learning substrate, including
//!   the deterministic parallel vectorized rollout engine,
//! * [`nn`](vtm_nn) — the neural-network substrate,
//! * [`game`](vtm_game) — the generic Stackelberg game-theory substrate.
//!
//! # Example
//!
//! Solve the paper's two-VMU scenario and compare the complete-information
//! equilibrium price with the greedy baseline:
//!
//! ```
//! use vtm::prelude::*;
//!
//! let config = ExperimentConfig::paper_two_vmus();
//! let game = AotmStackelbergGame::from_config(&config);
//! let equilibrium = game.closed_form_equilibrium();
//!
//! let mut greedy = GreedyPricing::new(0, 1.0);
//! let utilities = run_scheme(&mut greedy, &game, 200);
//! let greedy_mean = utilities.iter().sum::<f64>() / utilities.len() as f64;
//! assert!(equilibrium.msp_utility >= greedy_mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vtm_core as core;
pub use vtm_game as game;
pub use vtm_nn as nn;
pub use vtm_rl as rl;
pub use vtm_sim as sim;

/// One-stop prelude re-exporting the preludes of every workspace crate.
pub mod prelude {
    pub use vtm_core::prelude::*;
    pub use vtm_game::prelude::*;
    pub use vtm_nn::prelude::*;
    pub use vtm_rl::prelude::*;
    pub use vtm_sim::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let cfg = ExperimentConfig::paper_two_vmus();
        assert_eq!(cfg.vmus.len(), 2);
        let link = LinkBudget::default();
        assert!(link.spectral_efficiency() > 0.0);
    }
}
