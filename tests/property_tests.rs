//! Randomized property tests over the core invariants of the system, spanning
//! the game theory, the DRL substrate and the simulator.
//!
//! These were originally written with `proptest`; the offline build has no
//! access to crates.io, so each property is now checked over a fixed number
//! of pseudo-random cases drawn from a deterministically seeded generator.
//! Failures therefore reproduce exactly across runs and machines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vtm::prelude::*;

/// Runs `check` over `n` independent deterministic cases.
fn cases(n: usize, seed: u64, mut check: impl FnMut(&mut StdRng)) {
    for case in 0..n as u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        check(&mut rng);
    }
}

fn link() -> LinkBudget {
    LinkBudget::default()
}

/// Eq. (8) really is the maximiser of the VMU utility: no other bandwidth
/// in a wide range does better.
#[test]
fn vmu_best_response_maximises_utility() {
    cases(64, 0x01, |rng| {
        let data_mb = rng.gen_range(50.0..400.0);
        let alpha = rng.gen_range(1.0..30.0);
        let price = rng.gen_range(6.0..60.0);
        let other_bandwidth = rng.gen_range(0.001..5.0);
        let vmu = VmuProfile::new(0, data_mb, alpha);
        let l = link();
        let best = vmu.best_response(price, &l);
        let u_best = vmu.utility(best, price, &l);
        let u_other = vmu.utility(other_bandwidth, price, &l);
        assert!(
            u_best + 1e-9 >= u_other,
            "best response {best} utility {u_best} beaten by {other_bandwidth} with {u_other}"
        );
    });
}

/// Demand is non-increasing in price (the monopoly demand curve).
#[test]
fn vmu_demand_is_non_increasing_in_price() {
    cases(64, 0x02, |rng| {
        let data_mb = rng.gen_range(50.0..400.0);
        let alpha = rng.gen_range(1.0..30.0);
        let price = rng.gen_range(6.0..50.0);
        let bump = rng.gen_range(0.1..20.0);
        let vmu = VmuProfile::new(0, data_mb, alpha);
        let l = link();
        assert!(vmu.best_response(price + bump, &l) <= vmu.best_response(price, &l) + 1e-12);
    });
}

/// AoTM decreases when bandwidth increases and increases with data size.
#[test]
fn aotm_monotonicity() {
    cases(64, 0x03, |rng| {
        let data = rng.gen_range(0.5..4.0);
        let bandwidth = rng.gen_range(0.01..10.0);
        let extra = rng.gen_range(0.01..5.0);
        let l = link();
        assert!(aotm(data, bandwidth + extra, &l).0 < aotm(data, bandwidth, &l).0);
        assert!(aotm(data + extra, bandwidth, &l).0 > aotm(data, bandwidth, &l).0);
    });
}

/// The closed-form equilibrium price always lies inside [C, p_max], never
/// sells more than B_max and gives every player a non-negative utility.
#[test]
fn equilibrium_respects_problem_two_constraints() {
    cases(64, 0x04, |rng| {
        let n = rng.gen_range(1..6usize);
        let cost = rng.gen_range(1.0..12.0);
        let alpha = rng.gen_range(2.0..25.0);
        let data_mb = rng.gen_range(60.0..350.0);
        let bmax = rng.gen_range(0.05..60.0);
        let config = ExperimentConfig {
            vmus: (0..n).map(|i| VmuProfile::new(i, data_mb, alpha)).collect(),
            market: MarketConfig {
                unit_cost: cost,
                max_bandwidth_mhz: bmax,
                max_price: cost + 60.0,
            },
            link: link(),
            drl: DrlConfig::fast(),
        };
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();
        assert!(eq.price >= cost - 1e-9);
        assert!(eq.price <= cost + 60.0 + 1e-9);
        assert!(eq.total_bandwidth_mhz() <= bmax + 1e-9);
        assert!(eq.msp_utility >= -1e-9);
        for u in &eq.vmu_utilities {
            assert!(*u >= -1e-9, "negative VMU utility {u}");
        }
    });
}

/// The closed-form equilibrium is never beaten by any price on a fine grid
/// (the leader's no-deviation half of Definition 1).
#[test]
fn no_price_beats_the_closed_form_equilibrium() {
    cases(64, 0x05, |rng| {
        let cost = rng.gen_range(2.0..10.0);
        let alpha1 = rng.gen_range(2.0..20.0);
        let alpha2 = rng.gen_range(2.0..20.0);
        let d1 = rng.gen_range(80.0..300.0);
        let d2 = rng.gen_range(80.0..300.0);
        let config = ExperimentConfig {
            vmus: vec![
                VmuProfile::new(0, d1, alpha1),
                VmuProfile::new(1, d2, alpha2),
            ],
            market: MarketConfig {
                unit_cost: cost,
                max_bandwidth_mhz: 50.0,
                max_price: 50.0,
            },
            link: link(),
            drl: DrlConfig::fast(),
        };
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();
        for i in 0..=200 {
            let p = cost + (50.0 - cost) * i as f64 / 200.0;
            assert!(
                game.msp_utility_at(p) <= eq.msp_utility + 1e-6 * eq.msp_utility.abs().max(1.0),
                "price {p} beats the equilibrium ({} > {})",
                game.msp_utility_at(p),
                eq.msp_utility
            );
        }
    });
}

/// Discounted returns with bootstrap satisfy the Bellman-style recursion
/// G_k = r_k + gamma * G_{k+1}.
#[test]
fn discounted_returns_satisfy_recursion() {
    cases(64, 0x06, |rng| {
        let len = rng.gen_range(1..40usize);
        let rewards: Vec<f64> = (0..len).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let gamma = rng.gen_range(0.0..1.0);
        let terminal = rng.gen_range(-5.0..5.0);
        let returns = discounted_returns(&rewards, gamma, terminal);
        for k in 0..rewards.len() {
            let next = if k + 1 < rewards.len() {
                returns[k + 1]
            } else {
                terminal
            };
            assert!((returns[k] - (rewards[k] + gamma * next)).abs() < 1e-9);
        }
    });
}

/// With lambda = 1, GAE value targets equal the bootstrapped discounted
/// returns (the paper's Eq. (18) estimator).
#[test]
fn gae_lambda_one_matches_monte_carlo() {
    cases(64, 0x07, |rng| {
        let len = rng.gen_range(1..30usize);
        let rewards: Vec<f64> = (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let gamma = rng.gen_range(0.1..1.0);
        let terminal = rng.gen_range(-2.0..2.0);
        let (_, targets) = gae_advantages(&rewards, &values, terminal, gamma, 1.0);
        let returns = discounted_returns(&rewards, gamma, terminal);
        for (t, r) in targets.iter().zip(returns.iter()) {
            assert!((t - r).abs() < 1e-9);
        }
    });
}

/// Pre-copy migration always terminates with an AoTM at least as large as
/// the analytic single-pass bound, and converges when dirtying is slower
/// than the link.
#[test]
fn precopy_migration_terminates_and_dominates_analytic_bound() {
    cases(64, 0x08, |rng| {
        let size_mb = rng.gen_range(20.0..400.0);
        let bandwidth_mhz = rng.gen_range(0.5..20.0);
        let dirty = rng.gen_range(0.0..5.0);
        let l = link();
        let twin = VehicularTwin::new(
            TwinId(0),
            TwinDataProfile::from_total_mb(size_mb),
            dirty,
            1.0,
            5.0,
        );
        let bandwidth_hz = bandwidth_mhz * 1e6;
        let report = simulate_precopy_migration(&twin, bandwidth_hz, &l, &PreCopyConfig::default());
        // Cases where the dirty rate outruns the link are allowed to fail the
        // migration; the invariant only concerns successful runs.
        let Ok(report) = report else { return };
        let analytic = analytic_aotm_seconds(size_mb, bandwidth_hz, &l);
        assert!(report.aotm_s.is_finite());
        assert!(report.aotm_s + 1e-9 >= analytic);
        assert!(report.total_transferred_mb + 1e-9 >= size_mb);
        assert!(report.downtime_s >= 0.0);
    });
}

/// The OFDMA pool never over-allocates and releasing returns exactly what
/// was granted.
#[test]
fn ofdma_allocation_conserves_bandwidth() {
    cases(64, 0x09, |rng| {
        let len = rng.gen_range(1..12usize);
        let requests: Vec<f64> = (0..len).map(|_| rng.gen_range(0.1..20.0)).collect();
        let mut channel = OfdmaChannel::with_total_bandwidth(50e6, 500, link());
        let total = channel.total_bandwidth_hz();
        let mut granted = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            if let Ok(g) = channel.allocate(i as u64, r * 1e6) {
                granted.push((i as u64, g));
            }
        }
        let allocated: f64 = granted.iter().map(|(_, g)| g).sum();
        assert!(allocated <= total + 1e-6);
        assert!((channel.free_bandwidth_hz() - (total - allocated)).abs() < 1e-6);
        for (id, g) in granted {
            let freed = channel.release(id).unwrap();
            assert!((freed - g).abs() < 1e-6);
        }
        assert!((channel.free_bandwidth_hz() - total).abs() < 1e-6);
    });
}

/// Summary statistics are consistent: min <= median <= p95 <= max and the
/// mean lies within [min, max].
#[test]
fn summary_statistics_are_ordered() {
    cases(64, 0x0A, |rng| {
        let len = rng.gen_range(1..200usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let s = Summary::from_values(values.iter().copied());
        assert_eq!(s.count, values.len());
        assert!(s.min <= s.median + 1e-12);
        assert!(s.median <= s.p95 + 1e-12);
        assert!(s.p95 <= s.max + 1e-12);
        assert!(s.mean >= s.min - 1e-12 && s.mean <= s.max + 1e-12);
    });
}

/// The diagonal Gaussian log-density never exceeds its value at the mean.
#[test]
fn gaussian_log_prob_peaks_at_mean() {
    cases(64, 0x0B, |rng| {
        let dim = rng.gen_range(1..4usize);
        let mean: Vec<f64> = (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let log_std: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let offset: Vec<f64> = (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let dist = DiagGaussian::new(mean.clone(), log_std);
        let shifted: Vec<f64> = mean.iter().zip(&offset).map(|(m, o)| m + o).collect();
        assert!(dist.log_prob(&mean) + 1e-12 >= dist.log_prob(&shifted));
    });
}
