//! Property-based tests over the core invariants of the system, spanning the
//! game theory, the DRL substrate and the simulator.

use proptest::prelude::*;
use vtm::prelude::*;

fn link() -> LinkBudget {
    LinkBudget::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. (8) really is the maximiser of the VMU utility: no other bandwidth
    /// in a wide range does better.
    #[test]
    fn vmu_best_response_maximises_utility(
        data_mb in 50.0f64..400.0,
        alpha in 1.0f64..30.0,
        price in 6.0f64..60.0,
        other_bandwidth in 0.001f64..5.0,
    ) {
        let vmu = VmuProfile::new(0, data_mb, alpha);
        let l = link();
        let best = vmu.best_response(price, &l);
        let u_best = vmu.utility(best, price, &l);
        let u_other = vmu.utility(other_bandwidth, price, &l);
        prop_assert!(u_best + 1e-9 >= u_other,
            "best response {best} utility {u_best} beaten by {other_bandwidth} with {u_other}");
    }

    /// Demand is non-increasing in price (the monopoly demand curve).
    #[test]
    fn vmu_demand_is_non_increasing_in_price(
        data_mb in 50.0f64..400.0,
        alpha in 1.0f64..30.0,
        price in 6.0f64..50.0,
        bump in 0.1f64..20.0,
    ) {
        let vmu = VmuProfile::new(0, data_mb, alpha);
        let l = link();
        prop_assert!(vmu.best_response(price + bump, &l) <= vmu.best_response(price, &l) + 1e-12);
    }

    /// AoTM decreases when bandwidth increases and increases with data size.
    #[test]
    fn aotm_monotonicity(
        data in 0.5f64..4.0,
        bandwidth in 0.01f64..10.0,
        extra in 0.01f64..5.0,
    ) {
        let l = link();
        prop_assert!(aotm(data, bandwidth + extra, &l).0 < aotm(data, bandwidth, &l).0);
        prop_assert!(aotm(data + extra, bandwidth, &l).0 > aotm(data, bandwidth, &l).0);
    }

    /// The closed-form equilibrium price always lies inside [C, p_max], never
    /// sells more than B_max and gives every player a non-negative utility.
    #[test]
    fn equilibrium_respects_problem_two_constraints(
        n in 1usize..6,
        cost in 1.0f64..12.0,
        alpha in 2.0f64..25.0,
        data_mb in 60.0f64..350.0,
        bmax in 0.05f64..60.0,
    ) {
        let config = ExperimentConfig {
            vmus: (0..n).map(|i| VmuProfile::new(i, data_mb, alpha)).collect(),
            market: MarketConfig { unit_cost: cost, max_bandwidth_mhz: bmax, max_price: cost + 60.0 },
            link: link(),
            drl: DrlConfig::fast(),
        };
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();
        prop_assert!(eq.price >= cost - 1e-9);
        prop_assert!(eq.price <= cost + 60.0 + 1e-9);
        prop_assert!(eq.total_bandwidth_mhz() <= bmax + 1e-9);
        prop_assert!(eq.msp_utility >= -1e-9);
        for u in &eq.vmu_utilities {
            prop_assert!(*u >= -1e-9, "negative VMU utility {u}");
        }
    }

    /// The closed-form equilibrium is never beaten by any price on a fine grid
    /// (the leader's no-deviation half of Definition 1).
    #[test]
    fn no_price_beats_the_closed_form_equilibrium(
        cost in 2.0f64..10.0,
        alpha1 in 2.0f64..20.0,
        alpha2 in 2.0f64..20.0,
        d1 in 80.0f64..300.0,
        d2 in 80.0f64..300.0,
    ) {
        let config = ExperimentConfig {
            vmus: vec![VmuProfile::new(0, d1, alpha1), VmuProfile::new(1, d2, alpha2)],
            market: MarketConfig { unit_cost: cost, max_bandwidth_mhz: 50.0, max_price: 50.0 },
            link: link(),
            drl: DrlConfig::fast(),
        };
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();
        for i in 0..=200 {
            let p = cost + (50.0 - cost) * i as f64 / 200.0;
            prop_assert!(game.msp_utility_at(p) <= eq.msp_utility + 1e-6 * eq.msp_utility.abs().max(1.0),
                "price {p} beats the equilibrium ({} > {})", game.msp_utility_at(p), eq.msp_utility);
        }
    }

    /// Discounted returns with bootstrap satisfy the Bellman-style recursion
    /// G_k = r_k + gamma * G_{k+1}.
    #[test]
    fn discounted_returns_satisfy_recursion(
        rewards in prop::collection::vec(-5.0f64..5.0, 1..40),
        gamma in 0.0f64..1.0,
        terminal in -5.0f64..5.0,
    ) {
        let returns = discounted_returns(&rewards, gamma, terminal);
        for k in 0..rewards.len() {
            let next = if k + 1 < rewards.len() { returns[k + 1] } else { terminal };
            prop_assert!((returns[k] - (rewards[k] + gamma * next)).abs() < 1e-9);
        }
    }

    /// With lambda = 1, GAE value targets equal the bootstrapped discounted
    /// returns (the paper's Eq. (18) estimator).
    #[test]
    fn gae_lambda_one_matches_monte_carlo(
        rewards in prop::collection::vec(-2.0f64..2.0, 1..30),
        values in prop::collection::vec(-2.0f64..2.0, 30usize..31),
        gamma in 0.1f64..1.0,
        terminal in -2.0f64..2.0,
    ) {
        let values = &values[..rewards.len()];
        let (_, targets) = gae_advantages(&rewards, values, terminal, gamma, 1.0);
        let returns = discounted_returns(&rewards, gamma, terminal);
        for (t, r) in targets.iter().zip(returns.iter()) {
            prop_assert!((t - r).abs() < 1e-9);
        }
    }

    /// Pre-copy migration always terminates with an AoTM at least as large as
    /// the analytic single-pass bound, and converges when dirtying is slower
    /// than the link.
    #[test]
    fn precopy_migration_terminates_and_dominates_analytic_bound(
        size_mb in 20.0f64..400.0,
        bandwidth_mhz in 0.5f64..20.0,
        dirty in 0.0f64..5.0,
    ) {
        let l = link();
        let twin = VehicularTwin::new(
            TwinId(0),
            TwinDataProfile::from_total_mb(size_mb),
            dirty,
            1.0,
            5.0,
        );
        let bandwidth_hz = bandwidth_mhz * 1e6;
        let report = simulate_precopy_migration(&twin, bandwidth_hz, &l, &PreCopyConfig::default());
        prop_assume!(report.is_ok());
        let report = report.unwrap();
        let analytic = analytic_aotm_seconds(size_mb, bandwidth_hz, &l);
        prop_assert!(report.aotm_s.is_finite());
        prop_assert!(report.aotm_s + 1e-9 >= analytic);
        prop_assert!(report.total_transferred_mb + 1e-9 >= size_mb);
        prop_assert!(report.downtime_s >= 0.0);
    }

    /// The OFDMA pool never over-allocates and releasing returns exactly what
    /// was granted.
    #[test]
    fn ofdma_allocation_conserves_bandwidth(
        requests in prop::collection::vec(0.1f64..20.0, 1..12),
    ) {
        let mut channel = OfdmaChannel::with_total_bandwidth(50e6, 500, link());
        let total = channel.total_bandwidth_hz();
        let mut granted = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            if let Ok(g) = channel.allocate(i as u64, r * 1e6) {
                granted.push((i as u64, g));
            }
        }
        let allocated: f64 = granted.iter().map(|(_, g)| g).sum();
        prop_assert!(allocated <= total + 1e-6);
        prop_assert!((channel.free_bandwidth_hz() - (total - allocated)).abs() < 1e-6);
        for (id, g) in granted {
            let freed = channel.release(id).unwrap();
            prop_assert!((freed - g).abs() < 1e-6);
        }
        prop_assert!((channel.free_bandwidth_hz() - total).abs() < 1e-6);
    }

    /// Summary statistics are consistent: min <= median <= p95 <= max and the
    /// mean lies within [min, max].
    #[test]
    fn summary_statistics_are_ordered(
        values in prop::collection::vec(-100.0f64..100.0, 1..200),
    ) {
        let s = Summary::from_values(values.iter().copied());
        prop_assert_eq!(s.count, values.len());
        prop_assert!(s.min <= s.median + 1e-12);
        prop_assert!(s.median <= s.p95 + 1e-12);
        prop_assert!(s.p95 <= s.max + 1e-12);
        prop_assert!(s.mean >= s.min - 1e-12 && s.mean <= s.max + 1e-12);
    }

    /// The diagonal Gaussian log-density never exceeds its value at the mean.
    #[test]
    fn gaussian_log_prob_peaks_at_mean(
        mean in prop::collection::vec(-3.0f64..3.0, 1..4),
        log_std in prop::collection::vec(-1.0f64..1.0, 4usize..5),
        offset in prop::collection::vec(-3.0f64..3.0, 4usize..5),
    ) {
        let dim = mean.len();
        let dist = DiagGaussian::new(mean.clone(), log_std[..dim].to_vec());
        let shifted: Vec<f64> = mean.iter().zip(&offset[..dim]).map(|(m, o)| m + o).collect();
        prop_assert!(dist.log_prob(&mean) + 1e-12 >= dist.log_prob(&shifted));
    }
}
