//! Integration tests: Algorithm 1 training, scheme ordering and the
//! simulator bridge, exercised across crate boundaries.

use vtm::prelude::*;

fn fast_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        drl: DrlConfig {
            episodes: 40,
            rounds_per_episode: 40,
            learning_rate: 3e-4,
            seed,
            ..DrlConfig::default()
        },
        ..ExperimentConfig::paper_two_vmus()
    }
}

#[test]
fn trained_mechanism_reaches_most_of_the_equilibrium_utility() {
    let mut mechanism =
        IncentiveMechanism::with_reward_mode(fast_config(1), RewardMode::NormalizedUtility);
    mechanism.train();
    let eval = mechanism.evaluate(30);
    assert!(
        eval.equilibrium_ratio > 0.7,
        "learned policy reaches only {:.2} of the equilibrium utility",
        eval.equilibrium_ratio
    );
}

#[test]
fn training_returns_are_bounded_by_rounds_per_episode() {
    // The Eq. (12) reward is an indicator, so an episode's return can never
    // exceed the number of rounds (the paper's Fig. 2(a) converges towards it).
    let mut mechanism = IncentiveMechanism::new(fast_config(2));
    let history = mechanism.train_episodes(10);
    for log in &history.episodes {
        assert!(log.episode_return >= 0.0);
        assert!(log.episode_return <= 40.0 + 1e-9);
    }
    assert_eq!(history.episodes.len(), 10);
}

#[test]
fn sparse_reward_training_improves_or_holds_the_episode_return() {
    let mut mechanism = IncentiveMechanism::new(fast_config(3));
    let history = mechanism.train_episodes(60);
    let early = history.episodes[..10]
        .iter()
        .map(|e| e.episode_return)
        .sum::<f64>()
        / 10.0;
    let late = history.tail_mean(10, |e| e.episode_return);
    assert!(
        late >= early * 0.8,
        "episode return regressed: early {early:.1} late {late:.1}"
    );
}

#[test]
fn scheme_ordering_matches_the_paper() {
    // Fig. 3(a): proposed (≈ equilibrium) > greedy > random in MSP utility.
    let game = AotmStackelbergGame::from_config(&ExperimentConfig::paper_two_vmus());
    let rounds = 300;
    let mean = |xs: Vec<f64>| xs.iter().sum::<f64>() / xs.len() as f64;
    let eq = mean(run_scheme(&mut EquilibriumPricing, &game, rounds));
    let greedy = mean(run_scheme(&mut GreedyPricing::new(5, 1.0), &game, rounds));
    let random = mean(run_scheme(&mut RandomPricing::new(5), &game, rounds));
    assert!(eq >= greedy, "equilibrium {eq} vs greedy {greedy}");
    assert!(greedy > random, "greedy {greedy} vs random {random}");
}

#[test]
fn trained_drl_scheme_beats_the_random_baseline() {
    let mut mechanism =
        IncentiveMechanism::with_reward_mode(fast_config(4), RewardMode::NormalizedUtility);
    mechanism.train();
    let game = mechanism.game().clone();
    let mut drl = mechanism.into_scheme();
    let rounds = 100;
    let mean = |xs: Vec<f64>| xs.iter().sum::<f64>() / xs.len() as f64;
    let drl_mean = mean(run_scheme(&mut drl, &game, rounds));
    let random_mean = mean(run_scheme(&mut RandomPricing::new(9), &game, rounds));
    assert!(
        drl_mean > random_mean,
        "drl {drl_mean} vs random {random_mean}"
    );
}

#[test]
fn history_length_ablation_environments_have_consistent_dimensions() {
    for history_length in [1usize, 2, 4, 8] {
        let mut config = fast_config(5);
        config.drl.history_length = history_length;
        let mechanism = IncentiveMechanism::new(config);
        // Observation = L * (price + one demand per VMU).
        let expected = history_length * (1 + mechanism.config().vmus.len());
        assert_eq!(mechanism.agent().config().obs_dim, expected);
    }
}

#[test]
fn stackelberg_priced_migrations_succeed_in_the_simulator() {
    let sim_config = MetaverseConfig {
        duration_s: 300.0,
        ..MetaverseConfig::default()
    };
    let mut sim = MetaverseSim::highway_scenario(sim_config, 4, 150.0, 8.0);
    let mut allocator = StackelbergAllocator::new(
        MarketConfig::default(),
        LinkBudget::default(),
        PricingRule::StackelbergPerMigration,
    )
    .with_min_bandwidth_mhz(2.0);
    let report = sim.run(&mut allocator);
    assert!(!report.migrations.is_empty());
    assert_eq!(report.failed_migrations, 0);
    assert!(report.aotm_summary.mean > 0.0);
    // The packet-level AoTM must be at least the analytic lower bound for the
    // granted bandwidth (pre-copy re-transfers dirty pages, never less).
    for record in &report.migrations {
        let analytic = analytic_aotm_seconds(150.0, record.bandwidth_hz, &LinkBudget::default());
        assert!(record.aotm_s.unwrap() + 1e-9 >= analytic * 0.999);
    }
}

#[test]
fn analytic_and_simulated_aotm_agree_without_dirty_pages() {
    let link = LinkBudget::default();
    let twin = VehicularTwin::new(
        TwinId(0),
        TwinDataProfile::from_total_mb(120.0),
        0.0, // no dirtying: the pre-copy pipeline degenerates to a single pass
        1.0,
        5.0,
    );
    let bandwidth_hz = 4e6;
    let report =
        simulate_precopy_migration(&twin, bandwidth_hz, &link, &PreCopyConfig::default()).unwrap();
    let analytic = analytic_aotm_seconds(120.0, bandwidth_hz, &link);
    assert!((report.aotm_s - analytic).abs() < 1e-9);
}
