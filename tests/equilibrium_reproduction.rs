//! Integration tests: the closed-form Stackelberg equilibrium reproduces the
//! quantitative anchors reported in the paper's §V-B.

use vtm::prelude::*;

fn game_with_cost(cost: f64) -> AotmStackelbergGame {
    let mut config = ExperimentConfig::paper_two_vmus();
    config.market.unit_cost = cost;
    AotmStackelbergGame::from_config(&config)
}

#[test]
fn price_at_cost_five_is_about_25() {
    let eq = game_with_cost(5.0).closed_form_equilibrium();
    assert!((eq.price - 25.0).abs() < 1.0, "price {}", eq.price);
}

#[test]
fn price_at_cost_nine_is_about_34() {
    let eq = game_with_cost(9.0).closed_form_equilibrium();
    assert!((eq.price - 34.0).abs() < 1.0, "price {}", eq.price);
}

#[test]
fn two_identical_vmus_yield_msp_utility_about_7() {
    let game = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(2));
    let eq = game.closed_form_equilibrium();
    assert!(
        (eq.msp_utility - 7.03).abs() < 0.1,
        "MSP utility {}",
        eq.msp_utility
    );
}

#[test]
fn msp_utility_grows_roughly_threefold_from_two_to_six_vmus() {
    // Paper: 7.03 at N = 2 and 20.35 at N = 6 (about 2.9x).
    let two = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(2))
        .closed_form_equilibrium();
    let six = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(6))
        .closed_form_equilibrium();
    let ratio = six.msp_utility / two.msp_utility;
    assert!(
        (2.5..=3.2).contains(&ratio),
        "utility ratio N=6 / N=2 is {ratio}"
    );
}

#[test]
fn equilibrium_price_is_flat_in_n_without_a_binding_cap() {
    // With identical VMUs and a slack bandwidth cap, the interior optimum is
    // independent of N (the paper's "price remains unchanged initially").
    let mut last: Option<f64> = None;
    for n in 1..=6 {
        let eq = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(n))
            .closed_form_equilibrium();
        if let Some(p) = last {
            assert!(
                (eq.price - p).abs() < 1e-6,
                "price changed with N: {} vs {p}",
                eq.price
            );
        }
        last = Some(eq.price);
    }
}

#[test]
fn binding_bandwidth_cap_raises_price_and_cuts_per_vmu_bandwidth() {
    // The paper's explanation of Fig. 3(c)/(d): once bandwidth becomes scarce
    // the MSP raises the price and the average purchased bandwidth drops.
    let mut cfg = ExperimentConfig::paper_n_vmus(6);
    cfg.market.max_bandwidth_mhz = 0.4; // make the cap bite
    let capped = AotmStackelbergGame::from_config(&cfg).closed_form_equilibrium();
    let slack = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(6))
        .closed_form_equilibrium();
    assert!(capped.price > slack.price);
    assert!(capped.average_bandwidth_mhz() < slack.average_bandwidth_mhz());
    assert!(capped.total_bandwidth_mhz() <= 0.4 + 1e-9);
}

#[test]
fn average_vmu_utility_declines_as_population_grows_under_a_cap() {
    // Paper: the average VMU utility drops by about 12.8% from N = 2 to N = 6.
    // The decline appears once bandwidth competition matters, i.e. with a cap
    // tight enough to bind at larger N.
    let utility_at = |n: usize, cap: f64| {
        let mut cfg = ExperimentConfig::paper_n_vmus(n);
        cfg.market.max_bandwidth_mhz = cap;
        AotmStackelbergGame::from_config(&cfg)
            .closed_form_equilibrium()
            .average_vmu_utility()
    };
    let cap = 0.45;
    let at2 = utility_at(2, cap);
    let at6 = utility_at(6, cap);
    assert!(
        at6 < at2,
        "average VMU utility must decline: {at2} -> {at6}"
    );
}

#[test]
fn closed_form_and_numerical_equilibria_agree_across_costs_and_populations() {
    for cost in [5.0, 7.0, 9.0] {
        for n in [1, 3, 5] {
            let mut cfg = ExperimentConfig::paper_n_vmus(n);
            cfg.market.unit_cost = cost;
            let game = AotmStackelbergGame::from_config(&cfg);
            let closed = game.closed_form_equilibrium();
            let numeric = game.numerical_equilibrium();
            assert!(
                (closed.msp_utility - numeric.msp_utility).abs()
                    < 1e-3 * closed.msp_utility.abs().max(1.0),
                "cost {cost}, n {n}: closed {} vs numeric {}",
                closed.msp_utility,
                numeric.msp_utility
            );
        }
    }
}

#[test]
fn equilibrium_satisfies_definition_one_for_heterogeneous_vmus() {
    let mut config = ExperimentConfig::paper_two_vmus();
    config.vmus = vec![
        VmuProfile::new(0, 300.0, 20.0),
        VmuProfile::new(1, 100.0, 5.0),
        VmuProfile::new(2, 150.0, 12.0),
    ];
    let game = AotmStackelbergGame::from_config(&config);
    let eq = game.closed_form_equilibrium();
    let report = verify_equilibrium(
        &game,
        eq.price,
        &eq.demands_mhz,
        201,
        &SolveOptions::default(),
    );
    assert!(
        report.is_equilibrium(1e-2 * eq.msp_utility.max(1.0)),
        "{report:?}"
    );
}
