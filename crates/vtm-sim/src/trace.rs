//! Synthetic vehicle-trace generation.
//!
//! The paper has no real vehicle traces; to exercise the end-to-end simulator
//! on reproducible, varied workloads this module generates synthetic trips
//! (entry time, entry position, speed, twin size, immersion coefficient) from
//! configurable distributions. Traces are serialisable so that an experiment
//! can be re-run on the exact same workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metaverse::VmuEntry;
use crate::mobility::{Position, Velocity};
use crate::twin::{TwinId, VehicularTwin};
use crate::vehicle::{Vehicle, VehicleId};

/// A closed interval used for uniform sampling of trace parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Lower bound (inclusive).
    pub min: f64,
    /// Upper bound (inclusive).
    pub max: f64,
}

impl Range {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either bound is not finite.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min <= max,
            "range requires finite min <= max"
        );
        Self { min, max }
    }

    /// A degenerate range containing a single value.
    pub fn constant(value: f64) -> Self {
        Self::new(value, value)
    }

    /// Samples uniformly from the range.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }

    /// Whether `value` lies inside the range.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.min && value <= self.max
    }
}

/// Configuration of the synthetic trace generator.
///
/// Defaults match the paper's §V-A population: twin sizes of 100–300 MB and
/// immersion coefficients of 5–20.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Number of trips (vehicles / VMUs) to generate.
    pub trips: usize,
    /// Entry time of each trip (seconds).
    pub entry_time_s: Range,
    /// Entry position along the road (metres).
    pub entry_x_m: Range,
    /// Cruise speed (m/s).
    pub speed_mps: Range,
    /// Twin size (MB), paper: 100–300 MB.
    pub twin_size_mb: Range,
    /// Immersion coefficient α, paper: 5–20.
    pub alpha: Range,
    /// Seed of the generator.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            trips: 6,
            entry_time_s: Range::new(0.0, 60.0),
            entry_x_m: Range::new(0.0, 500.0),
            speed_mps: Range::new(15.0, 35.0),
            twin_size_mb: Range::new(100.0, 300.0),
            alpha: Range::new(5.0, 20.0),
            seed: 0,
        }
    }
}

/// One generated trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trip {
    /// Trip / vehicle / VMU identifier.
    pub id: usize,
    /// Time the vehicle enters the corridor (seconds).
    pub entry_time_s: f64,
    /// Entry position along the road (metres).
    pub entry_x_m: f64,
    /// Cruise speed (m/s).
    pub speed_mps: f64,
    /// Twin size (MB).
    pub twin_size_mb: f64,
    /// Immersion coefficient α.
    pub alpha: f64,
}

impl Trip {
    /// Whether the vehicle has entered the scenario by time `now_s`.
    pub fn has_entered(&self, now_s: f64) -> bool {
        now_s >= self.entry_time_s
    }

    /// The VMU profile parameters of the trip as a `(data size MB, alpha)`
    /// pair, for callers building game-side populations from a trace.
    pub fn market_profile(&self) -> (f64, f64) {
        (self.twin_size_mb, self.alpha)
    }
}

/// A generated trace: a reproducible collection of trips.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// The trips, ordered by identifier.
    pub trips: Vec<Trip>,
}

impl Trace {
    /// Generates a trace from the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.trips` is zero.
    pub fn generate(config: &TraceConfig) -> Self {
        assert!(config.trips > 0, "a trace needs at least one trip");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let trips = (0..config.trips)
            .map(|id| Trip {
                id,
                entry_time_s: config.entry_time_s.sample(&mut rng),
                entry_x_m: config.entry_x_m.sample(&mut rng),
                speed_mps: config.speed_mps.sample(&mut rng),
                twin_size_mb: config.twin_size_mb.sample(&mut rng),
                alpha: config.alpha.sample(&mut rng),
            })
            .collect();
        Self { trips }
    }

    /// Number of trips.
    pub fn len(&self) -> usize {
        self.trips.len()
    }

    /// Whether the trace has no trips.
    pub fn is_empty(&self) -> bool {
        self.trips.is_empty()
    }

    /// The trips that have entered the scenario by time `now_s`, in trip
    /// order (the same [`Trip::has_entered`] filter the trace-driven
    /// scenario engine applies to its live vehicle states): as the clock
    /// advances, the population grows from the early arrivals to the full
    /// trace.
    pub fn active_at(&self, now_s: f64) -> Vec<&Trip> {
        self.trips.iter().filter(|t| t.has_entered(now_s)).collect()
    }

    /// The latest entry time of any trip (0 for an empty trace): after this
    /// time the full population is on the road.
    pub fn entry_horizon_s(&self) -> f64 {
        self.trips
            .iter()
            .map(|t| t.entry_time_s)
            .fold(0.0, f64::max)
    }

    /// Converts the trace into the VMU entries expected by
    /// [`MetaverseSim::new`](crate::metaverse::MetaverseSim::new). Entry
    /// times are ignored by the current time-stepped simulator (all vehicles
    /// are present from the start) but preserved in the trace for future use.
    pub fn to_vmu_entries(&self) -> Vec<VmuEntry> {
        self.trips
            .iter()
            .map(|trip| VmuEntry {
                vehicle: Vehicle::new(
                    VehicleId(trip.id),
                    TwinId(trip.id),
                    Position::new(trip.entry_x_m, 0.0),
                    Velocity::new(trip.speed_mps, 0.0),
                ),
                twin: VehicularTwin::with_size_and_alpha(
                    TwinId(trip.id),
                    trip.twin_size_mb,
                    trip.alpha,
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_sampling_respects_bounds() {
        let range = Range::new(2.0, 5.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let v = range.sample(&mut rng);
            assert!(range.contains(v));
        }
        assert_eq!(Range::constant(3.0).sample(&mut rng), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite min <= max")]
    fn inverted_range_rejected() {
        let _ = Range::new(5.0, 2.0);
    }

    #[test]
    fn trace_generation_is_reproducible_and_within_ranges() {
        let config = TraceConfig {
            trips: 20,
            seed: 11,
            ..TraceConfig::default()
        };
        let a = Trace::generate(&config);
        let b = Trace::generate(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert!(!a.is_empty());
        for trip in &a.trips {
            assert!(config.twin_size_mb.contains(trip.twin_size_mb));
            assert!(config.alpha.contains(trip.alpha));
            assert!(config.speed_mps.contains(trip.speed_mps));
            assert!(config.entry_time_s.contains(trip.entry_time_s));
        }
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = Trace::generate(&TraceConfig {
            seed: 1,
            ..TraceConfig::default()
        });
        let b = Trace::generate(&TraceConfig {
            seed: 2,
            ..TraceConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn trace_converts_to_vmu_entries() {
        let trace = Trace::generate(&TraceConfig {
            trips: 4,
            ..TraceConfig::default()
        });
        let entries = trace.to_vmu_entries();
        assert_eq!(entries.len(), 4);
        for (trip, entry) in trace.trips.iter().zip(entries.iter()) {
            assert!((entry.twin.size_mb() - trip.twin_size_mb).abs() < 1e-9);
            assert!((entry.vehicle.velocity().vx - trip.speed_mps).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_clone_round_trip() {
        let trace = Trace::generate(&TraceConfig::default());
        let back = trace.clone();
        assert_eq!(trace.len(), back.len());
        for (a, b) in trace.trips.iter().zip(back.trips.iter()) {
            assert_eq!(a.id, b.id);
            assert!((a.twin_size_mb - b.twin_size_mb).abs() < 1e-9);
            assert!((a.alpha - b.alpha).abs() < 1e-9);
            assert!((a.speed_mps - b.speed_mps).abs() < 1e-9);
        }
    }

    #[test]
    fn active_population_grows_with_time() {
        let trace = Trace::generate(&TraceConfig {
            trips: 10,
            entry_time_s: Range::new(0.0, 60.0),
            seed: 5,
            ..TraceConfig::default()
        });
        let early = trace.active_at(0.0).len();
        let mid = trace.active_at(30.0).len();
        let late = trace.active_at(trace.entry_horizon_s()).len();
        assert!(early <= mid && mid <= late);
        assert_eq!(late, trace.len(), "full population after the entry horizon");
        for trip in trace.active_at(30.0) {
            assert!(trip.has_entered(30.0));
            let (size, alpha) = trip.market_profile();
            assert!(size > 0.0 && alpha > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one trip")]
    fn empty_trace_config_rejected() {
        let _ = Trace::generate(&TraceConfig {
            trips: 0,
            ..TraceConfig::default()
        });
    }
}
