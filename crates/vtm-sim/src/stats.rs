//! Descriptive statistics for simulation outputs.

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Smallest sample (0 for an empty sample).
    pub min: f64,
    /// Largest sample (0 for an empty sample).
    pub max: f64,
    /// Median (0 for an empty sample).
    pub median: f64,
    /// 95th percentile (0 for an empty sample).
    pub p95: f64,
}

impl Summary {
    /// Computes summary statistics over `values`. Non-finite values are ignored.
    pub fn from_values<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut data: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if data.is_empty() {
            return Self::default();
        }
        data.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let count = data.len();
        let mean = data.iter().sum::<f64>() / count as f64;
        let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: data[0],
            max: data[count - 1],
            median: percentile_sorted(&data, 0.5),
            p95: percentile_sorted(&data, 0.95),
        }
    }
}

/// Linear-interpolation percentile of an already sorted slice; `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    let frac = pos - lower as f64;
    sorted[lower] * (1.0 - frac) + sorted[upper] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let s = Summary::from_values([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::from_values(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&data, 0.0), 1.0);
        assert_eq!(percentile_sorted(&data, 1.0), 4.0);
        assert!((percentile_sorted(&data, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile_sorted(&[7.0], 0.3), 7.0);
        assert_eq!(percentile_sorted(&[], 0.3), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn out_of_range_quantile_panics() {
        let _ = percentile_sorted(&[1.0], 1.5);
    }
}
