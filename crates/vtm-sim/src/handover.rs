//! Handover (migration-trigger) policies.
//!
//! The paper triggers a twin migration whenever a vehicle leaves the coverage
//! of its serving RSU. Real deployments use more careful trigger rules to
//! avoid ping-pong migrations at coverage boundaries; this module provides a
//! family of trigger policies so the end-to-end simulator can study how the
//! trigger interacts with the incentive mechanism (how often migrations are
//! purchased, and therefore how much bandwidth is traded).

use crate::mobility::{Position, Velocity};
use crate::rsu::{Corridor, RsuId};

/// Decision produced by a handover policy for one vehicle at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoverDecision {
    /// Keep the twin at the current RSU.
    Stay,
    /// Migrate the twin to the given RSU.
    MigrateTo(RsuId),
}

/// A handover policy decides when a vehicle's twin should be migrated and to
/// which RSU.
pub trait HandoverPolicy {
    /// Returns the decision for a vehicle currently served by `serving`,
    /// located at `position` and moving with `velocity`.
    fn decide(
        &self,
        corridor: &Corridor,
        serving: RsuId,
        position: &Position,
        velocity: &Velocity,
    ) -> HandoverDecision;
}

/// Migrate as soon as another RSU is strictly closer than the serving one
/// (the baseline behaviour of the paper's system model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NearestRsuPolicy;

impl HandoverPolicy for NearestRsuPolicy {
    fn decide(
        &self,
        corridor: &Corridor,
        serving: RsuId,
        position: &Position,
        _velocity: &Velocity,
    ) -> HandoverDecision {
        let nearest = corridor.nearest(position).id();
        if nearest != serving {
            HandoverDecision::MigrateTo(nearest)
        } else {
            HandoverDecision::Stay
        }
    }
}

/// Migrate only when the candidate RSU is closer than the serving RSU by at
/// least `hysteresis_m` metres. Suppresses ping-pong migrations near the
/// midpoint between two RSUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisPolicy {
    /// Required distance advantage of the candidate RSU (metres).
    pub hysteresis_m: f64,
}

impl HysteresisPolicy {
    /// Creates a hysteresis policy.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis_m` is negative.
    pub fn new(hysteresis_m: f64) -> Self {
        assert!(hysteresis_m >= 0.0, "hysteresis must be non-negative");
        Self { hysteresis_m }
    }
}

impl HandoverPolicy for HysteresisPolicy {
    fn decide(
        &self,
        corridor: &Corridor,
        serving: RsuId,
        position: &Position,
        _velocity: &Velocity,
    ) -> HandoverDecision {
        let nearest = corridor.nearest(position);
        if nearest.id() == serving {
            return HandoverDecision::Stay;
        }
        let serving_distance = corridor
            .rsu(serving)
            .map(|r| r.distance_to(position))
            .unwrap_or(f64::INFINITY);
        if serving_distance - nearest.distance_to(position) >= self.hysteresis_m {
            HandoverDecision::MigrateTo(nearest.id())
        } else {
            HandoverDecision::Stay
        }
    }
}

/// Predictive policy: extrapolates the vehicle's position `lookahead_s`
/// seconds ahead and migrates towards the RSU that will then be nearest,
/// provided it is different from the serving RSU. Starting the migration
/// before coverage is lost hides (part of) the AoTM from the user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictivePolicy {
    /// How far ahead the vehicle position is extrapolated (seconds).
    pub lookahead_s: f64,
}

impl PredictivePolicy {
    /// Creates a predictive policy.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead_s` is negative.
    pub fn new(lookahead_s: f64) -> Self {
        assert!(lookahead_s >= 0.0, "lookahead must be non-negative");
        Self { lookahead_s }
    }
}

impl HandoverPolicy for PredictivePolicy {
    fn decide(
        &self,
        corridor: &Corridor,
        serving: RsuId,
        position: &Position,
        velocity: &Velocity,
    ) -> HandoverDecision {
        let predicted = Position::new(
            position.x + velocity.vx * self.lookahead_s,
            position.y + velocity.vy * self.lookahead_s,
        );
        let target = corridor.nearest(&predicted).id();
        if target != serving {
            HandoverDecision::MigrateTo(target)
        } else {
            HandoverDecision::Stay
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor() -> Corridor {
        Corridor::along_road(4, 1000.0, 600.0, 50e6, 100.0)
    }

    #[test]
    fn nearest_policy_switches_at_the_midpoint() {
        let c = corridor();
        let policy = NearestRsuPolicy;
        let before = policy.decide(
            &c,
            RsuId(0),
            &Position::new(499.0, 0.0),
            &Velocity::new(25.0, 0.0),
        );
        assert_eq!(before, HandoverDecision::Stay);
        let after = policy.decide(
            &c,
            RsuId(0),
            &Position::new(501.0, 0.0),
            &Velocity::new(25.0, 0.0),
        );
        assert_eq!(after, HandoverDecision::MigrateTo(RsuId(1)));
    }

    #[test]
    fn hysteresis_policy_delays_the_switch() {
        let c = corridor();
        let policy = HysteresisPolicy::new(200.0);
        // Just past the midpoint: nearest is RSU 1 but only by a few metres.
        let near_midpoint = policy.decide(
            &c,
            RsuId(0),
            &Position::new(520.0, 0.0),
            &Velocity::new(25.0, 0.0),
        );
        assert_eq!(near_midpoint, HandoverDecision::Stay);
        // Far enough that the advantage exceeds the hysteresis margin.
        let well_past = policy.decide(
            &c,
            RsuId(0),
            &Position::new(650.0, 0.0),
            &Velocity::new(25.0, 0.0),
        );
        assert_eq!(well_past, HandoverDecision::MigrateTo(RsuId(1)));
    }

    #[test]
    fn hysteresis_never_switches_to_the_same_rsu() {
        let c = corridor();
        let policy = HysteresisPolicy::new(0.0);
        let decision = policy.decide(
            &c,
            RsuId(1),
            &Position::new(1000.0, 0.0),
            &Velocity::new(25.0, 0.0),
        );
        assert_eq!(decision, HandoverDecision::Stay);
    }

    #[test]
    fn predictive_policy_migrates_before_the_boundary() {
        let c = corridor();
        let policy = PredictivePolicy::new(10.0);
        // At x = 420 moving at 25 m/s, in 10 s the vehicle will be at 670 —
        // closer to RSU 1 — so the predictive policy migrates already.
        let decision = policy.decide(
            &c,
            RsuId(0),
            &Position::new(420.0, 0.0),
            &Velocity::new(25.0, 0.0),
        );
        assert_eq!(decision, HandoverDecision::MigrateTo(RsuId(1)));
        // The plain nearest policy would not migrate yet.
        assert_eq!(
            NearestRsuPolicy.decide(
                &c,
                RsuId(0),
                &Position::new(420.0, 0.0),
                &Velocity::new(25.0, 0.0)
            ),
            HandoverDecision::Stay
        );
    }

    #[test]
    fn predictive_with_zero_lookahead_matches_nearest() {
        let c = corridor();
        let predictive = PredictivePolicy::new(0.0);
        for x in [100.0, 499.0, 501.0, 1700.0, 2600.0] {
            let p = Position::new(x, 0.0);
            let v = Velocity::new(30.0, 0.0);
            assert_eq!(
                predictive.decide(&c, RsuId(0), &p, &v),
                NearestRsuPolicy.decide(&c, RsuId(0), &p, &v)
            );
        }
    }

    #[test]
    #[should_panic(expected = "hysteresis must be non-negative")]
    fn negative_hysteresis_rejected() {
        let _ = HysteresisPolicy::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "lookahead must be non-negative")]
    fn negative_lookahead_rejected() {
        let _ = PredictivePolicy::new(-1.0);
    }
}
