//! A minimal discrete-event simulation engine.
//!
//! The metaverse simulator schedules vehicle movement updates, migration
//! completions and session events on a single clock. Events are ordered by
//! timestamp with a monotonically increasing sequence number breaking ties so
//! that event ordering is deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: an opaque payload `T` plus its firing time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<T> {
    /// Simulation time at which the event fires (seconds).
    pub time: f64,
    /// Insertion sequence number, used to break ties deterministically.
    pub sequence: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    now: f64,
    next_sequence: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            next_sequence: 0,
        }
    }

    /// Current simulation time (the firing time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before the current clock) or not finite.
    pub fn schedule_at(&mut self, time: f64, payload: T) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time + 1e-12 >= self.now,
            "cannot schedule an event in the past: {time} < {}",
            self.now
        );
        let event = ScheduledEvent {
            time,
            sequence: self.next_sequence,
            payload,
        };
        self.next_sequence += 1;
        self.heap.push(event);
    }

    /// Schedules `payload` to fire `delay` seconds from the current clock.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be non-negative"
        );
        self.schedule_at(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        let event = self.heap.pop();
        if let Some(ref e) = event {
            self.now = e.time;
        }
        event
    }

    /// Peeks at the next firing time without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(3.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, 1);
        q.schedule_at(2.0, 2);
        q.schedule_at(2.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative_to_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "first");
        q.pop();
        q.schedule_in(5.0, "second");
        assert_eq!(q.peek_time(), Some(15.0));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, ());
        q.pop();
        q.schedule_at(5.0, ());
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn negative_delay_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_in(-1.0, ());
    }
}
