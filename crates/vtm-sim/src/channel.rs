//! OFDMA bandwidth partitioning between concurrent twin migrations.
//!
//! The paper assumes Orthogonal Frequency Division Multiple Access between
//! the source and destination RSUs, so each VMU's migration occupies its own
//! orthogonal slice of the MSP's spectrum. This module models that spectrum
//! as a pool of subcarriers which concurrent migrations allocate and release.

use std::collections::BTreeMap;
use std::fmt;

use crate::radio::LinkBudget;

/// Error raised by [`OfdmaChannel`] allocation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// Requested more bandwidth than currently available.
    InsufficientBandwidth {
        /// Number of subcarriers requested.
        requested: usize,
        /// Number of free subcarriers.
        available: usize,
    },
    /// The flow id is unknown.
    UnknownFlow {
        /// Identifier that failed to resolve.
        flow: u64,
    },
    /// The flow id has already been allocated.
    DuplicateFlow {
        /// Identifier that was already present.
        flow: u64,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::InsufficientBandwidth {
                requested,
                available,
            } => write!(
                f,
                "insufficient bandwidth: requested {requested} subcarriers, {available} available"
            ),
            ChannelError::UnknownFlow { flow } => write!(f, "unknown flow id {flow}"),
            ChannelError::DuplicateFlow { flow } => write!(f, "flow id {flow} already allocated"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// An OFDMA spectrum pool of fixed-width subcarriers shared by migration flows.
#[derive(Debug, Clone, PartialEq)]
pub struct OfdmaChannel {
    subcarrier_bandwidth_hz: f64,
    total_subcarriers: usize,
    link: LinkBudget,
    allocations: BTreeMap<u64, usize>,
}

impl OfdmaChannel {
    /// Creates a channel with `total_subcarriers` subcarriers of
    /// `subcarrier_bandwidth_hz` each, over the given link budget.
    ///
    /// # Panics
    ///
    /// Panics if the subcarrier bandwidth is not positive or there are no
    /// subcarriers.
    pub fn new(subcarrier_bandwidth_hz: f64, total_subcarriers: usize, link: LinkBudget) -> Self {
        assert!(
            subcarrier_bandwidth_hz > 0.0,
            "subcarrier bandwidth must be positive"
        );
        assert!(
            total_subcarriers > 0,
            "channel needs at least one subcarrier"
        );
        Self {
            subcarrier_bandwidth_hz,
            total_subcarriers,
            link,
            allocations: BTreeMap::new(),
        }
    }

    /// Creates a channel matching the paper's setup: `total_bandwidth_hz` of
    /// spectrum split into `subcarriers` equal slices over the default link.
    pub fn with_total_bandwidth(
        total_bandwidth_hz: f64,
        subcarriers: usize,
        link: LinkBudget,
    ) -> Self {
        assert!(subcarriers > 0, "channel needs at least one subcarrier");
        Self::new(total_bandwidth_hz / subcarriers as f64, subcarriers, link)
    }

    /// The link budget of the inter-RSU hop.
    pub fn link(&self) -> &LinkBudget {
        &self.link
    }

    /// Total spectrum of the channel in Hz.
    pub fn total_bandwidth_hz(&self) -> f64 {
        self.subcarrier_bandwidth_hz * self.total_subcarriers as f64
    }

    /// Number of subcarriers not currently allocated.
    pub fn free_subcarriers(&self) -> usize {
        self.total_subcarriers - self.allocations.values().sum::<usize>()
    }

    /// Bandwidth (Hz) not currently allocated.
    pub fn free_bandwidth_hz(&self) -> f64 {
        self.free_subcarriers() as f64 * self.subcarrier_bandwidth_hz
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.allocations.len()
    }

    /// Converts a bandwidth request in Hz into a subcarrier count (rounded up).
    pub fn subcarriers_for_bandwidth(&self, bandwidth_hz: f64) -> usize {
        (bandwidth_hz / self.subcarrier_bandwidth_hz).ceil() as usize
    }

    /// Allocates `bandwidth_hz` of spectrum to flow `flow`, rounded up to a
    /// whole number of subcarriers. Returns the granted bandwidth in Hz.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::DuplicateFlow`] when the flow already holds an
    /// allocation and [`ChannelError::InsufficientBandwidth`] when the pool
    /// cannot satisfy the request.
    pub fn allocate(&mut self, flow: u64, bandwidth_hz: f64) -> Result<f64, ChannelError> {
        if self.allocations.contains_key(&flow) {
            return Err(ChannelError::DuplicateFlow { flow });
        }
        let needed = self.subcarriers_for_bandwidth(bandwidth_hz).max(1);
        let available = self.free_subcarriers();
        if needed > available {
            return Err(ChannelError::InsufficientBandwidth {
                requested: needed,
                available,
            });
        }
        self.allocations.insert(flow, needed);
        Ok(needed as f64 * self.subcarrier_bandwidth_hz)
    }

    /// Releases the allocation held by `flow`, returning the freed bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::UnknownFlow`] when the flow holds no allocation.
    pub fn release(&mut self, flow: u64) -> Result<f64, ChannelError> {
        match self.allocations.remove(&flow) {
            Some(subcarriers) => Ok(subcarriers as f64 * self.subcarrier_bandwidth_hz),
            None => Err(ChannelError::UnknownFlow { flow }),
        }
    }

    /// Bandwidth currently held by `flow` in Hz (zero when not allocated).
    pub fn allocated_bandwidth_hz(&self, flow: u64) -> f64 {
        self.allocations
            .get(&flow)
            .map_or(0.0, |&s| s as f64 * self.subcarrier_bandwidth_hz)
    }

    /// Achievable rate of `flow` in bit/s given its current allocation.
    pub fn flow_rate_bps(&self, flow: u64) -> f64 {
        self.link.rate_bps(self.allocated_bandwidth_hz(flow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> OfdmaChannel {
        // 50 MHz split into 250 subcarriers of 200 kHz, as a plausible OFDMA grid.
        OfdmaChannel::with_total_bandwidth(50e6, 250, LinkBudget::default())
    }

    #[test]
    fn construction_reports_totals() {
        let ch = channel();
        assert!((ch.total_bandwidth_hz() - 50e6).abs() < 1.0);
        assert_eq!(ch.free_subcarriers(), 250);
        assert_eq!(ch.active_flows(), 0);
    }

    #[test]
    fn allocation_rounds_up_to_subcarriers() {
        let mut ch = channel();
        let granted = ch.allocate(1, 300e3).unwrap();
        // 300 kHz needs 2 subcarriers of 200 kHz = 400 kHz.
        assert!((granted - 400e3).abs() < 1.0);
        assert_eq!(ch.free_subcarriers(), 248);
        assert_eq!(ch.active_flows(), 1);
        assert!((ch.allocated_bandwidth_hz(1) - 400e3).abs() < 1.0);
    }

    #[test]
    fn duplicate_flow_is_rejected() {
        let mut ch = channel();
        ch.allocate(7, 1e6).unwrap();
        let err = ch.allocate(7, 1e6).unwrap_err();
        assert!(matches!(err, ChannelError::DuplicateFlow { flow: 7 }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn over_allocation_is_rejected() {
        let mut ch = channel();
        ch.allocate(1, 40e6).unwrap();
        let err = ch.allocate(2, 20e6).unwrap_err();
        assert!(matches!(err, ChannelError::InsufficientBandwidth { .. }));
    }

    #[test]
    fn release_returns_bandwidth_to_pool() {
        let mut ch = channel();
        ch.allocate(3, 10e6).unwrap();
        let freed = ch.release(3).unwrap();
        assert!((freed - 10e6).abs() < 1.0);
        assert_eq!(ch.free_subcarriers(), 250);
        assert!(matches!(
            ch.release(3),
            Err(ChannelError::UnknownFlow { flow: 3 })
        ));
    }

    #[test]
    fn flow_rate_uses_link_budget() {
        let mut ch = channel();
        ch.allocate(1, 1e6).unwrap();
        let rate = ch.flow_rate_bps(1);
        let expected = LinkBudget::default().rate_bps(ch.allocated_bandwidth_hz(1));
        assert!((rate - expected).abs() < 1e-6);
        assert_eq!(ch.flow_rate_bps(99), 0.0);
    }

    #[test]
    fn orthogonality_rates_are_independent_of_other_flows() {
        let mut ch = channel();
        ch.allocate(1, 5e6).unwrap();
        let rate_alone = ch.flow_rate_bps(1);
        ch.allocate(2, 20e6).unwrap();
        assert!((ch.flow_rate_bps(1) - rate_alone).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one subcarrier")]
    fn zero_subcarriers_rejected() {
        let _ = OfdmaChannel::new(1e3, 0, LinkBudget::default());
    }
}
