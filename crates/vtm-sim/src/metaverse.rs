//! End-to-end vehicular-metaverse simulation.
//!
//! [`MetaverseSim`] ties the substrate together: vehicles move along a
//! corridor of RSUs, each vehicle's twin is served by the RSU covering it,
//! and whenever the serving RSU changes the twin is live-migrated over the
//! inter-RSU link. How much bandwidth a migration receives is decided by a
//! pluggable [`BandwidthAllocator`] — `vtm-core` plugs the paper's
//! Stackelberg / DRL pricing in here, while this crate ships simple reference
//! allocators.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

use crate::migration::{simulate_precopy_migration, MigrationError, PreCopyConfig};
use crate::mobility::{MobilityModel, PerturbedHighway, Position, Velocity};
use crate::radio::LinkBudget;
use crate::rsu::{Corridor, RsuId};
use crate::stats::Summary;
use crate::twin::VehicularTwin;
use crate::vehicle::{Vehicle, VehicleId};

/// Decides how much bandwidth (Hz) a migration receives.
///
/// The allocator sees the twin being migrated and the bandwidth still free at
/// the destination RSU, and returns the bandwidth to grant (it will be clamped
/// to the free amount).
pub trait BandwidthAllocator {
    /// Returns the bandwidth (Hz) to allocate for migrating `twin`.
    fn allocate(&mut self, twin: &VehicularTwin, free_bandwidth_hz: f64) -> f64;
}

/// Grants every migration the same fixed bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedAllocator {
    /// Bandwidth granted to each migration (Hz).
    pub bandwidth_hz: f64,
}

impl BandwidthAllocator for FixedAllocator {
    fn allocate(&mut self, _twin: &VehicularTwin, free_bandwidth_hz: f64) -> f64 {
        self.bandwidth_hz.min(free_bandwidth_hz)
    }
}

/// Splits the RSU's total bandwidth equally among an expected number of
/// concurrent migrations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EqualShareAllocator {
    /// Expected number of concurrent migrations.
    pub expected_concurrent: usize,
}

impl BandwidthAllocator for EqualShareAllocator {
    fn allocate(&mut self, _twin: &VehicularTwin, free_bandwidth_hz: f64) -> f64 {
        free_bandwidth_hz / self.expected_concurrent.max(1) as f64
    }
}

/// One VMU participating in the simulation: its vehicle and its twin.
#[derive(Debug, Clone, PartialEq)]
pub struct VmuEntry {
    /// The vehicle carrying the VMU.
    pub vehicle: Vehicle,
    /// The VMU's vehicular twin.
    pub twin: VehicularTwin,
}

/// A completed (or failed) migration, as recorded by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Simulation time when the migration was triggered (seconds).
    pub triggered_at_s: f64,
    /// Vehicle whose twin migrated.
    pub vehicle: VehicleId,
    /// Source RSU.
    pub from: RsuId,
    /// Destination RSU.
    pub to: RsuId,
    /// Bandwidth granted to the migration (Hz).
    pub bandwidth_hz: f64,
    /// Age of Twin Migration actually achieved (seconds); `None` if the
    /// migration failed (e.g. no bandwidth).
    pub aotm_s: Option<f64>,
    /// Downtime of the stop-and-copy phase (seconds); `None` on failure.
    pub downtime_s: Option<f64>,
}

impl MigrationRecord {
    /// Whether the migration completed successfully.
    pub fn succeeded(&self) -> bool {
        self.aotm_s.is_some()
    }
}

/// Configuration of the end-to-end simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaverseConfig {
    /// Number of RSUs along the corridor.
    pub rsu_count: usize,
    /// Spacing between consecutive RSUs (metres).
    pub rsu_spacing_m: f64,
    /// RSU coverage radius (metres).
    pub rsu_coverage_m: f64,
    /// Per-RSU bandwidth capacity available for migrations (Hz).
    pub rsu_bandwidth_hz: f64,
    /// Inter-RSU link budget used for migrations.
    pub link: LinkBudget,
    /// Pre-copy migration configuration.
    pub precopy: PreCopyConfig,
    /// Simulation time step (seconds).
    pub time_step_s: f64,
    /// Total simulated duration (seconds).
    pub duration_s: f64,
    /// Seed for the mobility randomness.
    pub seed: u64,
}

impl Default for MetaverseConfig {
    fn default() -> Self {
        Self {
            rsu_count: 6,
            rsu_spacing_m: 1000.0,
            rsu_coverage_m: 600.0,
            rsu_bandwidth_hz: 50e6,
            link: LinkBudget::default(),
            precopy: PreCopyConfig::default(),
            time_step_s: 1.0,
            duration_s: 300.0,
            seed: 0,
        }
    }
}

/// Aggregate results of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Every migration that was triggered.
    pub migrations: Vec<MigrationRecord>,
    /// Summary of the achieved AoTM over successful migrations (seconds).
    pub aotm_summary: Summary,
    /// Summary of downtime over successful migrations (seconds).
    pub downtime_summary: Summary,
    /// Number of migrations that failed (no bandwidth / diverging pre-copy).
    pub failed_migrations: usize,
    /// Total simulated time (seconds).
    pub simulated_time_s: f64,
    /// Total distance travelled by all vehicles (metres).
    pub total_distance_m: f64,
}

impl SimulationReport {
    /// Number of successful migrations.
    pub fn successful_migrations(&self) -> usize {
        self.migrations.len() - self.failed_migrations
    }
}

/// The end-to-end simulator.
#[derive(Debug, Clone)]
pub struct MetaverseSim<M: MobilityModel> {
    config: MetaverseConfig,
    corridor: Corridor,
    mobility: M,
    vmus: Vec<VmuEntry>,
    serving: BTreeMap<VehicleId, RsuId>,
    rng: StdRng,
    clock_s: f64,
    records: Vec<MigrationRecord>,
}

impl MetaverseSim<PerturbedHighway> {
    /// Builds a highway scenario: `vmus` VMUs entering the corridor at evenly
    /// spaced positions with speeds around 25 m/s, each owning a twin of
    /// `twin_size_mb` megabytes and immersion coefficient `alpha`.
    pub fn highway_scenario(
        config: MetaverseConfig,
        vmus: usize,
        twin_size_mb: f64,
        alpha: f64,
    ) -> Self {
        let entries: Vec<VmuEntry> = (0..vmus)
            .map(|i| {
                let vehicle = Vehicle::new(
                    VehicleId(i),
                    crate::twin::TwinId(i),
                    Position::new(50.0 * i as f64, 0.0),
                    Velocity::new(25.0, 0.0),
                );
                let twin =
                    VehicularTwin::with_size_and_alpha(crate::twin::TwinId(i), twin_size_mb, alpha);
                VmuEntry { vehicle, twin }
            })
            .collect();
        Self::new(config, PerturbedHighway::default(), entries)
    }
}

impl<M: MobilityModel> MetaverseSim<M> {
    /// Creates a simulator with explicit mobility model and VMU entries.
    ///
    /// # Panics
    ///
    /// Panics if `vmus` is empty or the configuration has a non-positive time
    /// step or duration.
    pub fn new(config: MetaverseConfig, mobility: M, vmus: Vec<VmuEntry>) -> Self {
        assert!(!vmus.is_empty(), "simulation needs at least one VMU");
        assert!(config.time_step_s > 0.0, "time step must be positive");
        assert!(config.duration_s > 0.0, "duration must be positive");
        let corridor = Corridor::along_road(
            config.rsu_count,
            config.rsu_spacing_m,
            config.rsu_coverage_m,
            config.rsu_bandwidth_hz,
            100.0,
        );
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            corridor,
            mobility,
            vmus,
            serving: BTreeMap::new(),
            rng,
            clock_s: 0.0,
            records: Vec::new(),
            config,
        }
    }

    /// The corridor topology used by the simulation.
    pub fn corridor(&self) -> &Corridor {
        &self.corridor
    }

    /// The VMUs participating in the simulation.
    pub fn vmus(&self) -> &[VmuEntry] {
        &self.vmus
    }

    /// Runs the simulation to completion with the given bandwidth allocator.
    pub fn run<A: BandwidthAllocator>(&mut self, allocator: &mut A) -> SimulationReport {
        // Initial association: every VMU's twin is deployed at the nearest RSU.
        for entry in &self.vmus {
            let rsu = self.corridor.nearest(&entry.vehicle.position()).id();
            self.serving.insert(entry.vehicle.id(), rsu);
        }
        let steps = (self.config.duration_s / self.config.time_step_s).ceil() as usize;
        for _ in 0..steps {
            self.clock_s += self.config.time_step_s;
            self.step(allocator);
        }
        self.report()
    }

    fn step<A: BandwidthAllocator>(&mut self, allocator: &mut A) {
        let dt = self.config.time_step_s;
        // Track per-RSU bandwidth committed within this step so concurrent
        // migrations at the same destination share its pool.
        let mut committed: BTreeMap<RsuId, f64> = BTreeMap::new();
        for i in 0..self.vmus.len() {
            // Move the vehicle.
            {
                let entry = &mut self.vmus[i];
                entry.vehicle.advance(&self.mobility, dt, &mut self.rng);
            }
            let (vehicle_id, position) = {
                let entry = &self.vmus[i];
                (entry.vehicle.id(), entry.vehicle.position())
            };
            let current = *self
                .serving
                .get(&vehicle_id)
                .expect("vehicle registered at start of run");
            // A migration is needed when the best serving RSU differs from the
            // current one (leaving coverage towards the next RSU).
            let best = self
                .corridor
                .covering(&position)
                .map(|r| r.id())
                .unwrap_or_else(|| self.corridor.nearest(&position).id());
            if best != current {
                let free = {
                    let capacity = self
                        .corridor
                        .rsu(best)
                        .map(|r| r.bandwidth_capacity_hz())
                        .unwrap_or(self.config.rsu_bandwidth_hz);
                    let used = committed.get(&best).copied().unwrap_or(0.0);
                    (capacity - used).max(0.0)
                };
                let twin = self.vmus[i].twin.clone();
                let granted = allocator.allocate(&twin, free).clamp(0.0, free);
                *committed.entry(best).or_insert(0.0) += granted;
                let record = self.migrate(vehicle_id, current, best, &twin, granted);
                self.records.push(record);
                self.serving.insert(vehicle_id, best);
            }
        }
    }

    fn migrate(
        &self,
        vehicle: VehicleId,
        from: RsuId,
        to: RsuId,
        twin: &VehicularTwin,
        bandwidth_hz: f64,
    ) -> MigrationRecord {
        let distance = self.corridor.inter_rsu_distance(from, to).max(1.0);
        let link = self.config.link.with_distance(distance);
        let outcome: Result<_, MigrationError> = if bandwidth_hz > 0.0 {
            simulate_precopy_migration(twin, bandwidth_hz, &link, &self.config.precopy)
        } else {
            Err(MigrationError::NoBandwidth)
        };
        match outcome {
            Ok(report) => MigrationRecord {
                triggered_at_s: self.clock_s,
                vehicle,
                from,
                to,
                bandwidth_hz,
                aotm_s: Some(report.aotm_s),
                downtime_s: Some(report.downtime_s),
            },
            Err(_) => MigrationRecord {
                triggered_at_s: self.clock_s,
                vehicle,
                from,
                to,
                bandwidth_hz,
                aotm_s: None,
                downtime_s: None,
            },
        }
    }

    fn report(&self) -> SimulationReport {
        let aotm: Vec<f64> = self.records.iter().filter_map(|r| r.aotm_s).collect();
        let downtime: Vec<f64> = self.records.iter().filter_map(|r| r.downtime_s).collect();
        let failed = self.records.iter().filter(|r| !r.succeeded()).count();
        SimulationReport {
            aotm_summary: Summary::from_values(aotm),
            downtime_summary: Summary::from_values(downtime),
            failed_migrations: failed,
            migrations: self.records.clone(),
            simulated_time_s: self.clock_s,
            total_distance_m: self
                .vmus
                .iter()
                .map(|v| v.vehicle.distance_travelled_m())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MetaverseConfig {
        MetaverseConfig {
            duration_s: 400.0,
            ..MetaverseConfig::default()
        }
    }

    #[test]
    fn highway_scenario_produces_migrations() {
        let mut sim = MetaverseSim::highway_scenario(config(), 3, 100.0, 5.0);
        let mut allocator = FixedAllocator { bandwidth_hz: 10e6 };
        let report = sim.run(&mut allocator);
        assert!(
            !report.migrations.is_empty(),
            "vehicles crossing RSU boundaries must trigger migrations"
        );
        assert_eq!(report.failed_migrations, 0);
        assert!(report.aotm_summary.mean > 0.0);
        assert!(report.aotm_summary.mean.is_finite());
        assert!(report.total_distance_m > 0.0);
        assert!(report.simulated_time_s >= 400.0 - 1e-9);
        assert_eq!(report.successful_migrations(), report.migrations.len());
    }

    #[test]
    fn zero_bandwidth_allocator_fails_migrations() {
        let mut sim = MetaverseSim::highway_scenario(config(), 2, 100.0, 5.0);
        let mut allocator = FixedAllocator { bandwidth_hz: 0.0 };
        let report = sim.run(&mut allocator);
        assert!(!report.migrations.is_empty());
        assert_eq!(report.failed_migrations, report.migrations.len());
        assert_eq!(report.successful_migrations(), 0);
    }

    #[test]
    fn more_bandwidth_gives_fresher_migrations() {
        let mut slow_sim = MetaverseSim::highway_scenario(config(), 3, 150.0, 5.0);
        let mut fast_sim = MetaverseSim::highway_scenario(config(), 3, 150.0, 5.0);
        let slow = slow_sim.run(&mut FixedAllocator { bandwidth_hz: 2e6 });
        let fast = fast_sim.run(&mut FixedAllocator { bandwidth_hz: 20e6 });
        assert!(slow.aotm_summary.mean > fast.aotm_summary.mean);
    }

    #[test]
    fn equal_share_allocator_splits_pool() {
        let mut alloc = EqualShareAllocator {
            expected_concurrent: 4,
        };
        let twin = VehicularTwin::with_size_and_alpha(crate::twin::TwinId(0), 100.0, 5.0);
        assert!((alloc.allocate(&twin, 40e6) - 10e6).abs() < 1e-6);
    }

    #[test]
    fn migration_records_are_well_formed() {
        let mut sim = MetaverseSim::highway_scenario(config(), 1, 100.0, 5.0);
        let report = sim.run(&mut FixedAllocator { bandwidth_hz: 5e6 });
        for record in &report.migrations {
            assert_ne!(record.from, record.to, "migration must change RSU");
            assert!(record.triggered_at_s >= 0.0);
            assert!(record.succeeded());
        }
    }

    #[test]
    #[should_panic(expected = "at least one VMU")]
    fn empty_vmu_list_rejected() {
        let _ = MetaverseSim::new(config(), PerturbedHighway::default(), vec![]);
    }
}
