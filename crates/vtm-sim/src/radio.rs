//! Radio-link primitives: unit conversions, path loss and Shannon capacity.
//!
//! The paper's channel model (§III-A) computes the achievable transmission
//! rate between the source and destination RSU as
//! `γ_n = b_n · log2(1 + ρ h0 d^{-ε} / N0)` with the transmit power ρ, unit
//! channel gain `h0`, RSU distance `d`, path-loss exponent ε and noise power
//! `N0` given in dBm/dB. This module provides those quantities as strongly
//! typed values so that dB and linear domains cannot be mixed up.

/// A power expressed in dBm (decibel-milliwatts).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Dbm(pub f64);

/// A dimensionless gain expressed in dB.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Db(pub f64);

/// A power expressed in milliwatts (linear domain).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Milliwatts(pub f64);

impl Dbm {
    /// Converts dBm to linear milliwatts.
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts(10f64.powf(self.0 / 10.0))
    }
}

impl Milliwatts {
    /// Converts linear milliwatts to dBm.
    ///
    /// # Panics
    ///
    /// Panics if the power is not strictly positive.
    pub fn to_dbm(self) -> Dbm {
        assert!(self.0 > 0.0, "power must be positive to express in dBm");
        Dbm(10.0 * self.0.log10())
    }
}

impl Db {
    /// Converts a dB gain to a linear ratio.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts a linear ratio to dB.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not strictly positive.
    pub fn from_linear(ratio: f64) -> Self {
        assert!(ratio > 0.0, "ratio must be positive to express in dB");
        Db(10.0 * ratio.log10())
    }
}

/// Parameters of the inter-RSU wireless link used for twin migration.
///
/// Defaults correspond to the paper's §V-A settings: transmit power 40 dBm,
/// unit channel gain −20 dB, RSU distance 500 m, path-loss exponent 2 and
/// average noise power −150 dBm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Transmit power ρ of the source RSU.
    pub transmit_power: Dbm,
    /// Unit channel power gain h0.
    pub unit_gain: Db,
    /// Distance `d` between the source and destination RSU in metres.
    pub distance_m: f64,
    /// Path-loss exponent ε.
    pub path_loss_exponent: f64,
    /// Average noise power N0.
    pub noise_power: Dbm,
}

impl Default for LinkBudget {
    fn default() -> Self {
        Self {
            transmit_power: Dbm(40.0),
            unit_gain: Db(-20.0),
            distance_m: 500.0,
            path_loss_exponent: 2.0,
            noise_power: Dbm(-150.0),
        }
    }
}

impl LinkBudget {
    /// Received signal-to-noise ratio `ρ h0 d^{-ε} / N0` in the linear domain.
    ///
    /// # Panics
    ///
    /// Panics if the distance is not strictly positive.
    pub fn snr_linear(&self) -> f64 {
        assert!(self.distance_m > 0.0, "distance must be positive");
        let signal = self.transmit_power.to_milliwatts().0
            * self.unit_gain.to_linear()
            * self.distance_m.powf(-self.path_loss_exponent);
        signal / self.noise_power.to_milliwatts().0
    }

    /// Spectral efficiency `log2(1 + SNR)` in bit/s/Hz. This is the factor the
    /// paper multiplies by the purchased bandwidth `b_n` to obtain the rate.
    pub fn spectral_efficiency(&self) -> f64 {
        (1.0 + self.snr_linear()).log2()
    }

    /// Achievable rate for `bandwidth_hz` of spectrum, in bit/s.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_hz` is negative.
    pub fn rate_bps(&self, bandwidth_hz: f64) -> f64 {
        assert!(bandwidth_hz >= 0.0, "bandwidth must be non-negative");
        bandwidth_hz * self.spectral_efficiency()
    }

    /// Returns a copy with a different inter-RSU distance.
    pub fn with_distance(mut self, distance_m: f64) -> Self {
        self.distance_m = distance_m;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_round_trip() {
        for v in [-150.0, -20.0, 0.0, 40.0] {
            let back = Dbm(v).to_milliwatts().to_dbm();
            assert!((back.0 - v).abs() < 1e-9);
        }
    }

    #[test]
    fn db_round_trip() {
        for v in [-30.0, -3.0, 0.0, 10.0] {
            let back = Db::from_linear(Db(v).to_linear());
            assert!((back.0 - v).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!((Dbm(0.0).to_milliwatts().0 - 1.0).abs() < 1e-12);
        assert!((Dbm(30.0).to_milliwatts().0 - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn negative_power_cannot_be_dbm() {
        let _ = Milliwatts(-1.0).to_dbm();
    }

    #[test]
    fn paper_link_budget_snr_is_large_and_positive() {
        let link = LinkBudget::default();
        let snr = link.snr_linear();
        // 40 dBm - 20 dB - 10*2*log10(500) dB - (-150 dBm) = 116.02 dB ≈ 4e11.
        let expected_db = 40.0 - 20.0 - 20.0 * 500f64.log10() + 150.0;
        assert!((Db::from_linear(snr).0 - expected_db).abs() < 1e-6);
        assert!(link.spectral_efficiency() > 30.0);
    }

    #[test]
    fn rate_scales_linearly_with_bandwidth() {
        let link = LinkBudget::default();
        let r1 = link.rate_bps(1e6);
        let r2 = link.rate_bps(2e6);
        assert!((r2 - 2.0 * r1).abs() < 1e-6 * r1);
        assert_eq!(link.rate_bps(0.0), 0.0);
    }

    #[test]
    fn rate_decreases_with_distance() {
        let near = LinkBudget::default().with_distance(100.0);
        let far = LinkBudget::default().with_distance(1000.0);
        assert!(near.rate_bps(1e6) > far.rate_bps(1e6));
    }

    #[test]
    fn spectral_efficiency_increases_with_power() {
        let strong = LinkBudget {
            transmit_power: Dbm(46.0),
            ..LinkBudget::default()
        };
        assert!(strong.spectral_efficiency() > LinkBudget::default().spectral_efficiency());
    }
}
