//! Vehicles carrying Vehicular Metaverse Users.

use rand::Rng;

use crate::mobility::{MobilityModel, Position, Velocity};
use crate::twin::TwinId;

/// Identifier of a vehicle (and of the VMU it carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VehicleId(pub usize);

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vehicle-{}", self.0)
    }
}

/// A vehicle moving through the corridor whose VMU owns a vehicular twin.
#[derive(Debug, Clone, PartialEq)]
pub struct Vehicle {
    id: VehicleId,
    twin: TwinId,
    position: Position,
    velocity: Velocity,
    distance_travelled_m: f64,
}

impl Vehicle {
    /// Creates a vehicle.
    pub fn new(id: VehicleId, twin: TwinId, position: Position, velocity: Velocity) -> Self {
        Self {
            id,
            twin,
            position,
            velocity,
            distance_travelled_m: 0.0,
        }
    }

    /// Vehicle identifier.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// Identifier of the vehicle's twin.
    pub fn twin(&self) -> TwinId {
        self.twin
    }

    /// Current position.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Current velocity.
    pub fn velocity(&self) -> Velocity {
        self.velocity
    }

    /// Cumulative distance travelled since creation (metres).
    pub fn distance_travelled_m(&self) -> f64 {
        self.distance_travelled_m
    }

    /// Advances the vehicle by `dt` seconds using `model`.
    pub fn advance<M: MobilityModel, R: Rng + ?Sized>(&mut self, model: &M, dt: f64, rng: &mut R) {
        let (next_pos, next_vel) = model.advance(self.position, self.velocity, dt, rng);
        self.distance_travelled_m += self.position.distance_to(&next_pos);
        self.position = next_pos;
        self.velocity = next_vel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::ConstantVelocity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vehicle_advances_and_tracks_distance() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut v = Vehicle::new(
            VehicleId(1),
            TwinId(1),
            Position::new(0.0, 0.0),
            Velocity::new(10.0, 0.0),
        );
        for _ in 0..5 {
            v.advance(&ConstantVelocity, 1.0, &mut rng);
        }
        assert!((v.position().x - 50.0).abs() < 1e-9);
        assert!((v.distance_travelled_m() - 50.0).abs() < 1e-9);
        assert_eq!(v.id(), VehicleId(1));
        assert_eq!(v.twin(), TwinId(1));
        assert_eq!(format!("{}", v.id()), "vehicle-1");
    }
}
