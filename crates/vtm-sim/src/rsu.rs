//! RoadSide Units and corridor topology.
//!
//! RSUs host the edge servers where vehicular twins are deployed. Each RSU
//! has a position, a circular coverage radius and a bandwidth pool managed by
//! the Metaverse Service Provider. The [`Corridor`] places a chain of RSUs
//! along a road so that a moving vehicle periodically leaves coverage and its
//! twin has to be migrated to the next RSU.

use crate::mobility::Position;

/// Identifier of an RSU within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RsuId(pub usize);

impl std::fmt::Display for RsuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rsu-{}", self.0)
    }
}

/// A roadside unit hosting an edge server.
#[derive(Debug, Clone, PartialEq)]
pub struct Rsu {
    id: RsuId,
    position: Position,
    coverage_radius_m: f64,
    /// Total bandwidth (Hz) the MSP can sell at this RSU for migrations.
    bandwidth_capacity_hz: f64,
    /// Compute capacity of the edge server in arbitrary units (used to model
    /// rendering load; not part of the paper's pricing game but needed by the
    /// end-to-end simulator).
    compute_capacity: f64,
}

impl Rsu {
    /// Creates an RSU.
    ///
    /// # Panics
    ///
    /// Panics if the coverage radius or capacities are not positive.
    pub fn new(
        id: RsuId,
        position: Position,
        coverage_radius_m: f64,
        bandwidth_capacity_hz: f64,
        compute_capacity: f64,
    ) -> Self {
        assert!(coverage_radius_m > 0.0, "coverage radius must be positive");
        assert!(
            bandwidth_capacity_hz > 0.0,
            "bandwidth capacity must be positive"
        );
        assert!(compute_capacity > 0.0, "compute capacity must be positive");
        Self {
            id,
            position,
            coverage_radius_m,
            bandwidth_capacity_hz,
            compute_capacity,
        }
    }

    /// The RSU identifier.
    pub fn id(&self) -> RsuId {
        self.id
    }

    /// The RSU position.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Coverage radius in metres.
    pub fn coverage_radius_m(&self) -> f64 {
        self.coverage_radius_m
    }

    /// Bandwidth capacity in Hz.
    pub fn bandwidth_capacity_hz(&self) -> f64 {
        self.bandwidth_capacity_hz
    }

    /// Edge-server compute capacity (arbitrary units).
    pub fn compute_capacity(&self) -> f64 {
        self.compute_capacity
    }

    /// Whether `position` lies within this RSU's coverage.
    pub fn covers(&self, position: &Position) -> bool {
        self.position.distance_to(position) <= self.coverage_radius_m
    }

    /// Distance from the RSU to `position`, in metres.
    pub fn distance_to(&self, position: &Position) -> f64 {
        self.position.distance_to(position)
    }
}

/// A linear corridor of RSUs along a road (the canonical hand-over topology).
#[derive(Debug, Clone, PartialEq)]
pub struct Corridor {
    rsus: Vec<Rsu>,
}

impl Corridor {
    /// Builds a corridor from an explicit list of RSUs.
    ///
    /// # Panics
    ///
    /// Panics if `rsus` is empty.
    pub fn new(rsus: Vec<Rsu>) -> Self {
        assert!(!rsus.is_empty(), "corridor needs at least one RSU");
        Self { rsus }
    }

    /// Builds a corridor of `count` equally spaced RSUs along the x axis,
    /// starting at `x = 0` and separated by `spacing_m` metres, each with the
    /// given coverage radius and capacities.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or any geometric argument is non-positive.
    pub fn along_road(
        count: usize,
        spacing_m: f64,
        coverage_radius_m: f64,
        bandwidth_capacity_hz: f64,
        compute_capacity: f64,
    ) -> Self {
        assert!(count > 0, "corridor needs at least one RSU");
        assert!(spacing_m > 0.0, "spacing must be positive");
        let rsus = (0..count)
            .map(|i| {
                Rsu::new(
                    RsuId(i),
                    Position::new(i as f64 * spacing_m, 0.0),
                    coverage_radius_m,
                    bandwidth_capacity_hz,
                    compute_capacity,
                )
            })
            .collect();
        Self { rsus }
    }

    /// All RSUs in the corridor.
    pub fn rsus(&self) -> &[Rsu] {
        &self.rsus
    }

    /// Number of RSUs.
    pub fn len(&self) -> usize {
        self.rsus.len()
    }

    /// Whether the corridor is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.rsus.is_empty()
    }

    /// Looks up an RSU by id.
    pub fn rsu(&self, id: RsuId) -> Option<&Rsu> {
        self.rsus.iter().find(|r| r.id() == id)
    }

    /// The RSU closest to `position`.
    pub fn nearest(&self, position: &Position) -> &Rsu {
        self.rsus
            .iter()
            .min_by(|a, b| {
                a.distance_to(position)
                    .partial_cmp(&b.distance_to(position))
                    .expect("distances are finite")
            })
            .expect("corridor is non-empty")
    }

    /// The RSU that covers `position`, preferring the nearest one. Returns
    /// `None` when the position is in a coverage hole.
    pub fn covering(&self, position: &Position) -> Option<&Rsu> {
        let nearest = self.nearest(position);
        if nearest.covers(position) {
            Some(nearest)
        } else {
            None
        }
    }

    /// Distance between two RSUs (used as the inter-RSU migration hop length).
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown.
    pub fn inter_rsu_distance(&self, a: RsuId, b: RsuId) -> f64 {
        let ra = self.rsu(a).expect("unknown source RSU");
        let rb = self.rsu(b).expect("unknown destination RSU");
        ra.position().distance_to(&rb.position())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor() -> Corridor {
        Corridor::along_road(5, 1000.0, 600.0, 50e6, 100.0)
    }

    #[test]
    fn rsu_coverage_checks() {
        let rsu = Rsu::new(RsuId(0), Position::new(0.0, 0.0), 500.0, 1e6, 10.0);
        assert!(rsu.covers(&Position::new(300.0, 400.0)));
        assert!(!rsu.covers(&Position::new(300.0, 401.0)));
        assert_eq!(rsu.id(), RsuId(0));
        assert_eq!(format!("{}", rsu.id()), "rsu-0");
    }

    #[test]
    #[should_panic(expected = "coverage radius must be positive")]
    fn rsu_rejects_zero_radius() {
        let _ = Rsu::new(RsuId(0), Position::default(), 0.0, 1e6, 1.0);
    }

    #[test]
    fn corridor_places_rsus_evenly() {
        let c = corridor();
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert_eq!(c.rsus()[3].position(), Position::new(3000.0, 0.0));
        assert!((c.inter_rsu_distance(RsuId(1), RsuId(3)) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn nearest_and_covering_queries() {
        let c = corridor();
        let p = Position::new(1400.0, 0.0);
        assert_eq!(c.nearest(&p).id(), RsuId(1));
        assert_eq!(c.covering(&p).unwrap().id(), RsuId(1));
        // Midpoint outside both coverage radii (600 m radius, 1000 m spacing
        // means full coverage; push y far away to create a hole).
        let hole = Position::new(1500.0, 2000.0);
        assert!(c.covering(&hole).is_none());
    }

    #[test]
    fn rsu_lookup_by_id() {
        let c = corridor();
        assert!(c.rsu(RsuId(4)).is_some());
        assert!(c.rsu(RsuId(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "corridor needs at least one RSU")]
    fn empty_corridor_rejected() {
        let _ = Corridor::new(vec![]);
    }
}
