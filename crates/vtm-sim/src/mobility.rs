//! Vehicle mobility: positions, velocities and mobility models.
//!
//! The paper motivates twin migration with vehicle mobility across the
//! limited coverage of roadside units. These mobility models generate the
//! movement that triggers migrations in the end-to-end simulator.

use rand::Rng;

/// A 2-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate (metres), conventionally along the road.
    pub x: f64,
    /// Y coordinate (metres), conventionally across lanes.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A 2-D velocity in metres per second.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Velocity {
    /// X component (m/s).
    pub vx: f64,
    /// Y component (m/s).
    pub vy: f64,
}

impl Velocity {
    /// Creates a velocity.
    pub fn new(vx: f64, vy: f64) -> Self {
        Self { vx, vy }
    }

    /// Speed (magnitude) in m/s.
    pub fn speed(&self) -> f64 {
        (self.vx * self.vx + self.vy * self.vy).sqrt()
    }
}

/// A mobility model advances a `(position, velocity)` pair by a time step.
pub trait MobilityModel {
    /// Advances the state by `dt` seconds, returning the new state.
    fn advance<R: Rng + ?Sized>(
        &self,
        position: Position,
        velocity: Velocity,
        dt: f64,
        rng: &mut R,
    ) -> (Position, Velocity);
}

/// Constant-velocity highway motion along the x axis (the canonical scenario
/// for RSU hand-overs along a road corridor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantVelocity;

impl MobilityModel for ConstantVelocity {
    fn advance<R: Rng + ?Sized>(
        &self,
        position: Position,
        velocity: Velocity,
        dt: f64,
        _rng: &mut R,
    ) -> (Position, Velocity) {
        (
            Position::new(position.x + velocity.vx * dt, position.y + velocity.vy * dt),
            velocity,
        )
    }
}

/// Highway motion with Gaussian speed perturbation, clamped to a speed band.
/// Models stop-and-go traffic without changing direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbedHighway {
    /// Standard deviation of the per-step speed perturbation (m/s).
    pub speed_jitter: f64,
    /// Minimum speed (m/s).
    pub min_speed: f64,
    /// Maximum speed (m/s).
    pub max_speed: f64,
}

impl Default for PerturbedHighway {
    fn default() -> Self {
        Self {
            speed_jitter: 1.0,
            min_speed: 5.0,
            max_speed: 40.0,
        }
    }
}

impl MobilityModel for PerturbedHighway {
    fn advance<R: Rng + ?Sized>(
        &self,
        position: Position,
        velocity: Velocity,
        dt: f64,
        rng: &mut R,
    ) -> (Position, Velocity) {
        let direction = if velocity.vx < 0.0 { -1.0 } else { 1.0 };
        let jitter: f64 = rng.gen_range(-self.speed_jitter..=self.speed_jitter);
        let speed = (velocity.speed() + jitter).clamp(self.min_speed, self.max_speed);
        let new_velocity = Velocity::new(direction * speed, 0.0);
        (
            Position::new(position.x + new_velocity.vx * dt, position.y),
            new_velocity,
        )
    }
}

/// Random-waypoint motion inside a rectangle: the vehicle heads to a random
/// waypoint at a random speed and picks a new one on arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    /// Width of the area (metres).
    pub width: f64,
    /// Height of the area (metres).
    pub height: f64,
    /// Minimum speed (m/s).
    pub min_speed: f64,
    /// Maximum speed (m/s).
    pub max_speed: f64,
}

impl RandomWaypoint {
    /// Creates a random-waypoint model on a `width x height` rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the area or the speed band is degenerate.
    pub fn new(width: f64, height: f64, min_speed: f64, max_speed: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "area must be non-degenerate");
        assert!(
            min_speed > 0.0 && max_speed >= min_speed,
            "speed band must satisfy 0 < min <= max"
        );
        Self {
            width,
            height,
            min_speed,
            max_speed,
        }
    }
}

impl MobilityModel for RandomWaypoint {
    fn advance<R: Rng + ?Sized>(
        &self,
        position: Position,
        velocity: Velocity,
        dt: f64,
        rng: &mut R,
    ) -> (Position, Velocity) {
        let mut velocity = velocity;
        if velocity.speed() < 1e-9 {
            // Pick a new waypoint and speed.
            let target = Position::new(
                rng.gen_range(0.0..self.width),
                rng.gen_range(0.0..self.height),
            );
            let speed = rng.gen_range(self.min_speed..=self.max_speed);
            let dist = position.distance_to(&target).max(1e-9);
            velocity = Velocity::new(
                speed * (target.x - position.x) / dist,
                speed * (target.y - position.y) / dist,
            );
        }
        let mut next = Position::new(position.x + velocity.vx * dt, position.y + velocity.vy * dt);
        // Stop (forcing a new waypoint next step) when leaving the area.
        if next.x < 0.0 || next.x > self.width || next.y < 0.0 || next.y > self.height {
            next.x = next.x.clamp(0.0, self.width);
            next.y = next.y.clamp(0.0, self.height);
            velocity = Velocity::default();
        }
        (next, velocity)
    }
}

/// A type-erased mobility model covering every built-in variant.
///
/// [`MobilityModel::advance`] is generic over the RNG, so the trait is not
/// object safe; scenario code that selects a mobility model at runtime (the
/// trace-driven scenario engine in `vtm-core`) dispatches through this enum
/// instead of a trait object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyMobility {
    /// Constant-velocity motion ([`ConstantVelocity`]).
    Constant(ConstantVelocity),
    /// Perturbed highway motion ([`PerturbedHighway`]).
    Highway(PerturbedHighway),
    /// Random-waypoint motion ([`RandomWaypoint`]).
    Waypoint(RandomWaypoint),
}

impl MobilityModel for AnyMobility {
    fn advance<R: Rng + ?Sized>(
        &self,
        position: Position,
        velocity: Velocity,
        dt: f64,
        rng: &mut R,
    ) -> (Position, Velocity) {
        match self {
            AnyMobility::Constant(m) => m.advance(position, velocity, dt, rng),
            AnyMobility::Highway(m) => m.advance(position, velocity, dt, rng),
            AnyMobility::Waypoint(m) => m.advance(position, velocity, dt, rng),
        }
    }
}

impl From<ConstantVelocity> for AnyMobility {
    fn from(m: ConstantVelocity) -> Self {
        AnyMobility::Constant(m)
    }
}

impl From<PerturbedHighway> for AnyMobility {
    fn from(m: PerturbedHighway) -> Self {
        AnyMobility::Highway(m)
    }
}

impl From<RandomWaypoint> for AnyMobility {
    fn from(m: RandomWaypoint) -> Self {
        AnyMobility::Waypoint(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn position_distance() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn velocity_speed() {
        assert!((Velocity::new(3.0, 4.0).speed() - 5.0).abs() < 1e-12);
        assert_eq!(Velocity::default().speed(), 0.0);
    }

    #[test]
    fn constant_velocity_moves_linearly() {
        let mut rng = StdRng::seed_from_u64(0);
        let (p, v) = ConstantVelocity.advance(
            Position::new(10.0, 0.0),
            Velocity::new(20.0, 0.0),
            2.0,
            &mut rng,
        );
        assert_eq!(p, Position::new(50.0, 0.0));
        assert_eq!(v, Velocity::new(20.0, 0.0));
    }

    #[test]
    fn perturbed_highway_keeps_direction_and_speed_band() {
        let model = PerturbedHighway::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut pos = Position::new(0.0, 0.0);
        let mut vel = Velocity::new(25.0, 0.0);
        for _ in 0..200 {
            let (p, v) = model.advance(pos, vel, 1.0, &mut rng);
            assert!(p.x >= pos.x, "vehicle must keep moving forward");
            assert!(v.speed() >= model.min_speed - 1e-9);
            assert!(v.speed() <= model.max_speed + 1e-9);
            pos = p;
            vel = v;
        }
    }

    #[test]
    fn perturbed_highway_preserves_negative_direction() {
        let model = PerturbedHighway::default();
        let mut rng = StdRng::seed_from_u64(2);
        let (_, v) = model.advance(
            Position::default(),
            Velocity::new(-20.0, 0.0),
            1.0,
            &mut rng,
        );
        assert!(v.vx < 0.0);
    }

    #[test]
    fn random_waypoint_stays_in_area() {
        let model = RandomWaypoint::new(1000.0, 500.0, 5.0, 20.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut pos = Position::new(500.0, 250.0);
        let mut vel = Velocity::default();
        for _ in 0..500 {
            let (p, v) = model.advance(pos, vel, 1.0, &mut rng);
            assert!(p.x >= 0.0 && p.x <= 1000.0, "x out of area: {}", p.x);
            assert!(p.y >= 0.0 && p.y <= 500.0, "y out of area: {}", p.y);
            pos = p;
            vel = v;
        }
    }

    #[test]
    #[should_panic(expected = "area must be non-degenerate")]
    fn random_waypoint_rejects_zero_area() {
        let _ = RandomWaypoint::new(0.0, 10.0, 1.0, 2.0);
    }

    #[test]
    fn any_mobility_dispatches_to_inner_model() {
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let pos = Position::new(10.0, 0.0);
        let vel = Velocity::new(20.0, 0.0);
        let erased: AnyMobility = PerturbedHighway::default().into();
        let direct = PerturbedHighway::default().advance(pos, vel, 1.0, &mut rng_a);
        let dispatched = erased.advance(pos, vel, 1.0, &mut rng_b);
        assert_eq!(direct, dispatched);

        let constant: AnyMobility = ConstantVelocity.into();
        let (p, v) = constant.advance(pos, vel, 2.0, &mut rng_a);
        assert_eq!(p, Position::new(50.0, 0.0));
        assert_eq!(v, vel);

        let waypoint: AnyMobility = RandomWaypoint::new(100.0, 100.0, 1.0, 2.0).into();
        let (p, _) = waypoint.advance(
            Position::new(50.0, 50.0),
            Velocity::default(),
            1.0,
            &mut rng_a,
        );
        assert!((0.0..=100.0).contains(&p.x) && (0.0..=100.0).contains(&p.y));
    }
}
