//! # vtm-sim — vehicular-metaverse simulator substrate
//!
//! The physical-world substrate needed by the reproduction of *"Learning-based
//! Incentive Mechanism for Task Freshness-aware Vehicular Twin Migration"*
//! (ICDCS 2023): vehicles, mobility, roadside units, the inter-RSU wireless
//! channel, vehicular twins and their pre-copy live migration, a discrete
//! event queue, and an end-to-end simulation that triggers migrations as
//! vehicles cross RSU coverage boundaries.
//!
//! The paper evaluates its incentive mechanism analytically/numerically; this
//! simulator exists so that the mechanism can also be exercised end-to-end
//! (examples `highway_migration` and the `simulator` benchmarks), and so the
//! analytic Age of Twin Migration of Eq. (1) can be cross-checked against a
//! packet-level model (see [`migration::analytic_aotm_seconds`] versus
//! [`migration::simulate_precopy_migration`]).
//!
//! # Example
//!
//! ```
//! use vtm_sim::prelude::*;
//!
//! // AoTM of migrating a 200 MB twin over 10 MHz on the paper's link budget.
//! let link = LinkBudget::default();
//! let aotm = analytic_aotm_seconds(200.0, 10e6, &link);
//! assert!(aotm > 0.0 && aotm.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod event;
pub mod handover;
pub mod metaverse;
pub mod migration;
pub mod mobility;
pub mod radio;
pub mod rsu;
pub mod stats;
pub mod trace;
pub mod twin;
pub mod vehicle;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::channel::{ChannelError, OfdmaChannel};
    pub use crate::event::{EventQueue, ScheduledEvent};
    pub use crate::handover::{
        HandoverDecision, HandoverPolicy, HysteresisPolicy, NearestRsuPolicy, PredictivePolicy,
    };
    pub use crate::metaverse::{
        BandwidthAllocator, EqualShareAllocator, FixedAllocator, MetaverseConfig, MetaverseSim,
        MigrationRecord, SimulationReport, VmuEntry,
    };
    pub use crate::migration::{
        analytic_aotm_seconds, simulate_precopy_migration, MigrationError, MigrationReport,
        PreCopyConfig,
    };
    pub use crate::mobility::{
        AnyMobility, ConstantVelocity, MobilityModel, PerturbedHighway, Position, RandomWaypoint,
        Velocity,
    };
    pub use crate::radio::{Db, Dbm, LinkBudget, Milliwatts};
    pub use crate::rsu::{Corridor, Rsu, RsuId};
    pub use crate::stats::{percentile_sorted, Summary};
    pub use crate::trace::{Range, Trace, TraceConfig, Trip};
    pub use crate::twin::{TwinDataProfile, TwinId, VehicularTwin};
    pub use crate::vehicle::{Vehicle, VehicleId};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let link = LinkBudget::default();
        assert!(link.spectral_efficiency() > 0.0);
    }
}
