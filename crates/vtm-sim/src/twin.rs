//! Vehicular Twins: the digital replicas deployed on RSU edge servers.
//!
//! A twin's state is what has to be moved during migration. Following the
//! paper's §III-A, the migrated data `D_n` bundles the system configuration,
//! historical memory data and real-time state of the VMU, and is transmitted
//! in blocks. The dirty-page model drives the pre-copy live-migration rounds.

/// Identifier of a vehicular twin (matches its VMU's identifier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TwinId(pub usize);

impl std::fmt::Display for TwinId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "twin-{}", self.0)
    }
}

/// Breakdown of the data composing a vehicular twin, in megabytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwinDataProfile {
    /// System configuration (CPU/GPU description, runtime images).
    pub system_config_mb: f64,
    /// Historical memory data (interaction history, learned models).
    pub historical_memory_mb: f64,
    /// Real-time state (sensor snapshot, session state).
    pub realtime_state_mb: f64,
}

impl TwinDataProfile {
    /// Total twin size `D_n` in megabytes.
    pub fn total_mb(&self) -> f64 {
        self.system_config_mb + self.historical_memory_mb + self.realtime_state_mb
    }

    /// Total twin size in bits (1 MB = 8 × 10⁶ bits, the convention used when
    /// combining with Shannon rates in bit/s).
    pub fn total_bits(&self) -> f64 {
        self.total_mb() * 8e6
    }

    /// Creates a profile with the given total size, split 20 % configuration,
    /// 60 % historical memory, 20 % real-time state.
    ///
    /// # Panics
    ///
    /// Panics if `total_mb` is not positive.
    pub fn from_total_mb(total_mb: f64) -> Self {
        assert!(total_mb > 0.0, "twin size must be positive");
        Self {
            system_config_mb: 0.2 * total_mb,
            historical_memory_mb: 0.6 * total_mb,
            realtime_state_mb: 0.2 * total_mb,
        }
    }
}

/// A vehicular twin deployed on an RSU edge server.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicularTwin {
    id: TwinId,
    data: TwinDataProfile,
    /// Rate (MB/s) at which the twin's memory is re-dirtied while it keeps
    /// serving its VMU during live migration.
    dirty_rate_mb_per_s: f64,
    /// Block size used when streaming the twin between RSUs (MB).
    block_size_mb: f64,
    /// Immersion coefficient α_n of the owning VMU (unit profit of immersion).
    immersion_coefficient: f64,
}

impl VehicularTwin {
    /// Creates a twin.
    ///
    /// # Panics
    ///
    /// Panics if the dirty rate is negative, the block size is not positive or
    /// the immersion coefficient is not positive.
    pub fn new(
        id: TwinId,
        data: TwinDataProfile,
        dirty_rate_mb_per_s: f64,
        block_size_mb: f64,
        immersion_coefficient: f64,
    ) -> Self {
        assert!(dirty_rate_mb_per_s >= 0.0, "dirty rate cannot be negative");
        assert!(block_size_mb > 0.0, "block size must be positive");
        assert!(
            immersion_coefficient > 0.0,
            "immersion coefficient must be positive"
        );
        Self {
            id,
            data,
            dirty_rate_mb_per_s,
            block_size_mb,
            immersion_coefficient,
        }
    }

    /// Convenience constructor matching the paper's experiments: a twin of
    /// `total_mb` megabytes with immersion coefficient `alpha`, a modest dirty
    /// rate and 1 MB blocks.
    pub fn with_size_and_alpha(id: TwinId, total_mb: f64, alpha: f64) -> Self {
        Self::new(
            id,
            TwinDataProfile::from_total_mb(total_mb),
            2.0,
            1.0,
            alpha,
        )
    }

    /// Twin identifier.
    pub fn id(&self) -> TwinId {
        self.id
    }

    /// Data profile of the twin.
    pub fn data(&self) -> &TwinDataProfile {
        &self.data
    }

    /// Total size `D_n` in megabytes.
    pub fn size_mb(&self) -> f64 {
        self.data.total_mb()
    }

    /// Total size in bits.
    pub fn size_bits(&self) -> f64 {
        self.data.total_bits()
    }

    /// Memory dirty rate in MB/s.
    pub fn dirty_rate_mb_per_s(&self) -> f64 {
        self.dirty_rate_mb_per_s
    }

    /// Migration block size in MB.
    pub fn block_size_mb(&self) -> f64 {
        self.block_size_mb
    }

    /// Number of blocks needed to stream the whole twin once.
    pub fn block_count(&self) -> usize {
        (self.size_mb() / self.block_size_mb).ceil() as usize
    }

    /// Immersion coefficient α_n of the owning VMU.
    pub fn immersion_coefficient(&self) -> f64 {
        self.immersion_coefficient
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_totals() {
        let p = TwinDataProfile {
            system_config_mb: 10.0,
            historical_memory_mb: 80.0,
            realtime_state_mb: 10.0,
        };
        assert!((p.total_mb() - 100.0).abs() < 1e-12);
        assert!((p.total_bits() - 8e8).abs() < 1e-3);
    }

    #[test]
    fn profile_from_total_partitions_correctly() {
        let p = TwinDataProfile::from_total_mb(200.0);
        assert!((p.total_mb() - 200.0).abs() < 1e-9);
        assert!((p.historical_memory_mb - 120.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "twin size must be positive")]
    fn zero_total_rejected() {
        let _ = TwinDataProfile::from_total_mb(0.0);
    }

    #[test]
    fn twin_accessors() {
        let twin = VehicularTwin::with_size_and_alpha(TwinId(3), 150.0, 7.5);
        assert_eq!(twin.id(), TwinId(3));
        assert!((twin.size_mb() - 150.0).abs() < 1e-9);
        assert_eq!(twin.block_count(), 150);
        assert!((twin.immersion_coefficient() - 7.5).abs() < 1e-12);
        assert!(twin.dirty_rate_mb_per_s() >= 0.0);
        assert_eq!(format!("{}", twin.id()), "twin-3");
    }

    #[test]
    fn block_count_rounds_up() {
        let twin = VehicularTwin::new(
            TwinId(0),
            TwinDataProfile::from_total_mb(10.5),
            0.0,
            2.0,
            5.0,
        );
        assert_eq!(twin.block_count(), 6);
    }

    #[test]
    #[should_panic(expected = "immersion coefficient must be positive")]
    fn non_positive_alpha_rejected() {
        let _ = VehicularTwin::with_size_and_alpha(TwinId(0), 100.0, 0.0);
    }
}
