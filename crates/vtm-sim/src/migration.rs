//! Pre-copy live migration of vehicular twins and the AoTM it produces.
//!
//! The paper cites the pre-copy live-migration strategy: the twin keeps
//! running on the source RSU while its memory is copied in rounds; each round
//! re-transfers the pages dirtied during the previous round, and a final
//! stop-and-copy round moves the residual state. The total elapsed time of the
//! task — from the generation of the first block to the reception of the last
//! one — is exactly the Age of Twin Migration defined in §III-A, so the
//! simulator's packet-level AoTM and the analytic `D_n / γ_n` coincide when
//! the dirty rate is zero.

use crate::radio::LinkBudget;
use crate::twin::VehicularTwin;

/// Configuration of the pre-copy migration algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreCopyConfig {
    /// Maximum number of iterative pre-copy rounds before stop-and-copy.
    pub max_rounds: usize,
    /// Stop-and-copy is triggered once the residual dirty data drops below
    /// this threshold (MB).
    pub stop_and_copy_threshold_mb: f64,
}

impl Default for PreCopyConfig {
    fn default() -> Self {
        Self {
            max_rounds: 10,
            stop_and_copy_threshold_mb: 1.0,
        }
    }
}

/// Outcome of one migration round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationRound {
    /// Round index (0 is the full copy, subsequent rounds copy dirty pages).
    pub round: usize,
    /// Data transferred in this round (MB).
    pub transferred_mb: f64,
    /// Wall-clock duration of the round (seconds).
    pub duration_s: f64,
}

/// Complete report of a simulated twin migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// Bandwidth allocated to the migration (Hz).
    pub bandwidth_hz: f64,
    /// Achievable link rate (bit/s) at that bandwidth.
    pub rate_bps: f64,
    /// Per-round breakdown.
    pub rounds: Vec<MigrationRound>,
    /// Total data moved across all rounds (MB); at least the twin size.
    pub total_transferred_mb: f64,
    /// Total migration time = Age of Twin Migration (seconds).
    pub aotm_s: f64,
    /// Downtime: duration of the final stop-and-copy round (seconds), during
    /// which the twin is unavailable to its VMU.
    pub downtime_s: f64,
    /// Whether the iterative phase converged below the stop-and-copy threshold
    /// (false means the round limit forced stop-and-copy).
    pub converged: bool,
}

/// Errors returned by the migration simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationError {
    /// The allocated bandwidth is zero or negative, so the transfer can never finish.
    NoBandwidth,
    /// The link rate is not higher than the twin's dirty rate, so pre-copy
    /// iterations would never converge.
    DirtyRateExceedsLinkRate {
        /// Link rate in MB/s.
        link_rate_mb_per_s: f64,
        /// Twin dirty rate in MB/s.
        dirty_rate_mb_per_s: f64,
    },
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::NoBandwidth => write!(f, "migration requires positive bandwidth"),
            MigrationError::DirtyRateExceedsLinkRate {
                link_rate_mb_per_s,
                dirty_rate_mb_per_s,
            } => write!(
                f,
                "link rate {link_rate_mb_per_s} MB/s does not exceed dirty rate {dirty_rate_mb_per_s} MB/s"
            ),
        }
    }
}

impl std::error::Error for MigrationError {}

/// Analytic Age of Twin Migration of Eq. (1): `A_n = D_n / γ_n` with
/// `γ_n = b_n · log2(1 + SNR)`.
///
/// `twin_size_mb` is `D_n` in megabytes, `bandwidth_hz` is the purchased
/// bandwidth `b_n` in Hz and `link` supplies the SNR. Returns seconds;
/// `f64::INFINITY` when the bandwidth is zero.
pub fn analytic_aotm_seconds(twin_size_mb: f64, bandwidth_hz: f64, link: &LinkBudget) -> f64 {
    if bandwidth_hz <= 0.0 {
        return f64::INFINITY;
    }
    let bits = twin_size_mb * 8e6;
    bits / link.rate_bps(bandwidth_hz)
}

/// Simulates a pre-copy live migration of `twin` over `bandwidth_hz` of
/// spectrum on `link`.
///
/// # Errors
///
/// Returns [`MigrationError::NoBandwidth`] for non-positive bandwidth and
/// [`MigrationError::DirtyRateExceedsLinkRate`] when the twin dirties memory
/// faster than the link can drain it.
pub fn simulate_precopy_migration(
    twin: &VehicularTwin,
    bandwidth_hz: f64,
    link: &LinkBudget,
    config: &PreCopyConfig,
) -> Result<MigrationReport, MigrationError> {
    if bandwidth_hz <= 0.0 {
        return Err(MigrationError::NoBandwidth);
    }
    let rate_bps = link.rate_bps(bandwidth_hz);
    let rate_mb_per_s = rate_bps / 8e6;
    let dirty = twin.dirty_rate_mb_per_s();
    if dirty > 0.0 && rate_mb_per_s <= dirty {
        return Err(MigrationError::DirtyRateExceedsLinkRate {
            link_rate_mb_per_s: rate_mb_per_s,
            dirty_rate_mb_per_s: dirty,
        });
    }

    let mut rounds = Vec::new();
    let mut to_transfer = twin.size_mb();
    let mut total_transferred = 0.0;
    let mut elapsed = 0.0;
    let mut converged = false;

    for round in 0..config.max_rounds {
        let duration = to_transfer / rate_mb_per_s;
        rounds.push(MigrationRound {
            round,
            transferred_mb: to_transfer,
            duration_s: duration,
        });
        total_transferred += to_transfer;
        elapsed += duration;
        // Pages dirtied while this round was streaming must be re-sent.
        let dirtied = dirty * duration;
        to_transfer = dirtied;
        if to_transfer <= config.stop_and_copy_threshold_mb {
            converged = true;
            break;
        }
    }

    // Final stop-and-copy round: the twin is paused, the residual state moves.
    let downtime = to_transfer / rate_mb_per_s;
    if to_transfer > 0.0 {
        rounds.push(MigrationRound {
            round: rounds.len(),
            transferred_mb: to_transfer,
            duration_s: downtime,
        });
        total_transferred += to_transfer;
        elapsed += downtime;
    }

    Ok(MigrationReport {
        bandwidth_hz,
        rate_bps,
        rounds,
        total_transferred_mb: total_transferred,
        aotm_s: elapsed,
        downtime_s: downtime,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twin::{TwinDataProfile, TwinId};

    fn twin(size_mb: f64, dirty: f64) -> VehicularTwin {
        VehicularTwin::new(
            TwinId(0),
            TwinDataProfile::from_total_mb(size_mb),
            dirty,
            1.0,
            5.0,
        )
    }

    #[test]
    fn analytic_aotm_matches_hand_computation() {
        let link = LinkBudget::default();
        let aotm = analytic_aotm_seconds(200.0, 10e6, &link);
        let expected = 200.0 * 8e6 / (10e6 * link.spectral_efficiency());
        assert!((aotm - expected).abs() < 1e-9);
        assert!(analytic_aotm_seconds(200.0, 0.0, &link).is_infinite());
    }

    #[test]
    fn zero_dirty_rate_matches_analytic_aotm() {
        let link = LinkBudget::default();
        let t = twin(150.0, 0.0);
        let report = simulate_precopy_migration(&t, 5e6, &link, &PreCopyConfig::default()).unwrap();
        let analytic = analytic_aotm_seconds(150.0, 5e6, &link);
        assert!((report.aotm_s - analytic).abs() < 1e-9);
        assert!(report.converged);
        assert_eq!(report.rounds.len(), 1);
        assert!((report.total_transferred_mb - 150.0).abs() < 1e-9);
        assert_eq!(report.downtime_s, 0.0);
    }

    #[test]
    fn dirty_pages_extend_migration_but_it_terminates() {
        let link = LinkBudget::default();
        let t = twin(200.0, 3.0);
        let report = simulate_precopy_migration(&t, 1e6, &link, &PreCopyConfig::default()).unwrap();
        let analytic = analytic_aotm_seconds(200.0, 1e6, &link);
        assert!(report.aotm_s > analytic, "dirtying must add time");
        assert!(report.total_transferred_mb > 200.0);
        assert!(report.rounds.len() >= 2);
        assert!(report.aotm_s.is_finite());
    }

    #[test]
    fn more_bandwidth_reduces_aotm_and_downtime() {
        let link = LinkBudget::default();
        let t = twin(200.0, 3.0);
        let slow = simulate_precopy_migration(&t, 1e6, &link, &PreCopyConfig::default()).unwrap();
        let fast = simulate_precopy_migration(&t, 10e6, &link, &PreCopyConfig::default()).unwrap();
        assert!(fast.aotm_s < slow.aotm_s);
        assert!(fast.downtime_s <= slow.downtime_s + 1e-12);
    }

    #[test]
    fn round_limit_forces_stop_and_copy() {
        let link = LinkBudget::default();
        // Very high dirty rate relative to the link so rounds shrink slowly.
        let t = twin(100.0, 300.0);
        let config = PreCopyConfig {
            max_rounds: 2,
            stop_and_copy_threshold_mb: 0.001,
        };
        let report = simulate_precopy_migration(&t, 1e6, &link, &config);
        match report {
            Ok(r) => {
                assert!(!r.converged);
                assert!(r.downtime_s > 0.0);
            }
            Err(MigrationError::DirtyRateExceedsLinkRate { .. }) => {
                // Also acceptable: the dirty rate may exceed the link rate.
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zero_bandwidth_is_an_error() {
        let link = LinkBudget::default();
        let t = twin(100.0, 0.0);
        assert!(matches!(
            simulate_precopy_migration(&t, 0.0, &link, &PreCopyConfig::default()),
            Err(MigrationError::NoBandwidth)
        ));
    }

    #[test]
    fn dirty_rate_faster_than_link_is_an_error() {
        let link = LinkBudget::default();
        let rate_mb = link.rate_bps(1e3) / 8e6;
        let t = twin(100.0, rate_mb * 2.0);
        let err =
            simulate_precopy_migration(&t, 1e3, &link, &PreCopyConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            MigrationError::DirtyRateExceedsLinkRate { .. }
        ));
        assert!(!err.to_string().is_empty());
    }
}
