//! Randomized property tests of the simulator substrate invariants.
//!
//! Originally written with `proptest`; the offline build has no access to
//! crates.io, so each property is checked over a fixed number of
//! pseudo-random cases drawn from a deterministically seeded generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vtm_sim::event::EventQueue;
use vtm_sim::mobility::{MobilityModel, PerturbedHighway, Position, RandomWaypoint, Velocity};
use vtm_sim::radio::{Db, Dbm, LinkBudget};
use vtm_sim::rsu::Corridor;

/// Runs `check` over `n` independent deterministic cases.
fn cases(n: usize, seed: u64, mut check: impl FnMut(&mut StdRng)) {
    for case in 0..n as u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        check(&mut rng);
    }
}

/// dBm <-> mW conversion round-trips.
#[test]
fn dbm_round_trip() {
    cases(64, 0x21, |rng| {
        let value = rng.gen_range(-160.0..60.0);
        let back = Dbm(value).to_milliwatts().to_dbm();
        assert!((back.0 - value).abs() < 1e-9);
    });
}

/// dB <-> linear conversion round-trips.
#[test]
fn db_round_trip() {
    cases(64, 0x22, |rng| {
        let value = rng.gen_range(-60.0..60.0);
        let back = Db::from_linear(Db(value).to_linear());
        assert!((back.0 - value).abs() < 1e-9);
    });
}

/// Shannon rate is monotone: more bandwidth, more power or a shorter hop
/// never reduce the rate.
#[test]
fn rate_monotonicity() {
    cases(64, 0x23, |rng| {
        let bandwidth = rng.gen_range(1e3..1e8);
        let extra_bandwidth = rng.gen_range(1e3..1e7);
        let distance = rng.gen_range(10.0..5000.0);
        let extra_distance = rng.gen_range(1.0..5000.0);
        let link = LinkBudget::default().with_distance(distance);
        let further = LinkBudget::default().with_distance(distance + extra_distance);
        assert!(link.rate_bps(bandwidth + extra_bandwidth) >= link.rate_bps(bandwidth));
        assert!(link.rate_bps(bandwidth) >= further.rate_bps(bandwidth));
    });
}

/// Events always pop in non-decreasing time order regardless of insertion
/// order, and the clock never runs backwards.
#[test]
fn event_queue_orders_events() {
    cases(64, 0x24, |rng| {
        let len = rng.gen_range(1..100usize);
        let times: Vec<f64> = (0..len).map(|_| rng.gen_range(0.0..1e4)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut popped = 0;
        while let Some(event) = q.pop() {
            assert!(event.time >= last);
            assert!(q.now() >= last);
            last = event.time;
            popped += 1;
        }
        assert_eq!(popped, times.len());
    });
}

/// The highway mobility model keeps vehicles on the road (y unchanged),
/// moving forward, and within its speed band.
#[test]
fn highway_mobility_invariants() {
    cases(64, 0x25, |rng| {
        let seed = rng.gen_range(0..1000u64);
        let speed = rng.gen_range(5.0..40.0);
        let steps = rng.gen_range(1..200usize);
        let model = PerturbedHighway::default();
        let mut mobility_rng = StdRng::seed_from_u64(seed);
        let mut pos = Position::new(0.0, 0.0);
        let mut vel = Velocity::new(speed, 0.0);
        for _ in 0..steps {
            let (p, v) = model.advance(pos, vel, 1.0, &mut mobility_rng);
            assert!(p.x >= pos.x);
            assert_eq!(p.y, 0.0);
            assert!(v.speed() >= model.min_speed - 1e-9);
            assert!(v.speed() <= model.max_speed + 1e-9);
            pos = p;
            vel = v;
        }
    });
}

/// Random-waypoint vehicles never leave their area.
#[test]
fn random_waypoint_stays_in_area() {
    cases(64, 0x26, |rng| {
        let seed = rng.gen_range(0..500u64);
        let steps = rng.gen_range(1..300usize);
        let model = RandomWaypoint::new(2000.0, 800.0, 5.0, 25.0);
        let mut mobility_rng = StdRng::seed_from_u64(seed);
        let mut pos = Position::new(1000.0, 400.0);
        let mut vel = Velocity::default();
        for _ in 0..steps {
            let (p, v) = model.advance(pos, vel, 1.0, &mut mobility_rng);
            assert!(p.x >= 0.0 && p.x <= 2000.0);
            assert!(p.y >= 0.0 && p.y <= 800.0);
            pos = p;
            vel = v;
        }
    });
}

/// The corridor's `covering` query returns an RSU that actually covers the
/// position, and `nearest` is never farther than any other RSU.
#[test]
fn corridor_queries_are_consistent() {
    cases(64, 0x27, |rng| {
        let count = rng.gen_range(1..10usize);
        let spacing = rng.gen_range(200.0..2000.0);
        let x = rng.gen_range(-500.0..20000.0);
        let y = rng.gen_range(-2000.0..2000.0);
        let corridor = Corridor::along_road(count, spacing, 600.0, 50e6, 100.0);
        let p = Position::new(x, y);
        let nearest = corridor.nearest(&p);
        for rsu in corridor.rsus() {
            assert!(nearest.distance_to(&p) <= rsu.distance_to(&p) + 1e-9);
        }
        if let Some(covering) = corridor.covering(&p) {
            assert!(covering.covers(&p));
        }
    });
}
