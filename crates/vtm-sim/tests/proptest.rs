//! Property-based tests of the simulator substrate invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use vtm_sim::event::EventQueue;
use vtm_sim::mobility::{MobilityModel, PerturbedHighway, Position, RandomWaypoint, Velocity};
use vtm_sim::radio::{Db, Dbm, LinkBudget};
use vtm_sim::rsu::Corridor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// dBm <-> mW conversion round-trips.
    #[test]
    fn dbm_round_trip(value in -160.0f64..60.0) {
        let back = Dbm(value).to_milliwatts().to_dbm();
        prop_assert!((back.0 - value).abs() < 1e-9);
    }

    /// dB <-> linear conversion round-trips.
    #[test]
    fn db_round_trip(value in -60.0f64..60.0) {
        let back = Db::from_linear(Db(value).to_linear());
        prop_assert!((back.0 - value).abs() < 1e-9);
    }

    /// Shannon rate is monotone: more bandwidth, more power or a shorter hop
    /// never reduce the rate.
    #[test]
    fn rate_monotonicity(
        bandwidth in 1e3f64..1e8,
        extra_bandwidth in 1e3f64..1e7,
        distance in 10.0f64..5000.0,
        extra_distance in 1.0f64..5000.0,
    ) {
        let link = LinkBudget::default().with_distance(distance);
        let further = LinkBudget::default().with_distance(distance + extra_distance);
        prop_assert!(link.rate_bps(bandwidth + extra_bandwidth) >= link.rate_bps(bandwidth));
        prop_assert!(link.rate_bps(bandwidth) >= further.rate_bps(bandwidth));
    }

    /// Events always pop in non-decreasing time order regardless of insertion
    /// order, and the clock never runs backwards.
    #[test]
    fn event_queue_orders_events(times in prop::collection::vec(0.0f64..1e4, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut popped = 0;
        while let Some(event) = q.pop() {
            prop_assert!(event.time >= last);
            prop_assert!(q.now() >= last);
            last = event.time;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// The highway mobility model keeps vehicles on the road (y unchanged),
    /// moving forward, and within its speed band.
    #[test]
    fn highway_mobility_invariants(seed in 0u64..1000, speed in 5.0f64..40.0, steps in 1usize..200) {
        let model = PerturbedHighway::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos = Position::new(0.0, 0.0);
        let mut vel = Velocity::new(speed, 0.0);
        for _ in 0..steps {
            let (p, v) = model.advance(pos, vel, 1.0, &mut rng);
            prop_assert!(p.x >= pos.x);
            prop_assert_eq!(p.y, 0.0);
            prop_assert!(v.speed() >= model.min_speed - 1e-9);
            prop_assert!(v.speed() <= model.max_speed + 1e-9);
            pos = p;
            vel = v;
        }
    }

    /// Random-waypoint vehicles never leave their area.
    #[test]
    fn random_waypoint_stays_in_area(seed in 0u64..500, steps in 1usize..300) {
        let model = RandomWaypoint::new(2000.0, 800.0, 5.0, 25.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos = Position::new(1000.0, 400.0);
        let mut vel = Velocity::default();
        for _ in 0..steps {
            let (p, v) = model.advance(pos, vel, 1.0, &mut rng);
            prop_assert!(p.x >= 0.0 && p.x <= 2000.0);
            prop_assert!(p.y >= 0.0 && p.y <= 800.0);
            pos = p;
            vel = v;
        }
    }

    /// The corridor's `covering` query returns an RSU that actually covers the
    /// position, and `nearest` is never farther than any other RSU.
    #[test]
    fn corridor_queries_are_consistent(
        count in 1usize..10,
        spacing in 200.0f64..2000.0,
        x in -500.0f64..20000.0,
        y in -2000.0f64..2000.0,
    ) {
        let corridor = Corridor::along_road(count, spacing, 600.0, 50e6, 100.0);
        let p = Position::new(x, y);
        let nearest = corridor.nearest(&p);
        for rsu in corridor.rsus() {
            prop_assert!(nearest.distance_to(&p) <= rsu.distance_to(&p) + 1e-9);
        }
        if let Some(covering) = corridor.covering(&p) {
            prop_assert!(covering.covers(&p));
        }
    }
}
