//! Equilibrium verification.
//!
//! Definition 1 of the paper states that a strategy profile is a Stackelberg
//! equilibrium iff neither the leader nor any follower can improve its utility
//! by a unilateral deviation. These helpers verify that property numerically
//! by scanning a grid of deviations, which the integration tests use to
//! certify both the closed-form solution and the learning-based one.

use crate::stackelberg::{solve_follower_equilibrium, SolveOptions, StackelbergGame};

/// Outcome of a numerical equilibrium verification.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumReport {
    /// Largest utility gain the leader could obtain by deviating (non-positive
    /// within tolerance when the profile is an equilibrium).
    pub leader_best_gain: f64,
    /// Leader action achieving [`EquilibriumReport::leader_best_gain`].
    pub leader_best_deviation: f64,
    /// Largest utility gain any follower could obtain by deviating.
    pub follower_best_gain: f64,
    /// `(follower index, strategy)` achieving the best follower gain.
    pub follower_best_deviation: (usize, f64),
    /// Number of deviation candidates evaluated.
    pub candidates_checked: usize,
}

impl EquilibriumReport {
    /// Whether the profile is an (approximate) Stackelberg equilibrium: no
    /// deviation improves any player's utility by more than `tolerance`.
    pub fn is_equilibrium(&self, tolerance: f64) -> bool {
        self.leader_best_gain <= tolerance && self.follower_best_gain <= tolerance
    }
}

/// Verifies a candidate `(leader_action, follower_strategies)` profile.
///
/// Leader deviations are evaluated with followers re-solving their subgame
/// (the Stackelberg notion of leader deviation); follower deviations are
/// unilateral with everyone else held fixed (the Nash notion inside the
/// follower stage). `grid` controls how many candidate deviations per player
/// are evaluated.
pub fn verify_equilibrium<G: StackelbergGame>(
    game: &G,
    leader_action: f64,
    follower_strategies: &[f64],
    grid: usize,
    options: &SolveOptions,
) -> EquilibriumReport {
    assert!(grid >= 2, "verification grid must have at least 2 points");
    assert_eq!(
        follower_strategies.len(),
        game.num_followers(),
        "strategy profile length must match the number of followers"
    );
    let base_leader_utility = game.leader_utility(leader_action, follower_strategies);
    let (lo, hi) = game.leader_action_bounds();
    let mut leader_best_gain = f64::NEG_INFINITY;
    let mut leader_best_deviation = leader_action;
    let mut candidates = 0usize;
    for i in 0..grid {
        let p = lo + (hi - lo) * i as f64 / (grid - 1) as f64;
        let profile = solve_follower_equilibrium(game, p, options);
        let gain = game.leader_utility(p, &profile) - base_leader_utility;
        candidates += 1;
        if gain > leader_best_gain {
            leader_best_gain = gain;
            leader_best_deviation = p;
        }
    }

    let mut follower_best_gain = f64::NEG_INFINITY;
    let mut follower_best_deviation = (0usize, 0.0f64);
    for f in 0..game.num_followers() {
        let base = game.follower_utility(
            f,
            leader_action,
            follower_strategies[f],
            follower_strategies,
        );
        let (blo, bhi) = game.follower_strategy_bounds(f);
        for i in 0..grid {
            let b = blo + (bhi - blo) * i as f64 / (grid - 1) as f64;
            let mut deviated = follower_strategies.to_vec();
            deviated[f] = b;
            game.project_followers(leader_action, &mut deviated);
            let gain = game.follower_utility(f, leader_action, deviated[f], &deviated) - base;
            candidates += 1;
            if gain > follower_best_gain {
                follower_best_gain = gain;
                follower_best_deviation = (f, b);
            }
        }
    }
    if game.num_followers() == 0 {
        follower_best_gain = 0.0;
    }

    EquilibriumReport {
        leader_best_gain,
        leader_best_deviation,
        follower_best_gain,
        follower_best_deviation,
        candidates_checked: candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stackelberg::{solve_stackelberg, SolveOptions};

    struct Monopoly {
        a: f64,
        c: f64,
        n: usize,
    }

    impl StackelbergGame for Monopoly {
        fn num_followers(&self) -> usize {
            self.n
        }
        fn leader_action_bounds(&self) -> (f64, f64) {
            (self.c, self.a)
        }
        fn follower_strategy_bounds(&self, _f: usize) -> (f64, f64) {
            (0.0, self.a)
        }
        fn follower_utility(&self, _f: usize, p: f64, own: f64, _others: &[f64]) -> f64 {
            (self.a - p) * own - 0.5 * own * own
        }
        fn leader_utility(&self, p: f64, followers: &[f64]) -> f64 {
            followers.iter().map(|b| (p - self.c) * b).sum()
        }
    }

    #[test]
    fn solved_game_verifies_as_equilibrium() {
        let game = Monopoly {
            a: 10.0,
            c: 2.0,
            n: 2,
        };
        let opts = SolveOptions::default();
        let sol = solve_stackelberg(&game, &opts).unwrap();
        let report = verify_equilibrium(
            &game,
            sol.leader_action,
            &sol.follower_strategies,
            201,
            &opts,
        );
        assert!(report.is_equilibrium(1e-2), "{report:?}");
        assert!(report.candidates_checked > 0);
    }

    #[test]
    fn non_equilibrium_is_rejected() {
        let game = Monopoly {
            a: 10.0,
            c: 2.0,
            n: 2,
        };
        let opts = SolveOptions::default();
        // Price far below optimum with followers not best-responding.
        let report = verify_equilibrium(&game, 2.5, &[0.1, 0.1], 101, &opts);
        assert!(!report.is_equilibrium(1e-2));
        assert!(report.leader_best_gain > 0.0 || report.follower_best_gain > 0.0);
    }

    #[test]
    #[should_panic(expected = "strategy profile length")]
    fn profile_length_mismatch_panics() {
        let game = Monopoly {
            a: 10.0,
            c: 2.0,
            n: 2,
        };
        let opts = SolveOptions::default();
        let _ = verify_equilibrium(&game, 3.0, &[1.0], 11, &opts);
    }

    #[test]
    fn report_serialises() {
        let report = EquilibriumReport {
            leader_best_gain: 0.0,
            leader_best_deviation: 1.0,
            follower_best_gain: 0.0,
            follower_best_deviation: (0, 1.0),
            candidates_checked: 10,
        };
        let debug = format!("{report:?}");
        assert!(debug.contains("leader_best_gain"));
        assert!(report.is_equilibrium(1e-9));
    }
}
