//! Scalar optimisation routines for concave utility maximisation.
//!
//! The Stackelberg analysis in the paper relies on the strict concavity of the
//! follower and leader utilities (Theorems 1 and 2). This module provides the
//! numerical counterparts used to (a) cross-check the closed-form solutions
//! and (b) solve variants for which no closed form exists (e.g. when the
//! aggregate bandwidth cap binds).

use std::fmt;

/// Error produced by the scalar optimisation routines.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// The search interval was empty or inverted.
    InvalidInterval {
        /// Lower bound supplied by the caller.
        lo: f64,
        /// Upper bound supplied by the caller.
        hi: f64,
    },
    /// The objective returned a non-finite value at the given point.
    NonFiniteObjective {
        /// Point at which the objective failed.
        at: f64,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::InvalidInterval { lo, hi } => {
                write!(f, "invalid search interval [{lo}, {hi}]")
            }
            OptimizeError::NonFiniteObjective { at } => {
                write!(f, "objective returned a non-finite value at {at}")
            }
        }
    }
}

impl std::error::Error for OptimizeError {}

/// Result of a scalar maximisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maximum {
    /// Argument that maximises the objective.
    pub argmax: f64,
    /// Objective value at [`Maximum::argmax`].
    pub value: f64,
    /// Number of objective evaluations used.
    pub evaluations: usize,
}

/// Maximises a unimodal (e.g. strictly concave) function on `[lo, hi]` using
/// golden-section search.
///
/// # Errors
///
/// Returns [`OptimizeError::InvalidInterval`] when `lo >= hi` or either bound
/// is not finite, and [`OptimizeError::NonFiniteObjective`] when the objective
/// produces NaN/infinity.
pub fn golden_section_max<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tolerance: f64,
    max_iters: usize,
) -> Result<Maximum, OptimizeError>
where
    F: FnMut(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return Err(OptimizeError::InvalidInterval { lo, hi });
    }
    let inv_phi = (5.0_f64.sqrt() - 1.0) / 2.0; // 1/phi
    let mut a = lo;
    let mut b = hi;
    let mut evaluations = 0usize;
    let mut eval = |x: f64, evals: &mut usize| -> Result<f64, OptimizeError> {
        *evals += 1;
        let v = f(x);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(OptimizeError::NonFiniteObjective { at: x })
        }
    };

    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = eval(c, &mut evaluations)?;
    let mut fd = eval(d, &mut evaluations)?;

    let mut iters = 0usize;
    while (b - a).abs() > tolerance && iters < max_iters {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = eval(c, &mut evaluations)?;
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = eval(d, &mut evaluations)?;
        }
        iters += 1;
    }
    let mid = 0.5 * (a + b);
    let fmid = eval(mid, &mut evaluations)?;
    // Also compare against the original endpoints so constrained optima at a
    // boundary are not missed.
    let flo = eval(lo, &mut evaluations)?;
    let fhi = eval(hi, &mut evaluations)?;
    let mut best = Maximum {
        argmax: mid,
        value: fmid,
        evaluations,
    };
    if flo > best.value {
        best.argmax = lo;
        best.value = flo;
    }
    if fhi > best.value {
        best.argmax = hi;
        best.value = fhi;
    }
    best.evaluations = evaluations;
    Ok(best)
}

/// Finds the root of a monotonically *decreasing* function on `[lo, hi]` by
/// bisection. This matches the first-order condition of a strictly concave
/// utility: its derivative is decreasing, so the utility's interior maximiser
/// is the derivative's unique root.
///
/// If the function does not change sign on the interval, the bound with the
/// smaller absolute function value is returned (which corresponds to a
/// boundary-constrained maximiser for a concave objective).
///
/// # Errors
///
/// Returns [`OptimizeError::InvalidInterval`] when `lo >= hi` or a bound is
/// not finite, and [`OptimizeError::NonFiniteObjective`] when the function
/// produces NaN/infinity.
pub fn bisect_decreasing_root<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tolerance: f64,
    max_iters: usize,
) -> Result<f64, OptimizeError>
where
    F: FnMut(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return Err(OptimizeError::InvalidInterval { lo, hi });
    }
    let check = |x: f64, v: f64| -> Result<f64, OptimizeError> {
        if v.is_finite() {
            Ok(v)
        } else {
            Err(OptimizeError::NonFiniteObjective { at: x })
        }
    };
    let mut a = lo;
    let mut b = hi;
    let fa = check(a, f(a))?;
    let fb = check(b, f(b))?;
    if fa <= 0.0 {
        // Decreasing and already non-positive at the left edge: root is at or
        // below `lo`; the constrained maximiser is `lo`.
        return Ok(lo);
    }
    if fb >= 0.0 {
        // Still non-negative at the right edge: constrained maximiser is `hi`.
        return Ok(hi);
    }
    let mut iters = 0usize;
    while (b - a) > tolerance && iters < max_iters {
        let mid = 0.5 * (a + b);
        let fm = check(mid, f(mid))?;
        if fm > 0.0 {
            a = mid;
        } else {
            b = mid;
        }
        iters += 1;
    }
    Ok(0.5 * (a + b))
}

/// Evaluates `f` on an evenly spaced grid and returns the best point.
///
/// Useful as a coarse global stage before a local refinement, and as the
/// "greedy over past prices" baseline in the paper's comparison.
///
/// # Errors
///
/// Returns [`OptimizeError::InvalidInterval`] for an empty interval and
/// [`OptimizeError::NonFiniteObjective`] if any evaluation is non-finite.
pub fn grid_search_max<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    points: usize,
) -> Result<Maximum, OptimizeError>
where
    F: FnMut(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi || points < 2 {
        return Err(OptimizeError::InvalidInterval { lo, hi });
    }
    let mut best = Maximum {
        argmax: lo,
        value: f64::NEG_INFINITY,
        evaluations: 0,
    };
    for i in 0..points {
        let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
        let v = f(x);
        if !v.is_finite() {
            return Err(OptimizeError::NonFiniteObjective { at: x });
        }
        best.evaluations += 1;
        if v > best.value {
            best.value = v;
            best.argmax = x;
        }
    }
    Ok(best)
}

/// Central-difference numerical derivative of `f` at `x` with step `h`.
pub fn numerical_derivative<F>(mut f: F, x: f64, h: f64) -> f64
where
    F: FnMut(f64) -> f64,
{
    (f(x + h) - f(x - h)) / (2.0 * h)
}

/// Central-difference numerical second derivative of `f` at `x` with step `h`.
pub fn numerical_second_derivative<F>(mut f: F, x: f64, h: f64) -> f64
where
    F: FnMut(f64) -> f64,
{
    (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h)
}

/// Checks concavity of `f` on `[lo, hi]` by sampling the second derivative on
/// a grid. Returns `true` if the second derivative is `<= tol` everywhere.
pub fn is_concave_on<F>(mut f: F, lo: f64, hi: f64, samples: usize, tol: f64) -> bool
where
    F: FnMut(f64) -> f64,
{
    if samples < 3 || lo >= hi {
        return false;
    }
    let h = (hi - lo) / (samples as f64 * 10.0);
    (0..samples).all(|i| {
        let x = lo + (hi - lo) * (i as f64 + 0.5) / samples as f64;
        numerical_second_derivative(&mut f, x, h) <= tol
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_peak() {
        let f = |x: f64| -(x - 2.5) * (x - 2.5) + 7.0;
        let m = golden_section_max(f, 0.0, 10.0, 1e-9, 200).unwrap();
        assert!((m.argmax - 2.5).abs() < 1e-6);
        assert!((m.value - 7.0).abs() < 1e-10);
        assert!(m.evaluations > 0);
    }

    #[test]
    fn golden_section_respects_boundary_maximum() {
        // Increasing function: maximum at the right boundary.
        let m = golden_section_max(|x| x, 0.0, 3.0, 1e-9, 200).unwrap();
        assert!((m.argmax - 3.0).abs() < 1e-6);
    }

    #[test]
    fn golden_section_rejects_bad_interval() {
        assert!(matches!(
            golden_section_max(|x| x, 3.0, 1.0, 1e-9, 100),
            Err(OptimizeError::InvalidInterval { .. })
        ));
    }

    #[test]
    fn golden_section_detects_nan() {
        let err = golden_section_max(|_| f64::NAN, 0.0, 1.0, 1e-9, 100).unwrap_err();
        assert!(matches!(err, OptimizeError::NonFiniteObjective { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn bisection_finds_interior_root() {
        // f(x) = 4 - x is decreasing with root 4.
        let r = bisect_decreasing_root(|x| 4.0 - x, 0.0, 10.0, 1e-10, 200).unwrap();
        assert!((r - 4.0).abs() < 1e-8);
    }

    #[test]
    fn bisection_clamps_to_bounds() {
        // Root below the interval.
        let r = bisect_decreasing_root(|x| -1.0 - x, 0.0, 5.0, 1e-10, 100).unwrap();
        assert_eq!(r, 0.0);
        // Root above the interval.
        let r = bisect_decreasing_root(|x| 100.0 - x, 0.0, 5.0, 1e-10, 100).unwrap();
        assert_eq!(r, 5.0);
    }

    #[test]
    fn grid_search_finds_coarse_max() {
        let m = grid_search_max(|x| -(x - 1.0).powi(2), 0.0, 2.0, 101).unwrap();
        assert!((m.argmax - 1.0).abs() < 0.02);
        assert_eq!(m.evaluations, 101);
    }

    #[test]
    fn grid_search_requires_two_points() {
        assert!(grid_search_max(|x| x, 0.0, 1.0, 1).is_err());
    }

    #[test]
    fn numerical_derivatives_match_analytic() {
        let f = |x: f64| x.powi(3);
        assert!((numerical_derivative(f, 2.0, 1e-5) - 12.0).abs() < 1e-5);
        assert!((numerical_second_derivative(f, 2.0, 1e-4) - 12.0).abs() < 1e-3);
    }

    #[test]
    fn concavity_detection() {
        assert!(is_concave_on(|x: f64| -(x * x), -3.0, 3.0, 50, 1e-6));
        assert!(is_concave_on(|x: f64| x.ln(), 0.5, 10.0, 50, 1e-6));
        assert!(!is_concave_on(|x: f64| x * x, -3.0, 3.0, 50, 1e-6));
    }
}
