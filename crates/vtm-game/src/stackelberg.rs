//! Generic single-leader / multi-follower Stackelberg game abstractions.
//!
//! The paper formulates a two-stage game: a Metaverse Service Provider (the
//! leader) posts a scalar bandwidth price and every Vehicular Metaverse User
//! (a follower) responds with a scalar bandwidth demand. This module captures
//! that structure generically — a scalar leader action and one scalar strategy
//! per follower — so the concrete AoTM game in `vtm-core` as well as the test
//! games used to validate the solvers can share the same machinery.

use crate::optimize::{golden_section_max, OptimizeError};

/// A single-leader, multi-follower game with scalar strategies.
///
/// Conventions:
/// * The leader action (e.g. a unit price) lives in [`leader_action_bounds`].
/// * Follower strategies (e.g. bandwidth demands) live in
///   [`follower_strategy_bounds`] and may depend on the follower index.
/// * Utilities are "larger is better" for every player.
///
/// [`leader_action_bounds`]: StackelbergGame::leader_action_bounds
/// [`follower_strategy_bounds`]: StackelbergGame::follower_strategy_bounds
pub trait StackelbergGame {
    /// Number of followers in the game.
    fn num_followers(&self) -> usize;

    /// Closed interval of feasible leader actions.
    fn leader_action_bounds(&self) -> (f64, f64);

    /// Closed interval of feasible strategies for follower `i`.
    fn follower_strategy_bounds(&self, follower: usize) -> (f64, f64);

    /// Utility of follower `i` when the leader plays `leader_action`, the
    /// follower plays `own` and the remaining followers play `others`
    /// (indexed by follower id, the entry at `i` being ignored).
    fn follower_utility(
        &self,
        follower: usize,
        leader_action: f64,
        own: f64,
        others: &[f64],
    ) -> f64;

    /// Best response of follower `i`. The default implementation maximises
    /// [`follower_utility`](StackelbergGame::follower_utility) numerically on
    /// the follower's strategy interval; games with a closed-form best
    /// response should override it.
    fn follower_best_response(&self, follower: usize, leader_action: f64, others: &[f64]) -> f64 {
        let (lo, hi) = self.follower_strategy_bounds(follower);
        golden_section_max(
            |b| self.follower_utility(follower, leader_action, b, others),
            lo,
            hi,
            1e-9 * (hi - lo).max(1.0),
            200,
        )
        .map(|m| m.argmax)
        .unwrap_or(lo)
    }

    /// Utility of the leader given its action and the follower strategy profile.
    fn leader_utility(&self, leader_action: f64, followers: &[f64]) -> f64;

    /// Projects a joint follower profile onto the feasible set (e.g. enforcing
    /// an aggregate resource cap). The default is a no-op.
    fn project_followers(&self, _leader_action: f64, _profile: &mut [f64]) {}
}

/// Options controlling the numerical Stackelberg solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Convergence tolerance for the iterated-best-response follower stage.
    pub follower_tolerance: f64,
    /// Maximum iterations of the follower best-response loop.
    pub max_follower_iterations: usize,
    /// Tolerance of the leader's golden-section search.
    pub leader_tolerance: f64,
    /// Maximum iterations of the leader search.
    pub max_leader_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            follower_tolerance: 1e-9,
            max_follower_iterations: 500,
            leader_tolerance: 1e-7,
            max_leader_iterations: 300,
        }
    }
}

/// A solved Stackelberg game: the leader's optimal action, the follower
/// equilibrium it induces and the resulting utilities.
#[derive(Debug, Clone, PartialEq)]
pub struct StackelbergSolution {
    /// Leader's optimal action (e.g. the equilibrium unit price `p*`).
    pub leader_action: f64,
    /// Follower equilibrium strategy profile (e.g. bandwidth demands `b*`).
    pub follower_strategies: Vec<f64>,
    /// Leader utility at the solution.
    pub leader_utility: f64,
    /// Per-follower utilities at the solution.
    pub follower_utilities: Vec<f64>,
}

impl StackelbergSolution {
    /// Sum of the follower strategies (e.g. total bandwidth sold).
    pub fn total_follower_strategy(&self) -> f64 {
        self.follower_strategies.iter().sum()
    }

    /// Sum of the follower utilities.
    pub fn total_follower_utility(&self) -> f64 {
        self.follower_utilities.iter().sum()
    }

    /// Average follower utility, or `0` when there are no followers.
    pub fn average_follower_utility(&self) -> f64 {
        if self.follower_utilities.is_empty() {
            0.0
        } else {
            self.total_follower_utility() / self.follower_utilities.len() as f64
        }
    }
}

/// Computes the follower-stage Nash equilibrium under a fixed leader action by
/// iterated best response, then applies the game's feasibility projection.
///
/// For games where each follower's best response is independent of the others
/// (such as the paper's VMU subgame) this converges in a single sweep; for
/// genuinely coupled followers it iterates until the profile stops moving.
pub fn solve_follower_equilibrium<G: StackelbergGame>(
    game: &G,
    leader_action: f64,
    options: &SolveOptions,
) -> Vec<f64> {
    let n = game.num_followers();
    let mut profile: Vec<f64> = (0..n)
        .map(|i| {
            let (lo, hi) = game.follower_strategy_bounds(i);
            0.5 * (lo + hi)
        })
        .collect();
    for _ in 0..options.max_follower_iterations {
        let mut max_change = 0.0_f64;
        for i in 0..n {
            let response = game.follower_best_response(i, leader_action, &profile);
            max_change = max_change.max((response - profile[i]).abs());
            profile[i] = response;
        }
        if max_change <= options.follower_tolerance {
            break;
        }
    }
    game.project_followers(leader_action, &mut profile);
    profile
}

/// Solves the full two-stage game: for every candidate leader action the
/// follower equilibrium is computed, and the leader action maximising the
/// leader utility is selected by golden-section search over its interval.
///
/// # Errors
///
/// Returns an [`OptimizeError`] when the leader bounds are invalid or a
/// utility evaluates to a non-finite value.
pub fn solve_stackelberg<G: StackelbergGame>(
    game: &G,
    options: &SolveOptions,
) -> Result<StackelbergSolution, OptimizeError> {
    let (lo, hi) = game.leader_action_bounds();
    let leader_objective = |p: f64| {
        let profile = solve_follower_equilibrium(game, p, options);
        game.leader_utility(p, &profile)
    };
    let maximum = golden_section_max(
        leader_objective,
        lo,
        hi,
        options.leader_tolerance,
        options.max_leader_iterations,
    )?;
    let leader_action = maximum.argmax;
    let follower_strategies = solve_follower_equilibrium(game, leader_action, options);
    let follower_utilities = (0..game.num_followers())
        .map(|i| {
            game.follower_utility(
                i,
                leader_action,
                follower_strategies[i],
                &follower_strategies,
            )
        })
        .collect();
    Ok(StackelbergSolution {
        leader_action,
        leader_utility: game.leader_utility(leader_action, &follower_strategies),
        follower_strategies,
        follower_utilities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A textbook linear-demand monopoly: follower demand `b = a - p`, leader
    /// profit `(p - c) * b`. The Stackelberg optimum is `p* = (a + c) / 2`.
    struct LinearMonopoly {
        a: f64,
        c: f64,
        followers: usize,
    }

    impl StackelbergGame for LinearMonopoly {
        fn num_followers(&self) -> usize {
            self.followers
        }

        fn leader_action_bounds(&self) -> (f64, f64) {
            (self.c, self.a)
        }

        fn follower_strategy_bounds(&self, _follower: usize) -> (f64, f64) {
            (0.0, self.a)
        }

        fn follower_utility(
            &self,
            _follower: usize,
            leader_action: f64,
            own: f64,
            _others: &[f64],
        ) -> f64 {
            // Quadratic consumer surplus whose maximiser is a - p.
            (self.a - leader_action) * own - 0.5 * own * own
        }

        fn leader_utility(&self, leader_action: f64, followers: &[f64]) -> f64 {
            followers.iter().map(|b| (leader_action - self.c) * b).sum()
        }
    }

    #[test]
    fn linear_monopoly_equilibrium_matches_textbook() {
        let game = LinearMonopoly {
            a: 10.0,
            c: 2.0,
            followers: 3,
        };
        let sol = solve_stackelberg(&game, &SolveOptions::default()).unwrap();
        assert!(
            (sol.leader_action - 6.0).abs() < 1e-3,
            "p* = {}",
            sol.leader_action
        );
        for b in &sol.follower_strategies {
            assert!((b - 4.0).abs() < 1e-3);
        }
        assert!((sol.leader_utility - 3.0 * 4.0 * 4.0).abs() < 1e-2);
        assert_eq!(sol.follower_utilities.len(), 3);
        assert!((sol.total_follower_strategy() - 12.0).abs() < 1e-2);
        assert!(sol.average_follower_utility() > 0.0);
    }

    #[test]
    fn follower_equilibrium_uses_default_numeric_best_response() {
        let game = LinearMonopoly {
            a: 8.0,
            c: 1.0,
            followers: 2,
        };
        let profile = solve_follower_equilibrium(&game, 3.0, &SolveOptions::default());
        for b in profile {
            assert!((b - 5.0).abs() < 1e-4);
        }
    }

    struct CappedMonopoly {
        inner: LinearMonopoly,
        cap: f64,
    }

    impl StackelbergGame for CappedMonopoly {
        fn num_followers(&self) -> usize {
            self.inner.num_followers()
        }
        fn leader_action_bounds(&self) -> (f64, f64) {
            self.inner.leader_action_bounds()
        }
        fn follower_strategy_bounds(&self, f: usize) -> (f64, f64) {
            self.inner.follower_strategy_bounds(f)
        }
        fn follower_utility(&self, f: usize, p: f64, own: f64, others: &[f64]) -> f64 {
            self.inner.follower_utility(f, p, own, others)
        }
        fn leader_utility(&self, p: f64, followers: &[f64]) -> f64 {
            self.inner.leader_utility(p, followers)
        }
        fn project_followers(&self, _p: f64, profile: &mut [f64]) {
            let total: f64 = profile.iter().sum();
            if total > self.cap && total > 0.0 {
                let scale = self.cap / total;
                for b in profile {
                    *b *= scale;
                }
            }
        }
    }

    #[test]
    fn projection_enforces_aggregate_cap() {
        let game = CappedMonopoly {
            inner: LinearMonopoly {
                a: 10.0,
                c: 2.0,
                followers: 4,
            },
            cap: 6.0,
        };
        let sol = solve_stackelberg(&game, &SolveOptions::default()).unwrap();
        assert!(sol.total_follower_strategy() <= 6.0 + 1e-9);
    }

    #[test]
    fn solution_is_serialisable() {
        let sol = StackelbergSolution {
            leader_action: 1.0,
            follower_strategies: vec![2.0],
            leader_utility: 3.0,
            follower_utilities: vec![4.0],
        };
        let debug = format!("{sol:?}");
        assert!(debug.contains("leader_action"));
    }

    #[test]
    fn empty_follower_solution_statistics() {
        let sol = StackelbergSolution {
            leader_action: 1.0,
            follower_strategies: vec![],
            leader_utility: 0.0,
            follower_utilities: vec![],
        };
        assert_eq!(sol.average_follower_utility(), 0.0);
        assert_eq!(sol.total_follower_strategy(), 0.0);
    }
}
