//! # vtm-game — game-theory substrate
//!
//! Leader–follower (Stackelberg) game abstractions and the scalar concave
//! optimisation routines needed to solve and verify them, written for the
//! reproduction of *"Learning-based Incentive Mechanism for Task
//! Freshness-aware Vehicular Twin Migration"* (ICDCS 2023).
//!
//! The paper's §III formulates a two-stage game: the Metaverse Service
//! Provider (leader) posts a bandwidth price, Vehicular Metaverse Users
//! (followers) respond with bandwidth demands, and backward induction yields a
//! unique Stackelberg equilibrium. This crate provides:
//!
//! * [`optimize`] — golden-section search, bisection on a decreasing
//!   derivative, grid search, numerical derivatives and concavity checks,
//! * [`stackelberg`] — the [`StackelbergGame`](stackelberg::StackelbergGame)
//!   trait, follower-equilibrium iteration and the two-stage solver,
//! * [`equilibrium`] — numerical verification that a profile satisfies
//!   Definition 1 of the paper (no profitable unilateral deviation).
//!
//! # Example
//!
//! ```
//! use vtm_game::prelude::*;
//!
//! /// Leader sets a price in [1, 10]; a single follower demands `10 - p`.
//! struct Toy;
//! impl StackelbergGame for Toy {
//!     fn num_followers(&self) -> usize { 1 }
//!     fn leader_action_bounds(&self) -> (f64, f64) { (1.0, 10.0) }
//!     fn follower_strategy_bounds(&self, _: usize) -> (f64, f64) { (0.0, 10.0) }
//!     fn follower_utility(&self, _: usize, p: f64, b: f64, _: &[f64]) -> f64 {
//!         (10.0 - p) * b - 0.5 * b * b
//!     }
//!     fn leader_utility(&self, p: f64, followers: &[f64]) -> f64 {
//!         followers.iter().map(|b| (p - 1.0) * b).sum()
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let solution = solve_stackelberg(&Toy, &SolveOptions::default())?;
//! assert!((solution.leader_action - 5.5).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equilibrium;
pub mod optimize;
pub mod stackelberg;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::equilibrium::{verify_equilibrium, EquilibriumReport};
    pub use crate::optimize::{
        bisect_decreasing_root, golden_section_max, grid_search_max, is_concave_on,
        numerical_derivative, numerical_second_derivative, Maximum, OptimizeError,
    };
    pub use crate::stackelberg::{
        solve_follower_equilibrium, solve_stackelberg, SolveOptions, StackelbergGame,
        StackelbergSolution,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let opts = SolveOptions::default();
        assert!(opts.max_leader_iterations > 0);
    }
}
