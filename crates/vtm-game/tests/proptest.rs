//! Property-based tests of the optimisation and Stackelberg-solving invariants.

use proptest::prelude::*;

use vtm_game::optimize::{bisect_decreasing_root, golden_section_max, grid_search_max, is_concave_on};
use vtm_game::stackelberg::{solve_stackelberg, SolveOptions, StackelbergGame};

/// Linear-demand monopoly with textbook solution p* = (a + c) / 2.
struct Monopoly {
    a: f64,
    c: f64,
    n: usize,
}

impl StackelbergGame for Monopoly {
    fn num_followers(&self) -> usize {
        self.n
    }
    fn leader_action_bounds(&self) -> (f64, f64) {
        (self.c, self.a)
    }
    fn follower_strategy_bounds(&self, _f: usize) -> (f64, f64) {
        (0.0, self.a)
    }
    fn follower_utility(&self, _f: usize, p: f64, own: f64, _others: &[f64]) -> f64 {
        (self.a - p) * own - 0.5 * own * own
    }
    fn leader_utility(&self, p: f64, followers: &[f64]) -> f64 {
        followers.iter().map(|b| (p - self.c) * b).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Golden-section search finds the vertex of an arbitrary downward parabola.
    #[test]
    fn golden_section_finds_parabola_vertex(
        center in -50.0f64..50.0,
        height in -10.0f64..10.0,
        width in 1.0f64..100.0,
    ) {
        let lo = center - width;
        let hi = center + width;
        let m = golden_section_max(|x| height - (x - center).powi(2), lo, hi, 1e-10, 300).unwrap();
        prop_assert!((m.argmax - center).abs() < 1e-4);
        prop_assert!((m.value - height).abs() < 1e-7);
    }

    /// Bisection on a decreasing affine function recovers its root.
    #[test]
    fn bisection_recovers_affine_root(root in -20.0f64..20.0, slope in 0.1f64..10.0) {
        let f = |x: f64| slope * (root - x);
        let found = bisect_decreasing_root(f, -100.0, 100.0, 1e-10, 500).unwrap();
        prop_assert!((found - root).abs() < 1e-7);
    }

    /// The golden-section maximum is never worse than a coarse grid maximum of
    /// the same unimodal function.
    #[test]
    fn golden_section_dominates_grid_search(center in -5.0f64..5.0) {
        let f = |x: f64| -(x - center).powi(2);
        let gs = golden_section_max(f, -10.0, 10.0, 1e-10, 300).unwrap();
        let grid = grid_search_max(f, -10.0, 10.0, 50).unwrap();
        prop_assert!(gs.value + 1e-9 >= grid.value);
    }

    /// Downward parabolas are detected as concave, upward ones are not.
    #[test]
    fn concavity_detection_on_parabolas(a in 0.1f64..5.0, c in -3.0f64..3.0) {
        prop_assert!(is_concave_on(|x| -a * (x - c).powi(2), -10.0, 10.0, 30, 1e-6));
        prop_assert!(!is_concave_on(|x| a * (x - c).powi(2), -10.0, 10.0, 30, 1e-6));
    }

    /// The generic Stackelberg solver recovers the textbook monopoly solution
    /// for arbitrary demand intercepts and costs.
    #[test]
    fn stackelberg_solver_matches_textbook_monopoly(
        a in 5.0f64..50.0,
        margin in 1.0f64..4.0,
        n in 1usize..5,
    ) {
        let c = a / margin / 2.0; // keep c < a
        let game = Monopoly { a, c, n };
        let solution = solve_stackelberg(&game, &SolveOptions::default()).unwrap();
        let expected_price = (a + c) / 2.0;
        prop_assert!((solution.leader_action - expected_price).abs() < 1e-2,
            "price {} vs textbook {expected_price}", solution.leader_action);
        for b in &solution.follower_strategies {
            prop_assert!((b - (a - expected_price)).abs() < 1e-2);
        }
    }
}
