//! Randomized property tests of the optimisation and Stackelberg-solving
//! invariants.
//!
//! Originally written with `proptest`; the offline build has no access to
//! crates.io, so each property is checked over a fixed number of
//! pseudo-random cases drawn from a deterministically seeded generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vtm_game::optimize::{
    bisect_decreasing_root, golden_section_max, grid_search_max, is_concave_on,
};
use vtm_game::stackelberg::{solve_stackelberg, SolveOptions, StackelbergGame};

/// Runs `check` over `n` independent deterministic cases.
fn cases(n: usize, seed: u64, mut check: impl FnMut(&mut StdRng)) {
    for case in 0..n as u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        check(&mut rng);
    }
}

/// Linear-demand monopoly with textbook solution p* = (a + c) / 2.
struct Monopoly {
    a: f64,
    c: f64,
    n: usize,
}

impl StackelbergGame for Monopoly {
    fn num_followers(&self) -> usize {
        self.n
    }
    fn leader_action_bounds(&self) -> (f64, f64) {
        (self.c, self.a)
    }
    fn follower_strategy_bounds(&self, _f: usize) -> (f64, f64) {
        (0.0, self.a)
    }
    fn follower_utility(&self, _f: usize, p: f64, own: f64, _others: &[f64]) -> f64 {
        (self.a - p) * own - 0.5 * own * own
    }
    fn leader_utility(&self, p: f64, followers: &[f64]) -> f64 {
        followers.iter().map(|b| (p - self.c) * b).sum()
    }
}

/// Golden-section search finds the vertex of an arbitrary downward parabola.
#[test]
fn golden_section_finds_parabola_vertex() {
    cases(48, 0x11, |rng| {
        let center = rng.gen_range(-50.0..50.0);
        let height = rng.gen_range(-10.0..10.0);
        let width = rng.gen_range(1.0..100.0);
        let lo = center - width;
        let hi = center + width;
        let m = golden_section_max(|x| height - (x - center).powi(2), lo, hi, 1e-10, 300).unwrap();
        assert!((m.argmax - center).abs() < 1e-4);
        assert!((m.value - height).abs() < 1e-7);
    });
}

/// Bisection on a decreasing affine function recovers its root.
#[test]
fn bisection_recovers_affine_root() {
    cases(48, 0x12, |rng| {
        let root = rng.gen_range(-20.0..20.0);
        let slope = rng.gen_range(0.1..10.0);
        let f = |x: f64| slope * (root - x);
        let found = bisect_decreasing_root(f, -100.0, 100.0, 1e-10, 500).unwrap();
        assert!((found - root).abs() < 1e-7);
    });
}

/// The golden-section maximum is never worse than a coarse grid maximum of
/// the same unimodal function.
#[test]
fn golden_section_dominates_grid_search() {
    cases(48, 0x13, |rng| {
        let center = rng.gen_range(-5.0..5.0);
        let f = |x: f64| -(x - center).powi(2);
        let gs = golden_section_max(f, -10.0, 10.0, 1e-10, 300).unwrap();
        let grid = grid_search_max(f, -10.0, 10.0, 50).unwrap();
        assert!(gs.value + 1e-9 >= grid.value);
    });
}

/// Downward parabolas are detected as concave, upward ones are not.
#[test]
fn concavity_detection_on_parabolas() {
    cases(48, 0x14, |rng| {
        let a = rng.gen_range(0.1..5.0);
        let c = rng.gen_range(-3.0..3.0);
        assert!(is_concave_on(
            |x| -a * (x - c).powi(2),
            -10.0,
            10.0,
            30,
            1e-6
        ));
        assert!(!is_concave_on(
            |x| a * (x - c).powi(2),
            -10.0,
            10.0,
            30,
            1e-6
        ));
    });
}

/// The generic Stackelberg solver recovers the textbook monopoly solution
/// for arbitrary demand intercepts and costs.
#[test]
fn stackelberg_solver_matches_textbook_monopoly() {
    cases(48, 0x15, |rng| {
        let a = rng.gen_range(5.0..50.0);
        let margin = rng.gen_range(1.0..4.0);
        let n = rng.gen_range(1..5usize);
        let c = a / margin / 2.0; // keep c < a
        let game = Monopoly { a, c, n };
        let solution = solve_stackelberg(&game, &SolveOptions::default()).unwrap();
        let expected_price = (a + c) / 2.0;
        assert!(
            (solution.leader_action - expected_price).abs() < 1e-2,
            "price {} vs textbook {expected_price}",
            solution.leader_action
        );
        for b in &solution.follower_strategies {
            assert!((b - (a - expected_price)).abs() < 1e-2);
        }
    });
}
