//! Criterion benchmarks of the simulator substrate: the channel model, the
//! pre-copy migration pipeline, the event queue and a short end-to-end
//! highway run driven by the Stackelberg allocator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use vtm_core::allocator::{PricingRule, StackelbergAllocator};
use vtm_core::config::MarketConfig;
use vtm_sim::event::EventQueue;
use vtm_sim::metaverse::{MetaverseConfig, MetaverseSim};
use vtm_sim::migration::{simulate_precopy_migration, PreCopyConfig};
use vtm_sim::radio::LinkBudget;
use vtm_sim::twin::{TwinId, VehicularTwin};

fn bench_link_and_migration(c: &mut Criterion) {
    let link = LinkBudget::default();
    c.bench_function("radio/rate_bps", |b| {
        b.iter(|| link.rate_bps(black_box(10e6)))
    });

    let mut group = c.benchmark_group("precopy_migration");
    for &size in &[100.0f64, 200.0, 400.0] {
        let twin = VehicularTwin::with_size_and_alpha(TwinId(0), size, 5.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(size as u64),
            &twin,
            |b, twin| {
                b.iter(|| {
                    simulate_precopy_migration(
                        twin,
                        black_box(10e6),
                        &link,
                        &PreCopyConfig::default(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_and_drain_1000", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_at((i % 97) as f64, i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            count
        })
    });
}

fn bench_highway_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("metaverse");
    group.sample_size(10);
    group.bench_function("highway_300s_3vmus", |b| {
        b.iter(|| {
            let config = MetaverseConfig {
                duration_s: 300.0,
                ..MetaverseConfig::default()
            };
            let mut sim = MetaverseSim::highway_scenario(config, 3, 150.0, 5.0);
            let mut allocator = StackelbergAllocator::new(
                MarketConfig::default(),
                LinkBudget::default(),
                PricingRule::StackelbergPerMigration,
            )
            .with_min_bandwidth_mhz(2.0);
            sim.run(&mut allocator)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_link_and_migration,
    bench_event_queue,
    bench_highway_run
);
criterion_main!(benches);
