//! Criterion benchmarks of the DRL hot paths: a policy forward pass, a PPO
//! update over one episode of samples, and one full Algorithm-1 training
//! episode of the incentive mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vtm_bench::{rollout_bench_agent, update_bench_agent, update_bench_samples, FixedHorizonEnv};
use vtm_core::config::{DrlConfig, ExperimentConfig};
use vtm_core::env::RewardMode;
use vtm_core::mechanism::IncentiveMechanism;
use vtm_rl::buffer::RolloutBuffer;
use vtm_rl::env::{ActionSpace, Environment, Step};
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::vec_env::{CollectorConfig, ParallelCollector, VecEnv};

struct Bandit;

impl Environment for Bandit {
    fn observation_dim(&self) -> usize {
        12
    }
    fn action_space(&self) -> ActionSpace {
        ActionSpace::scalar(5.0, 50.0)
    }
    fn reset(&mut self) -> Vec<f64> {
        vec![0.1; 12]
    }
    fn step(&mut self, action: &[f64]) -> Step {
        Step {
            observation: vec![0.1; 12],
            reward: -(action[0] - 25.0).powi(2) / 100.0,
            done: true,
        }
    }
}

fn bench_policy_act(c: &mut Criterion) {
    let cfg = PpoConfig::new(12, 1).with_seed(1);
    let mut agent = PpoAgent::new(cfg, ActionSpace::scalar(5.0, 50.0));
    let obs = vec![0.1; 12];
    c.bench_function("ppo/act", |b| b.iter(|| agent.act(black_box(&obs))));
    c.bench_function("ppo/act_deterministic", |b| {
        b.iter(|| agent.act_deterministic(black_box(&obs)))
    });
}

fn bench_ppo_update(c: &mut Criterion) {
    let cfg = PpoConfig::new(12, 1).with_seed(2);
    let mut agent = PpoAgent::new(cfg, ActionSpace::scalar(5.0, 50.0));
    let mut env = Bandit;
    let mut buffer = RolloutBuffer::new();
    agent.collect_episodes(&mut env, 100, 1, &mut buffer);
    let samples = buffer.process(0.95, 0.95, 0.0, true);
    c.bench_function("ppo/update_100_samples", |b| {
        b.iter(|| agent.update(black_box(&samples)))
    });
}

/// Fused (allocation-free, batched) vs reference (allocating, per-sample)
/// PPO update at the paper's training shapes: obs_dim 7, 64x64 MLP,
/// mini-batch 20, M = 10 epochs over 200 samples. The acceptance target for
/// the fused path is a >= 1.5x speedup (recorded by `bench_json` in
/// `results/BENCH_ppo.json`).
fn bench_ppo_update_paper_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppo_update");
    group.bench_function("fused_paper_shape", |b| {
        let mut agent = update_bench_agent(3);
        let samples = update_bench_samples(&agent, 200, 42);
        b.iter(|| agent.update(black_box(&samples)))
    });
    group.bench_function("reference_paper_shape", |b| {
        let mut agent = update_bench_agent(3);
        let samples = update_bench_samples(&agent, 200, 42);
        b.iter(|| agent.update_reference(black_box(&samples)))
    });
    group.finish();
}

/// Serial per-observation collection vs the vectorized parallel collector at
/// the same sample count (64 episodes x 25 steps): the acceptance benchmark
/// of the VecEnv rollout engine.
fn bench_rollout_collection(c: &mut Criterion) {
    const EPISODES: usize = 64;
    const HORIZON: usize = 25;
    let mut group = c.benchmark_group("rollout");

    // Reference path: one env, two row-vector forward passes per step.
    group.bench_function("serial_64ep_x25", |b| {
        let mut agent = rollout_bench_agent();
        let mut env = FixedHorizonEnv::new(HORIZON);
        b.iter(|| {
            let mut buffer = RolloutBuffer::new();
            agent.collect_episodes(&mut env, EPISODES, HORIZON, &mut buffer);
            buffer.len()
        })
    });

    // Vectorized path, batched forwards only (single thread).
    group.bench_function("vectorized_1thread", |b| {
        let agent = rollout_bench_agent();
        let mut venv = VecEnv::from_fn(EPISODES, |_| FixedHorizonEnv::new(HORIZON));
        let collector = ParallelCollector::new(
            CollectorConfig::new(1, HORIZON)
                .with_seed(7)
                .with_threads(1),
        );
        b.iter(|| {
            collector
                .collect_serial(&agent, &mut venv)
                .total_transitions()
        })
    });

    // Vectorized path, batched forwards + one worker per core.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    group.bench_function(format!("vectorized_{cores}threads"), |b| {
        let agent = rollout_bench_agent();
        let mut venv = VecEnv::from_fn(EPISODES, |_| FixedHorizonEnv::new(HORIZON));
        let collector = ParallelCollector::new(
            CollectorConfig::new(1, HORIZON)
                .with_seed(7)
                .with_threads(0),
        );
        b.iter(|| collector.collect(&agent, &mut venv).total_transitions())
    });

    group.finish();
}

fn bench_training_episode(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism");
    group.sample_size(10);
    group.bench_function("algorithm1_one_episode", |b| {
        let mut config = ExperimentConfig::paper_two_vmus();
        config.drl = DrlConfig {
            episodes: 1,
            rounds_per_episode: 100,
            ..DrlConfig::default()
        };
        let mut mechanism = IncentiveMechanism::with_reward_mode(config, RewardMode::Improvement);
        b.iter(|| mechanism.train_episodes(1));
    });
    group.bench_function("algorithm1_8_episodes_serial", |b| {
        let mut config = ExperimentConfig::paper_two_vmus();
        config.drl = DrlConfig {
            episodes: 8,
            rounds_per_episode: 100,
            ..DrlConfig::default()
        };
        let mut mechanism = IncentiveMechanism::with_reward_mode(config, RewardMode::Improvement);
        b.iter(|| mechanism.train_episodes(8));
    });
    group.bench_function("algorithm1_8_episodes_parallel", |b| {
        let mut config = ExperimentConfig::paper_two_vmus();
        config.drl = DrlConfig {
            episodes: 8,
            rounds_per_episode: 100,
            ..DrlConfig::default()
        };
        let mut mechanism = IncentiveMechanism::with_reward_mode(config, RewardMode::Improvement);
        b.iter(|| mechanism.train_episodes_parallel(8, 8, 0));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_act,
    bench_ppo_update,
    bench_ppo_update_paper_shape,
    bench_rollout_collection,
    bench_training_episode
);
criterion_main!(benches);
