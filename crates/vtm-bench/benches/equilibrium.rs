//! Criterion benchmarks of the game-theoretic hot paths: evaluating an
//! outcome at a price, the closed-form equilibrium (with its active-set
//! refinement) and the numerical golden-section equilibrium.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use vtm_core::config::ExperimentConfig;
use vtm_core::stackelberg::AotmStackelbergGame;

fn bench_outcome_at_price(c: &mut Criterion) {
    let game = AotmStackelbergGame::from_config(&ExperimentConfig::paper_two_vmus());
    c.bench_function("outcome_at_price/2_vmus", |b| {
        b.iter(|| game.outcome_at_price(black_box(25.0)))
    });
}

fn bench_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_form_equilibrium");
    for n in [2usize, 6, 20, 100] {
        let game = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, game| {
            b.iter(|| game.closed_form_equilibrium())
        });
    }
    group.finish();
}

fn bench_numerical(c: &mut Criterion) {
    let mut group = c.benchmark_group("numerical_equilibrium");
    group.sample_size(20);
    for n in [2usize, 6] {
        let game = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, game| {
            b.iter(|| game.numerical_equilibrium())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_outcome_at_price,
    bench_closed_form,
    bench_numerical
);
criterion_main!(benches);
