//! Acceptance checks of the concurrent pricing gateway.
//!
//! The throughput assertion is `#[ignore]`d because it is a wall-clock
//! comparison whose ≥ 2x target is defined for multi-core machines (on one
//! core the ingress workers, the scheduler and the executors all time-slice
//! the same CPU); CI runs the `--ignored` suite automatically when the
//! runner has ≥ 4 cores, and it can always be run explicitly with
//! `cargo test -p vtm-bench --release -- --ignored --nocapture`.
//! The consistency smoke always runs.

use vtm_bench::gateway_bench::{run_gateway_bench, GatewayBenchOptions};
use vtm_bench::timing::available_cores;

/// The load generator must run end-to-end with balanced telemetry books on
/// any machine (tiny duration: this is a correctness smoke, not a timing
/// assertion).
#[test]
fn gateway_bench_smoke_has_balanced_books() {
    let result = run_gateway_bench(&GatewayBenchOptions {
        duration_s: 0.05,
        sessions: 8,
        stream_rounds: 4,
        ingress: 2,
        executors: 2,
        open_loop_factors: vec![2.0],
        ..GatewayBenchOptions::default()
    })
    .expect("gateway bench must run");
    assert!(result.baseline_qps > 0.0);
    assert!(result.scaled_qps > 0.0);
    for run in &result.runs {
        let t = &run.telemetry;
        assert_eq!(t.submitted, t.completed + t.failed);
        assert_eq!(t.failed, 0);
        assert_eq!(t.queue_depth, 0, "shutdown must drain every request");
    }
}

/// Acceptance criterion: with ≥ 4 cores, a multi-ingress/multi-executor
/// gateway serves at least 2x the closed-loop quote throughput of the
/// 1-ingress/1-executor baseline over the same request stream (batching
/// amortises the forward pass; the executor pool overlaps batches).
#[test]
#[ignore = "wall-clock assertion; needs a multi-core machine, run explicitly in --release"]
fn concurrent_gateway_is_at_least_2x_single_lane_throughput() {
    let cores = available_cores();
    assert!(cores >= 4, "speedup target is defined for 4+-core machines");
    let result = run_gateway_bench(&GatewayBenchOptions {
        duration_s: 2.0,
        sessions: 256,
        stream_rounds: 16,
        ingress: 0,   // one per core
        executors: 0, // one per core
        max_batch: 64,
        max_delay_us: 500,
        open_loop_factors: Vec::new(), // closed-loop comparison only
        ..GatewayBenchOptions::default()
    })
    .expect("gateway bench must run");
    println!(
        "baseline {:.0} quotes/s vs scaled {:.0} quotes/s ({:.2}x on {cores} cores)",
        result.baseline_qps, result.scaled_qps, result.speedup
    );
    assert!(
        result.speedup >= 2.0,
        "gateway speedup {:.2}x below the 2x acceptance threshold",
        result.speedup
    );
}
