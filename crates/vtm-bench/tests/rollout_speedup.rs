//! Acceptance checks of the vectorized rollout engine.
//!
//! The wall-clock comparison is `#[ignore]`d because timing assertions are
//! inherently load-sensitive; run it explicitly with
//! `cargo test -p vtm-bench --release -- --ignored --nocapture`.
//! The determinism check always runs.

use std::time::Instant;

use vtm_bench::timing::available_cores;
use vtm_bench::{rollout_bench_agent as agent, FixedHorizonEnv};
use vtm_rl::buffer::RolloutBuffer;
use vtm_rl::vec_env::{CollectorConfig, ParallelCollector, VecEnv};

const HORIZON: usize = 25;
const EPISODES: usize = 64;

/// Same seed => the parallel collector reproduces the serial collector's
/// trajectories exactly, at the drl.rs benchmark scale.
#[test]
fn parallel_collection_is_deterministic_at_bench_scale() {
    let agent = agent();
    let config = CollectorConfig::new(1, HORIZON).with_seed(7);
    let mut venv_serial = VecEnv::from_fn(EPISODES, |_| FixedHorizonEnv::new(HORIZON));
    let mut venv_parallel = VecEnv::from_fn(EPISODES, |_| FixedHorizonEnv::new(HORIZON));
    let serial = ParallelCollector::new(config.with_threads(1)).collect(&agent, &mut venv_serial);
    let parallel =
        ParallelCollector::new(config.with_threads(0)).collect(&agent, &mut venv_parallel);
    assert_eq!(serial, parallel);
    assert_eq!(serial.total_transitions(), EPISODES * HORIZON);
}

/// The parallel vectorized collector must beat the serial per-observation
/// path by at least 2x at equal sample counts on a 4+-core machine.
#[test]
#[ignore = "wall-clock assertion; run explicitly in --release on an idle machine"]
fn parallel_collection_is_at_least_2x_faster_than_serial() {
    let cores = available_cores();
    assert!(cores >= 4, "speedup target is defined for 4+-core machines");

    // Warm up both paths once, then time several repetitions of each.
    let reps = 5;

    let mut serial_agent = agent();
    let mut env = FixedHorizonEnv::new(HORIZON);
    let mut buffer = RolloutBuffer::new();
    serial_agent.collect_episodes(&mut env, EPISODES, HORIZON, &mut buffer);
    let start = Instant::now();
    for _ in 0..reps {
        let mut buffer = RolloutBuffer::new();
        serial_agent.collect_episodes(&mut env, EPISODES, HORIZON, &mut buffer);
        assert_eq!(buffer.len(), EPISODES * HORIZON);
    }
    let serial = start.elapsed();

    let parallel_agent = agent();
    let mut venv = VecEnv::from_fn(EPISODES, |_| FixedHorizonEnv::new(HORIZON));
    let collector = ParallelCollector::new(CollectorConfig::new(1, HORIZON).with_seed(7));
    collector.collect(&parallel_agent, &mut venv);
    let start = Instant::now();
    for _ in 0..reps {
        let rollouts = collector.collect(&parallel_agent, &mut venv);
        assert_eq!(rollouts.total_transitions(), EPISODES * HORIZON);
    }
    let parallel = start.elapsed();

    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    println!(
        "serial {:?}, parallel {:?} on {cores} cores => speedup {speedup:.2}x",
        serial / reps as u32,
        parallel / reps as u32
    );
    assert!(
        speedup >= 2.0,
        "parallel collector only {speedup:.2}x faster than serial"
    );
}
