//! Trace-overhead acceptance: end-to-end stage tracing at the production
//! 1-in-64 sampling rate must cost less than 3% of closed-loop gateway
//! throughput versus tracing disabled.
//!
//! Ignored by default (it is a timed benchmark); CI's bench job runs it on
//! 4+ core runners with:
//!
//! ```text
//! cargo test -p vtm-bench --release -- --ignored --nocapture
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use vtm_gateway::{Gateway, GatewayConfig, GatewayError, TracerConfig};
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};

const HISTORY: usize = 4;
const FEATURES: usize = 3;
const SESSIONS: usize = 64;
const INGRESS: usize = 4;

fn policy() -> PolicySnapshot {
    PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(11),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot()
}

fn fresh_service(snap: &PolicySnapshot) -> Arc<PricingService> {
    Arc::new(PricingService::from_snapshot(snap, ServiceConfig::new(HISTORY, FEATURES)).unwrap())
}

/// Closed loop: `INGRESS` threads each drive their own session slice,
/// submit-and-wait until the deadline. Returns completed quotes per second.
fn closed_loop_qps(
    service: &Arc<PricingService>,
    config: GatewayConfig,
    duration: Duration,
) -> f64 {
    let gateway = Arc::new(Gateway::start(Arc::clone(service), config));
    let start = Instant::now();
    let deadline = start + duration;
    let completed: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..INGRESS)
            .map(|t| {
                let gateway = Arc::clone(&gateway);
                scope.spawn(move || {
                    let mut done = 0u64;
                    'run: for round in 0u64.. {
                        for s in (t..SESSIONS).step_by(INGRESS) {
                            if Instant::now() >= deadline {
                                break 'run;
                            }
                            let features = (0..FEATURES)
                                .map(|f| ((round as usize * 31 + s * 7 + f) % 97) as f64 / 97.0)
                                .collect();
                            match gateway.quote(QuoteRequest::new(s as u64, features)) {
                                Ok(_) => done += 1,
                                Err(GatewayError::Overloaded { .. }) => {
                                    std::thread::yield_now();
                                }
                                Err(err) => panic!("gateway failed: {err}"),
                            }
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let stats = Arc::into_inner(gateway).unwrap().shutdown();
    assert_eq!(stats.failed, 0);
    completed as f64 / elapsed
}

/// Paired, interleaved timing: untraced and traced runs alternate so CPU
/// frequency drift hits both arms equally; the medians are compared.
#[test]
#[ignore = "timed acceptance benchmark; run with --ignored on quiet multi-core machines"]
fn tracing_overhead_stays_under_three_percent() {
    let snap = policy();
    let duration = Duration::from_millis(600);
    let base_config = GatewayConfig::default()
        .with_executors(2)
        .with_max_batch(16)
        .with_max_delay(Duration::from_micros(200))
        .with_queue_capacity(4096);
    let traced_config = base_config
        .clone()
        .with_tracing(TracerConfig::default().with_sample_every(64));

    // Warm-up pass (page cache, thread pools, branch predictors).
    closed_loop_qps(&fresh_service(&snap), base_config.clone(), duration);

    const REPEATS: usize = 5;
    let mut untraced = Vec::with_capacity(REPEATS);
    let mut traced = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        untraced.push(closed_loop_qps(
            &fresh_service(&snap),
            base_config.clone(),
            duration,
        ));
        traced.push(closed_loop_qps(
            &fresh_service(&snap),
            traced_config.clone(),
            duration,
        ));
    }

    untraced.sort_by(|a, b| a.partial_cmp(b).unwrap());
    traced.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let untraced_qps = untraced[REPEATS / 2];
    let traced_qps = traced[REPEATS / 2];
    let overhead = 1.0 - traced_qps / untraced_qps;
    println!(
        "closed-loop gateway: untraced {untraced_qps:.0} quotes/s, traced(1/64) \
         {traced_qps:.0} quotes/s, overhead {:.1}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.03,
        "tracing overhead {:.1}% exceeds the 3% budget \
         (untraced {untraced_qps:.0} qps, traced {traced_qps:.0} qps)",
        overhead * 100.0
    );
}
