//! Pins the fused, allocation-free PPO update path bit-identical to the
//! pre-fusion reference implementation on a fixed-seed training run at the
//! paper's shapes (obs_dim 7, 64x64 MLP, mini-batch 20, M = 10 epochs).
//!
//! Every kernel the fused path uses (`affine_into`, `matmul_at_b_into`,
//! `matmul_a_bt_into`, the batched Gaussian row ops, the shared Adam slice
//! kernel) accumulates in the same floating-point order as the allocating
//! reference, so the comparison below is exact equality, not a tolerance.

use vtm_bench::{update_bench_agent, update_bench_samples};

#[test]
fn fused_update_matches_reference_bitwise_over_training_run() {
    let mut fused = update_bench_agent(99);
    let mut reference = fused.clone();
    let probe: Vec<Vec<f64>> = (0..5)
        .map(|i| {
            (0..7)
                .map(|j| (i as f64 - 2.0) * 0.3 + j as f64 * 0.1)
                .collect()
        })
        .collect();

    // A multi-update training run: divergence anywhere would compound
    // through the Adam moments and surface in later rounds.
    for round in 0..5 {
        let samples = update_bench_samples(&fused, 200, 1000 + round);
        let sf = fused.update(&samples);
        let sr = reference.update_reference(&samples);
        assert_eq!(sf, sr, "update stats diverged at round {round}");
        assert_eq!(
            sf.gradient_steps,
            10 * 10,
            "M = 10 epochs x 200/20 minibatches"
        );
        assert_eq!(
            fused.log_std(),
            reference.log_std(),
            "log_std diverged at round {round}"
        );
        assert_eq!(
            fused.actor(),
            reference.actor(),
            "actor parameters diverged at round {round}"
        );
        assert_eq!(
            fused.critic(),
            reference.critic(),
            "critic parameters diverged at round {round}"
        );
        for obs in &probe {
            assert_eq!(
                fused.act_deterministic(obs),
                reference.act_deterministic(obs),
                "policy output diverged at round {round}"
            );
            assert_eq!(
                fused.value(obs),
                reference.value(obs),
                "value output diverged at round {round}"
            );
        }
    }
    // Full-state comparison (networks, optimizers, log-std, RNG counter).
    assert_eq!(fused, reference);
}

/// The fused update must beat the reference path by at least 1.5x at the
/// paper's shapes (the acceptance target recorded by `bench_json` in
/// `results/BENCH_ppo.json`). `#[ignore]`d because timing assertions are
/// load-sensitive; run explicitly with
/// `cargo test -p vtm-bench --release -- --ignored --nocapture`.
#[test]
#[ignore = "wall-clock assertion; run explicitly in --release on an idle machine"]
fn fused_update_is_at_least_1_5x_faster_than_reference() {
    use std::time::Instant;
    let mut fused = update_bench_agent(3);
    let samples = update_bench_samples(&fused, 200, 42);
    let mut reference = fused.clone();
    for _ in 0..2 {
        fused.update(&samples);
        reference.update_reference(&samples);
    }
    // Interleaved pairs so CPU frequency drift hits both paths equally.
    let (mut fused_s, mut reference_s) = (0.0f64, 0.0f64);
    for _ in 0..10 {
        let t = Instant::now();
        fused.update(&samples);
        fused_s += t.elapsed().as_secs_f64();
        let t = Instant::now();
        reference.update_reference(&samples);
        reference_s += t.elapsed().as_secs_f64();
    }
    let speedup = reference_s / fused_s;
    println!(
        "fused {:.2} ms, reference {:.2} ms, speedup {speedup:.2}x",
        fused_s * 1e2,
        reference_s * 1e2
    );
    assert!(
        speedup >= 1.5,
        "fused update speedup {speedup:.2}x below the 1.5x acceptance target"
    );
}

#[test]
fn fused_update_handles_ragged_final_minibatch() {
    // 33 samples with |I| = 20 leaves a final minibatch of 13: the gather
    // scratch must resize across batch sizes without corrupting results.
    let mut fused = update_bench_agent(7);
    let mut reference = fused.clone();
    let samples = update_bench_samples(&fused, 33, 5);
    let sf = fused.update(&samples);
    let sr = reference.update_reference(&samples);
    assert_eq!(sf, sr);
    assert_eq!(fused, reference);
}
