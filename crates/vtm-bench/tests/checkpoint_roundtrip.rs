//! Acceptance checks of the policy lifecycle's checkpoint guarantees
//! (fixed-seed FNV digests, same style as `scenario_determinism.rs`):
//!
//! 1. save → load → evaluate is bit-identical to the in-memory agent;
//! 2. train(k) + checkpoint + resume(n − k) matches train(n) exactly.

use std::path::PathBuf;

use vtm_core::config::{DrlConfig, ExperimentConfig};
use vtm_core::mechanism::{IncentiveMechanism, TrainingHistory};
use vtm_rl::snapshot::PolicySnapshot;

fn fast_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        drl: DrlConfig {
            episodes: 12,
            rounds_per_episode: 20,
            learning_rate: 3e-4,
            seed,
            ..DrlConfig::default()
        },
        ..ExperimentConfig::paper_two_vmus()
    }
}

fn temp_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "vtm_checkpoint_roundtrip_{tag}_{}.vtm",
        std::process::id()
    ))
}

/// FNV-1a over a stream of 64-bit words (shared by both digest helpers so
/// the hashing scheme exists exactly once).
fn fnv_digest(words: impl IntoIterator<Item = u64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    words
        .into_iter()
        .fold(OFFSET, |h, w| (h ^ w).wrapping_mul(PRIME))
}

/// Digest of the bit patterns of every field of every episode log.
fn history_digest(history: &TrainingHistory) -> u64 {
    fnv_digest(history.episodes.iter().flat_map(|log| {
        [
            log.episode_return.to_bits(),
            log.mean_msp_utility.to_bits(),
            log.final_msp_utility.to_bits(),
            log.best_msp_utility.to_bits(),
            log.mean_price.to_bits(),
        ]
    }))
}

/// Digest of the policy's deterministic actions and values on a fixed
/// observation grid — a pure function of the policy parameters.
fn policy_digest(mechanism: &IncentiveMechanism) -> u64 {
    let agent = mechanism.agent();
    let obs_dim = agent.config().obs_dim;
    fnv_digest((0..8u64).flat_map(|probe| {
        let obs: Vec<f64> = (0..obs_dim)
            .map(|d| ((probe * 17 + d as u64 * 5) % 11) as f64 / 11.0)
            .collect();
        let mut words: Vec<u64> = agent
            .act_deterministic(&obs)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        words.push(agent.value(&obs).to_bits());
        words
    }))
}

/// Satellite 3a: after a save → load round trip through the versioned codec,
/// the restored policy is bit-identical to the in-memory agent — same
/// deterministic actions, same values, same evaluation outcome.
#[test]
fn save_load_evaluate_is_bit_identical_to_the_in_memory_agent() {
    let mut mechanism = IncentiveMechanism::new(fast_config(42));
    mechanism.train_episodes_parallel(8, 4, 2);

    let path = temp_checkpoint("save_load");
    mechanism.snapshot().save_to(&path).unwrap();
    let loaded = PolicySnapshot::load_from(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    let mut restored = IncentiveMechanism::new(fast_config(42));
    restored.restore_policy(&loaded).unwrap();

    assert_eq!(mechanism.agent(), restored.agent());
    assert_eq!(policy_digest(&mechanism), policy_digest(&restored));

    let eval_a = mechanism.evaluate(15);
    let eval_b = restored.evaluate(15);
    assert_eq!(eval_a.mean_price.to_bits(), eval_b.mean_price.to_bits());
    assert_eq!(
        eval_a.mean_msp_utility.to_bits(),
        eval_b.mean_msp_utility.to_bits()
    );
    assert_eq!(
        eval_a.mean_total_bandwidth_mhz.to_bits(),
        eval_b.mean_total_bandwidth_mhz.to_bits()
    );
    assert_eq!(
        eval_a.equilibrium_ratio.to_bits(),
        eval_b.equilibrium_ratio.to_bits()
    );
}

/// Satellite 3b: train(k) + checkpoint + resume(n − k) must match train(n)
/// exactly — history digests and final policies bit for bit.
#[test]
fn resumed_training_matches_uninterrupted_training_exactly() {
    let (n, k, envs, threads) = (12, 4, 2, 2);

    let mut whole = IncentiveMechanism::new(fast_config(7));
    let history_whole = whole.train_episodes_parallel(n, envs, threads);

    let mut part = IncentiveMechanism::new(fast_config(7));
    let history_first = part.train_episodes_parallel(k, envs, threads);
    let path = temp_checkpoint("resume");
    part.snapshot().save_to(&path).unwrap();
    let checkpoint = PolicySnapshot::load_from(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    let mut resumed = IncentiveMechanism::new(fast_config(7));
    resumed.restore_policy(&checkpoint).unwrap();
    let history_second = resumed.train_episodes_parallel(n - k, envs, threads);

    // The concatenated histories digest identically to the single run.
    let mut combined = TrainingHistory::default();
    combined.episodes.extend(history_first.episodes.clone());
    combined.episodes.extend(history_second.episodes.clone());
    assert_eq!(combined.episodes.len(), history_whole.episodes.len());
    assert_eq!(
        history_digest(&combined),
        history_digest(&history_whole),
        "resumed history diverged from the uninterrupted run"
    );

    // And the final agents are indistinguishable — state and behaviour.
    assert_eq!(whole.agent(), resumed.agent());
    assert_eq!(policy_digest(&whole), policy_digest(&resumed));
}

/// The digest helpers themselves are fixed-seed stable within a process
/// (guards against accidental nondeterminism in the probe itself).
#[test]
fn digests_are_reproducible() {
    let mut a = IncentiveMechanism::new(fast_config(3));
    let mut b = IncentiveMechanism::new(fast_config(3));
    let ha = a.train_episodes_parallel(4, 2, 1);
    let hb = b.train_episodes_parallel(4, 2, 1);
    assert_eq!(history_digest(&ha), history_digest(&hb));
    assert_eq!(policy_digest(&a), policy_digest(&b));
}
