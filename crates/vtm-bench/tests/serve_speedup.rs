//! Acceptance checks of the batched serving layer.
//!
//! The throughput assertion is `#[ignore]`d because it is a wall-clock
//! comparison whose ≥ 2x target is defined for multi-core machines (on one
//! core the batched and per-request paths execute the same flops and only
//! the matmul blocking differs); run it explicitly with
//! `cargo test -p vtm-bench --release -- --ignored --nocapture`.
//! The correctness check (batched ≡ per-request quotes) always runs.

use vtm_bench::serve_bench::{run_serve_bench, ServeBenchOptions};
use vtm_bench::timing::available_cores;

/// Batched and per-request serving must quote identically — `run_serve_bench`
/// verifies this internally before timing and errors out on divergence.
#[test]
fn batched_and_per_request_quotes_agree() {
    let result = run_serve_bench(&ServeBenchOptions {
        sessions: 16,
        rounds: 4,
        repeats: 1,
        ..ServeBenchOptions::default()
    })
    .expect("serve bench must run (it asserts quote equality internally)");
    assert!(result.speedup > 0.0);
    assert!(result.batched_qps.is_finite());
}

/// Acceptance criterion: batched inference serves at least 2x the
/// per-request quote throughput on a multi-core machine (the batched path
/// fans one matrix forward pass out across cores; the per-request baseline
/// is one row-vector pass per call).
#[test]
#[ignore = "wall-clock assertion; needs a multi-core machine, run explicitly in --release"]
fn batched_inference_is_at_least_2x_per_request_throughput() {
    let cores = available_cores();
    assert!(cores >= 4, "speedup target is defined for 4+-core machines");
    let result = run_serve_bench(&ServeBenchOptions {
        sessions: 256,
        rounds: 20,
        repeats: 5,
        ..ServeBenchOptions::default()
    })
    .expect("serve bench must run");
    println!(
        "batched {:.0} quotes/s vs per-request {:.0} quotes/s ({:.2}x on {cores} cores)",
        result.batched_qps, result.per_request_qps, result.speedup
    );
    assert!(
        result.speedup >= 2.0,
        "batched serving speedup {:.2}x below the 2x acceptance threshold",
        result.speedup
    );
}
