//! Acceptance checks of the sharded gateway fabric.
//!
//! The throughput assertion is `#[ignore]`d because it is a wall-clock
//! comparison whose ≥ 1.7x target is defined for multi-core machines (on
//! one core every shard's scheduler and executors time-slice the same
//! CPU); CI runs the `--ignored` suite automatically when the runner has
//! ≥ 4 cores, and it can always be run explicitly with
//! `cargo test -p vtm-bench --release -- --ignored --nocapture`.
//! The consistency smoke always runs.

use vtm_bench::fabric_bench::{run_fabric_bench, FabricBenchOptions};
use vtm_bench::timing::available_cores;

/// The fabric load generator must run end-to-end with balanced telemetry
/// books on any machine (tiny duration: this is a correctness smoke, not
/// a timing assertion).
#[test]
fn fabric_bench_smoke_has_balanced_books() {
    let result = run_fabric_bench(&FabricBenchOptions {
        duration_s: 0.05,
        sessions: 16,
        stream_rounds: 4,
        shards: 2,
        ingress: 2,
        open_loop_factors: vec![2.0],
        ..FabricBenchOptions::default()
    })
    .expect("fabric bench must run");
    assert!(result.baseline_qps > 0.0);
    assert!(result.scaled_qps > 0.0);
    for run in &result.runs {
        for gateway in &run.fabric.gateways {
            let t = &gateway.telemetry;
            assert_eq!(t.submitted, t.completed + t.failed);
            assert_eq!(t.failed, 0);
            assert_eq!(t.queue_depth, 0, "shutdown must drain every shard");
        }
        // Closed-loop clients wait, so every completion is recorded against
        // exactly one arm.
        if run.mode == "closed" {
            let arm_quotes: u64 = run.fabric.arms.iter().map(|a| a.quotes).sum();
            let completed: u64 = run
                .fabric
                .gateways
                .iter()
                .map(|g| g.telemetry.completed)
                .sum();
            assert_eq!(arm_quotes, completed);
        }
    }
}

/// Acceptance criterion: with ≥ 4 cores, a 2-shard fabric serves at least
/// 1.7x the closed-loop quote throughput of a 1-shard fabric over the
/// same request stream (shards are fully independent pipelines — separate
/// schedulers, executors and session stores — so capacity scales with
/// shard count minus routing overhead).
#[test]
#[ignore = "wall-clock assertion; needs a multi-core machine, run explicitly in --release"]
fn two_shard_fabric_is_at_least_1_7x_single_shard_throughput() {
    let cores = available_cores();
    assert!(cores >= 4, "speedup target is defined for 4+-core machines");
    let result = run_fabric_bench(&FabricBenchOptions {
        duration_s: 2.0,
        sessions: 256,
        stream_rounds: 16,
        shards: 2,
        ingress: 0, // one per core
        executors: 1,
        max_batch: 64,
        max_delay_us: 500,
        open_loop_factors: Vec::new(), // closed-loop comparison only
        ..FabricBenchOptions::default()
    })
    .expect("fabric bench must run");
    println!(
        "1 shard {:.0} quotes/s vs 2 shards {:.0} quotes/s ({:.2}x on {cores} cores)",
        result.baseline_qps, result.scaled_qps, result.speedup
    );
    assert!(
        result.speedup >= 1.7,
        "fabric speedup {:.2}x below the 1.7x acceptance threshold",
        result.speedup
    );
}
