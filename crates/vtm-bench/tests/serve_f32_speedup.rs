//! Acceptance check of the quantized f32 serving fast path.
//!
//! The throughput assertion is `#[ignore]`d because it is a wall-clock
//! comparison whose ≥ 1.5x target is defined for multi-core machines (the
//! CI test job runs the `--ignored` suite automatically on 4+-core
//! runners); run it explicitly with
//! `cargo test -p vtm-bench --release -- --ignored --nocapture`.
//! The correctness side (argmax agreement, error bound) always runs — both
//! here as a smoke and exhaustively in `precision_equivalence.rs`.

use vtm_bench::serve_bench::{run_serve_bench, BenchPrecision, ServeBenchOptions};
use vtm_bench::timing::available_cores;

/// `run_serve_bench` asserts f32/f64 greedy argmax agreement internally
/// before timing; this smoke keeps that check in the always-run suite.
#[test]
fn f32_and_f64_quotes_agree_in_the_bench_harness() {
    let result = run_serve_bench(&ServeBenchOptions {
        sessions: 16,
        rounds: 4,
        repeats: 1,
        precision: BenchPrecision::WithF32,
        ..ServeBenchOptions::default()
    })
    .expect("serve bench must run (it asserts f32/f64 argmax agreement internally)");
    assert_eq!(result.f32_argmax_agree, Some(true));
    assert!(result.f32_max_price_err.unwrap() < 1e-2);
    assert!(result.f32_batched_qps.unwrap() > 0.0);
}

/// Acceptance criterion: the quantized f32 batched path serves at least
/// 1.5x the f64 batched throughput. f32 halves the memory traffic of the
/// dominant 64×64 layers and doubles the useful SIMD lane width, so the
/// fused kernels clear this comfortably once the batch amortizes
/// per-round overhead.
#[test]
#[ignore = "wall-clock assertion; needs a multi-core machine, run explicitly in --release"]
fn f32_batched_serving_is_at_least_1_5x_f64_batched_throughput() {
    let cores = available_cores();
    assert!(cores >= 4, "speedup target is defined for 4+-core machines");
    let result = run_serve_bench(&ServeBenchOptions {
        sessions: 256,
        rounds: 20,
        repeats: 5,
        precision: BenchPrecision::WithF32,
        ..ServeBenchOptions::default()
    })
    .expect("serve bench must run");
    let f32_qps = result.f32_batched_qps.unwrap();
    let speedup = result.f32_speedup.unwrap();
    println!(
        "f32 batched {f32_qps:.0} quotes/s vs f64 batched {:.0} quotes/s \
         ({speedup:.2}x on {cores} cores, max price err {:.2e})",
        result.batched_qps,
        result.f32_max_price_err.unwrap()
    );
    assert!(
        speedup >= 1.5,
        "f32 speedup {speedup:.2}x below the 1.5x acceptance threshold"
    );
}
