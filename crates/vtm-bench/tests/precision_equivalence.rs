//! Fixed-seed precision property tests: the quantized f32 serving path
//! must agree with the f64 reference — greedy decisions argmax-identical,
//! prices within the tested bound — across **all five** scenario presets,
//! under `SessionStore` eviction/TTL pressure, and through the degraded
//! last-quote cache. A per-layer error-bound test pins the divergence at
//! every stage of the paper's 64×64 actor shape. The bounds here are the
//! ones `docs/NUMERICS.md` documents; re-verify them with this suite after
//! any kernel change.

use vtm_core::registry::{EnvBuildOptions, EnvRegistry};
use vtm_core::scenario::ScenarioKind;
use vtm_nn::inference::InferenceModel;
use vtm_nn::matrix::Matrix;
use vtm_rl::env::{ActionSpace, Environment};
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{Precision, PricingService, QuoteRequest, ServiceConfig};

/// Absolute bound on |price_f32 - price_f64| for greedy quotes. Measured
/// maxima across the presets sit near 1e-4 (f32 unit roundoff ~6e-8
/// amplified by two 64-wide dot products and the ~22.5 price-units/raw-unit
/// squash slope); the bound carries ~two orders of margin.
const PRICE_BOUND: f64 = 1e-2;

/// Absolute per-output bound at every layer of the paper's actor shape
/// (obs -> 64 -> 64 -> 1, tanh hidden). Measured maxima are ~1e-6 on the
/// hidden layers (tanh contracts), ~1e-5 at the linear output head.
const LAYER_BOUND: f64 = 1e-3;

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

/// A fresh fixed-seed policy for the named preset (fast: serving-precision
/// agreement is a property of the network shape, not of training quality).
fn snapshot_for(registry: &EnvRegistry, name: &str, build: &EnvBuildOptions) -> PolicySnapshot {
    let env = registry.build(name, build).expect("preset exists");
    PpoAgent::new(
        PpoConfig::new(env.observation_dim(), 1).with_seed(42),
        env.action_space(),
    )
    .snapshot()
}

/// A service config under capacity and TTL pressure, so agreement is also
/// exercised against eviction/expiry bookkeeping.
fn pressured(history_length: usize, features: usize) -> ServiceConfig {
    ServiceConfig::new(history_length, features)
        .with_shards(4)
        .with_session_capacity(3)
        .with_session_ttl(24)
}

/// The headline property: on every scenario preset, over a realistic
/// request stream and with evictions/expiries firing, every f32 greedy
/// quote picks the same argmax action as its f64 counterpart and its price
/// stays within [`PRICE_BOUND`]; session bookkeeping (warm flags, stats)
/// is bit-equal because it never touches the forward pass.
#[test]
fn f32_decisions_agree_with_f64_on_all_scenario_presets_under_pressure() {
    let build = EnvBuildOptions::default();
    let registry = EnvRegistry::builtin();
    for kind in ScenarioKind::ALL {
        let name = kind.name();
        let snapshot = snapshot_for(&registry, name, &build);
        let features = registry.get(name).unwrap().features_per_round();
        let config = pressured(build.history_length, features);
        let reference = PricingService::from_snapshot(&snapshot, config).unwrap();
        let quantized =
            PricingService::from_snapshot(&snapshot, config.with_precision(Precision::F32))
                .unwrap();
        // 13 sessions over 4 shards with capacity 3 forces evictions.
        let stream = registry
            .request_stream(name, &build, 13, 8)
            .expect("preset generates streams");
        let mut max_err = 0.0f64;
        for frames in &stream {
            let requests: Vec<QuoteRequest> = frames
                .iter()
                .map(|f| QuoteRequest::new(f.session, f.features.clone()))
                .collect();
            let wide = reference.quote_batch(&requests).unwrap();
            let narrow = quantized.quote_batch(&requests).unwrap();
            for (w, n) in wide.iter().zip(&narrow) {
                assert_eq!(
                    argmax(&w.action),
                    argmax(&n.action),
                    "{name}: greedy decision diverged for session {}",
                    w.session
                );
                assert_eq!(
                    (w.session, w.warmed, w.degraded),
                    (n.session, n.warmed, n.degraded),
                    "{name}: quote metadata diverged"
                );
                max_err = max_err.max((w.price() - n.price()).abs());
            }
        }
        assert!(
            max_err <= PRICE_BOUND,
            "{name}: max |price_f32 - price_f64| = {max_err:.3e} exceeds {PRICE_BOUND:.0e}"
        );
        assert!(
            max_err > 0.0,
            "{name}: f32 and f64 prices are bit-identical over the whole stream — \
             the fast path probably did not run"
        );
        // The pressure must have materialized, identically on both sides:
        // eviction/TTL bookkeeping is precision-independent.
        let (wide_stats, narrow_stats) = (reference.stats(), quantized.stats());
        assert!(wide_stats.evicted > 0, "{name}: stream caused no evictions");
        assert_eq!(
            wide_stats, narrow_stats,
            "{name}: store bookkeeping diverged"
        );

        // Degraded last-quote cache: presence agrees (eviction decisions
        // are precision-independent) and cached actions agree like fresh
        // ones — the cache holds each mode's own last priced action.
        let mut cached_pairs = 0;
        for session in 0..13u64 {
            match (
                reference.cached_quote(session),
                quantized.cached_quote(session),
            ) {
                (Some(w), Some(n)) => {
                    assert!(w.degraded && n.degraded);
                    assert_eq!(
                        argmax(&w.action),
                        argmax(&n.action),
                        "{name}: cached argmax"
                    );
                    assert!((w.price() - n.price()).abs() <= PRICE_BOUND);
                    cached_pairs += 1;
                }
                (None, None) => {}
                other => panic!("{name}: cache presence diverged for {session}: {other:?}"),
            }
        }
        assert!(
            cached_pairs > 0,
            "{name}: no degraded cache entries survived"
        );
    }
}

/// The per-layer bound: walking the paper's actor shape layer by layer,
/// the f32 activations stay within [`LAYER_BOUND`] of the f64 reference at
/// every stage — not just at the output, so error cannot hide by
/// cancellation.
#[test]
fn per_layer_f32_error_is_bounded_on_the_paper_actor_shape() {
    for seed in [1u64, 7, 23] {
        let agent = PpoAgent::new(
            PpoConfig::new(24, 1).with_seed(seed),
            ActionSpace::scalar(5.0, 50.0),
        );
        let actor = &agent.snapshot().actor;
        let fast = InferenceModel::from_mlp(actor);
        assert_eq!(fast.layers().len(), 3, "paper shape: obs -> 64 -> 64 -> 1");
        for row in 0..16 {
            let obs: Vec<f64> = (0..24)
                .map(|f| ((row * 37 + f * 11 + seed as usize) % 41) as f64 / 41.0 - 0.5)
                .collect();
            let quantized_layers = fast.forward_layers(&obs).unwrap();
            let mut cur = Matrix::from_rows(&[&obs]).unwrap();
            for (li, layer) in actor.layers().iter().enumerate() {
                cur = layer.forward(&cur).unwrap();
                let layer_err = cur
                    .as_slice()
                    .iter()
                    .zip(&quantized_layers[li])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    layer_err <= LAYER_BOUND,
                    "seed {seed}, row {row}, layer {li}: per-output error {layer_err:.3e} \
                     exceeds {LAYER_BOUND:.0e}"
                );
            }
        }
    }
}

/// Batch-slicing invariance in f32 mode on a realistic preset stream:
/// quoting the same stream one request at a time is outcome-identical
/// (quotes *and* state digest) to batched quoting — the property that lets
/// the gateway slice micro-batches freely regardless of precision.
#[test]
fn f32_quotes_are_batch_invariant_on_a_scenario_stream() {
    let build = EnvBuildOptions::default();
    let registry = EnvRegistry::builtin();
    let name = ScenarioKind::Highway.name();
    let snapshot = snapshot_for(&registry, name, &build);
    let features = registry.get(name).unwrap().features_per_round();
    let config = pressured(build.history_length, features).with_precision(Precision::F32);
    let batched = PricingService::from_snapshot(&snapshot, config).unwrap();
    let sequential = PricingService::from_snapshot(&snapshot, config).unwrap();
    let stream = registry.request_stream(name, &build, 9, 6).unwrap();
    for frames in &stream {
        let requests: Vec<QuoteRequest> = frames
            .iter()
            .map(|f| QuoteRequest::new(f.session, f.features.clone()))
            .collect();
        let via_batch = batched.quote_batch(&requests).unwrap();
        let via_single: Vec<_> = requests
            .iter()
            .map(|r| sequential.quote_one(r).unwrap())
            .collect();
        assert_eq!(via_batch, via_single);
    }
    assert_eq!(batched.state_digest(), sequential.state_digest());
}
