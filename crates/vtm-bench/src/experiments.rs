//! The manifest-driven experiment runner.
//!
//! Every experiment of the harness — the paper figures (§V), the ablations
//! and the trace-driven scenario experiments — is an [`ExperimentSpec`] entry
//! in [`manifest`]. The `experiments` binary selects entries by name
//! (`--figure fig2a`, `--scenario highway`, `--all`), runs them under an
//! [`ExperimentCtx`] budget and emits each resulting [`Report`] as stdout +
//! `results/<name>.csv` + `results/<name>.json`. The historical
//! one-figure-per-binary stems (`fig2a_convergence`, `ablation_drl_design`,
//! ...) survive as aliases, so `--run fig2a_convergence` keeps working.

use vtm_core::allocator::{PricingRule, StackelbergAllocator};
use vtm_core::config::{ExperimentConfig, MarketConfig};
use vtm_core::env::RewardMode;
use vtm_core::scenario::{evaluate_scenario, train_scenario_parallel, Scenario, ScenarioKind};
use vtm_core::schemes::{run_scheme, GreedyPricing, RandomPricing};
use vtm_core::stackelberg::AotmStackelbergGame;
use vtm_sim::metaverse::{
    BandwidthAllocator, EqualShareAllocator, FixedAllocator, MetaverseConfig, MetaverseSim,
};
use vtm_sim::mobility::PerturbedHighway;
use vtm_sim::radio::LinkBudget;
use vtm_sim::trace::{Trace, TraceConfig};

use crate::report::Report;
use crate::{harness_drl_config, mean, train_mechanism};

/// The budget an experiment runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExperimentCtx {
    /// Paper-scale training (`--full`) instead of the fast configuration.
    pub full: bool,
    /// Overrides the number of training episodes (`--episodes N`); used by
    /// CI smoke runs to keep every experiment within seconds.
    pub episodes: Option<usize>,
}

impl ExperimentCtx {
    /// Parses `--full` and `--episodes N` from command-line style arguments,
    /// ignoring everything else. A token following `--episodes` is consumed
    /// only when it parses as a count, so a missing value cannot swallow the
    /// next flag.
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Self {
        let mut ctx = Self::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_ref() {
                "--full" => ctx.full = true,
                "--episodes" => {
                    if let Some(n) = args.get(i + 1).and_then(|v| v.as_ref().parse().ok()) {
                        ctx.episodes = Some(n);
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        ctx
    }

    /// The DRL configuration for this budget: the harness defaults, with the
    /// episode count overridden when requested.
    pub fn drl(&self, seed: u64) -> vtm_core::config::DrlConfig {
        let mut drl = harness_drl_config(self.full, seed);
        if let Some(episodes) = self.episodes {
            drl.episodes = episodes.max(1);
        }
        drl
    }
}

/// One runnable experiment of the manifest.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Canonical name (`fig2a`, `scenario-highway`, ...).
    pub name: &'static str,
    /// Accepted aliases (legacy binary stems, short forms).
    pub aliases: &'static [&'static str],
    /// One-line description for `--list`.
    pub description: &'static str,
    /// The experiment body.
    pub run: fn(&ExperimentCtx) -> Report,
}

impl ExperimentSpec {
    /// Whether `name` selects this experiment (canonical name or alias).
    pub fn matches(&self, name: &str) -> bool {
        self.name == name || self.aliases.contains(&name)
    }
}

/// Every experiment the harness can run, in presentation order.
pub fn manifest() -> &'static [ExperimentSpec] {
    &[
        ExperimentSpec {
            name: "fig2a",
            aliases: &["fig2a_convergence"],
            description: "Fig. 2(a): DRL return per training episode",
            run: fig2a,
        },
        ExperimentSpec {
            name: "fig2b",
            aliases: &["fig2b_msp_utility"],
            description: "Fig. 2(b): MSP utility convergence to the equilibrium",
            run: fig2b,
        },
        ExperimentSpec {
            name: "fig3a",
            aliases: &["fig3a_cost_msp"],
            description: "Fig. 3(a): MSP utility and price vs unit cost",
            run: fig3a,
        },
        ExperimentSpec {
            name: "fig3b",
            aliases: &["fig3b_cost_vmu"],
            description: "Fig. 3(b): VMU utility and bandwidth vs unit cost",
            run: fig3b,
        },
        ExperimentSpec {
            name: "fig3c",
            aliases: &["fig3c_vmus_msp"],
            description: "Fig. 3(c): MSP utility and price vs VMU count",
            run: fig3c,
        },
        ExperimentSpec {
            name: "fig3d",
            aliases: &["fig3d_vmus_vmu"],
            description: "Fig. 3(d): average VMU utility and bandwidth vs VMU count",
            run: fig3d,
        },
        ExperimentSpec {
            name: "ablation-bandwidth-cap",
            aliases: &["e7", "ablation_bandwidth_cap"],
            description: "Ablation E7: bandwidth-cap effect on the equilibrium",
            run: ablation_bandwidth_cap,
        },
        ExperimentSpec {
            name: "ablation-drl-design",
            aliases: &["e8", "ablation_drl_design"],
            description: "Ablation E8: history length and reward shaping",
            run: ablation_drl_design,
        },
        ExperimentSpec {
            name: "sim-aotm",
            aliases: &["exp_simulator_aotm"],
            description: "Supplementary: end-to-end AoTM by bandwidth allocator",
            run: sim_aotm,
        },
        ExperimentSpec {
            name: "scenario-highway",
            aliases: &["highway"],
            description: "Scenario engine: DRL pricing on the highway scenario",
            run: |ctx| scenario_report(ScenarioKind::Highway, ctx),
        },
        ExperimentSpec {
            name: "scenario-urban-grid",
            aliases: &["urban-grid"],
            description: "Scenario engine: DRL pricing on the urban-grid scenario",
            run: |ctx| scenario_report(ScenarioKind::UrbanGrid, ctx),
        },
        ExperimentSpec {
            name: "scenario-rush-hour-surge",
            aliases: &["rush-hour-surge"],
            description: "Scenario engine: DRL pricing through a bandwidth surge",
            run: |ctx| scenario_report(ScenarioKind::RushHourSurge, ctx),
        },
        ExperimentSpec {
            name: "scenario-sparse-rural",
            aliases: &["sparse-rural"],
            description: "Scenario engine: DRL pricing on the sparse-rural scenario",
            run: |ctx| scenario_report(ScenarioKind::SparseRural, ctx),
        },
        ExperimentSpec {
            name: "scenario-multi-msp",
            aliases: &["multi-msp"],
            description: "Scenario engine: DRL pricing against an undercutting rival MSP",
            run: |ctx| scenario_report(ScenarioKind::MultiMspCompetition, ctx),
        },
    ]
}

/// Looks an experiment up by canonical name or alias.
pub fn find(name: &str) -> Option<&'static ExperimentSpec> {
    manifest().iter().find(|spec| spec.matches(name))
}

/// Runs one experiment by name under the given budget.
pub fn run_by_name(name: &str, ctx: &ExperimentCtx) -> Option<Report> {
    find(name).map(|spec| (spec.run)(ctx))
}

fn fig2a(ctx: &ExperimentCtx) -> Report {
    let mut config = ExperimentConfig::paper_two_vmus();
    config.drl = ctx.drl(0);
    let rounds = config.drl.rounds_per_episode as f64;
    let mut report = Report::new(
        "fig2a_convergence",
        format!(
            "Fig. 2(a) — return per episode (K = {} rounds, E = {} episodes, reward = Eq. (12))",
            config.drl.rounds_per_episode, config.drl.episodes
        ),
        ["episode", "return", "max_return"],
    );
    let (_, history) = train_mechanism(config, RewardMode::Improvement);
    for log in &history.episodes {
        report.push_row([log.episode as f64, log.episode_return, rounds]);
    }
    let tail = history.tail_mean(20, |e| e.episode_return);
    report.note(format!(
        "tail-20 mean return = {tail:.1} of a maximum {rounds:.0} ({:.0}% of the max round count)",
        100.0 * tail / rounds
    ));
    report
}

fn fig2b(ctx: &ExperimentCtx) -> Report {
    let mut config = ExperimentConfig::paper_two_vmus();
    config.drl = ctx.drl(1);
    let equilibrium = AotmStackelbergGame::from_config(&config).closed_form_equilibrium();
    let mut report = Report::new(
        "fig2b_msp_utility",
        format!(
            "Fig. 2(b) — MSP utility per episode vs the Stackelberg equilibrium (U_s* = {:.3})",
            equilibrium.msp_utility
        ),
        [
            "episode",
            "mean_msp_utility",
            "best_msp_utility",
            "equilibrium_utility",
        ],
    );
    let (mut mechanism, history) = train_mechanism(config, RewardMode::Improvement);
    for log in &history.episodes {
        report.push_row([
            log.episode as f64,
            log.mean_msp_utility,
            log.best_msp_utility,
            equilibrium.msp_utility,
        ]);
    }
    let eval = mechanism.evaluate(50);
    report.note(format!(
        "final deterministic policy: price {:.3} (p* = {:.3}), utility {:.3} = {:.1}% of the equilibrium",
        eval.mean_price,
        equilibrium.price,
        eval.mean_msp_utility,
        100.0 * eval.equilibrium_ratio
    ));
    report
}

fn fig3a(ctx: &ExperimentCtx) -> Report {
    let rounds = 200;
    let mut report = Report::new(
        "fig3a_cost_msp",
        "Fig. 3(a) — MSP utility and price vs unit transmission cost (N = 2 VMUs)",
        [
            "cost",
            "eq_price",
            "eq_msp_utility",
            "drl_price",
            "drl_msp_utility",
            "greedy_msp_utility",
            "random_msp_utility",
        ],
    );
    for cost in [5.0, 6.0, 7.0, 8.0, 9.0] {
        let mut config = ExperimentConfig::paper_two_vmus();
        config.market.unit_cost = cost;
        config.drl = ctx.drl(100 + cost as u64);
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();
        let (mut mechanism, _) = train_mechanism(config, RewardMode::Improvement);
        let eval = mechanism.evaluate(rounds.min(100));
        let greedy = mean(&run_scheme(&mut GreedyPricing::new(1, 1.0), &game, rounds));
        let random = mean(&run_scheme(&mut RandomPricing::new(1), &game, rounds));
        report.push_row([
            cost,
            eq.price,
            eq.msp_utility,
            eval.mean_price,
            eval.mean_msp_utility,
            greedy,
            random,
        ]);
    }
    report.note(
        "expected shape: price rises with cost, every utility falls, DRL ≈ equilibrium > greedy > random",
    );
    report
}

fn fig3b(ctx: &ExperimentCtx) -> Report {
    let mut report = Report::new(
        "fig3b_cost_vmu",
        "Fig. 3(b) — total VMU utility and bandwidth vs unit transmission cost (N = 2 VMUs)",
        [
            "cost",
            "eq_total_vmu_utility",
            "eq_total_bandwidth_mhz",
            "eq_total_bandwidth_x100",
            "drl_total_vmu_utility",
            "drl_total_bandwidth_mhz",
        ],
    );
    for cost in [5.0, 6.0, 7.0, 8.0, 9.0] {
        let mut config = ExperimentConfig::paper_two_vmus();
        config.market.unit_cost = cost;
        config.drl = ctx.drl(200 + cost as u64);
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();
        let (mut mechanism, _) = train_mechanism(config, RewardMode::Improvement);
        let eval = mechanism.evaluate(100);
        report.push_row([
            cost,
            eq.total_vmu_utility(),
            eq.total_bandwidth_mhz(),
            eq.total_bandwidth_mhz() * 100.0,
            eval.mean_total_vmu_utility,
            eval.mean_total_bandwidth_mhz,
        ]);
    }
    report.note("expected shape: both series decrease with the transmission cost");
    report
}

/// Aggregate bandwidth cap (MHz) used for the Fig. 3(c) scarcity variant:
/// chosen so the cap starts binding around N = 4.
const FIG3C_TIGHT_CAP_MHZ: f64 = 0.5;

fn fig3c(ctx: &ExperimentCtx) -> Report {
    let mut report = Report::new(
        "fig3c_vmus_msp",
        "Fig. 3(c) — MSP utility and price vs number of VMUs (100 MB twins, alpha = 5)",
        [
            "n_vmus",
            "eq_price",
            "eq_msp_utility",
            "drl_price",
            "drl_msp_utility",
            "tightcap_price",
            "tightcap_msp_utility",
        ],
    );
    for n in 2..=6usize {
        let mut config = ExperimentConfig::paper_n_vmus(n);
        config.drl = ctx.drl(300 + n as u64);
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();
        let (mut mechanism, _) = train_mechanism(config, RewardMode::Improvement);
        let eval = mechanism.evaluate(100);
        let mut tight = ExperimentConfig::paper_n_vmus(n);
        tight.market.max_bandwidth_mhz = FIG3C_TIGHT_CAP_MHZ;
        let tight_eq = AotmStackelbergGame::from_config(&tight).closed_form_equilibrium();
        report.push_row([
            n as f64,
            eq.price,
            eq.msp_utility,
            eval.mean_price,
            eval.mean_msp_utility,
            tight_eq.price,
            tight_eq.msp_utility,
        ]);
    }
    report.note(format!(
        "expected shape: MSP utility grows with N; the slack-cap price is flat, the tight-cap ({FIG3C_TIGHT_CAP_MHZ} MHz) price rises once demand exceeds the cap"
    ));
    report
}

/// Tight aggregate bandwidth cap (MHz) reproducing the Fig. 3(d) competition
/// regime.
const FIG3D_TIGHT_CAP_MHZ: f64 = 0.45;

fn fig3d(ctx: &ExperimentCtx) -> Report {
    let mut report = Report::new(
        "fig3d_vmus_vmu",
        "Fig. 3(d) — average VMU utility and bandwidth vs number of VMUs",
        [
            "n_vmus",
            "eq_avg_vmu_utility",
            "eq_avg_bandwidth_mhz",
            "drl_avg_vmu_utility",
            "drl_avg_bandwidth_mhz",
            "tightcap_avg_vmu_utility",
            "tightcap_avg_bandwidth_mhz",
        ],
    );
    let mut tight_first = None;
    let mut tight_last = None;
    for n in 2..=6usize {
        let mut config = ExperimentConfig::paper_n_vmus(n);
        config.drl = ctx.drl(400 + n as u64);
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();
        let (mut mechanism, _) = train_mechanism(config, RewardMode::Improvement);
        let eval = mechanism.evaluate(100);
        let n_f = n as f64;
        let mut tight = ExperimentConfig::paper_n_vmus(n);
        tight.market.max_bandwidth_mhz = FIG3D_TIGHT_CAP_MHZ;
        let tight_eq = AotmStackelbergGame::from_config(&tight).closed_form_equilibrium();
        if n == 2 {
            tight_first = Some(tight_eq.average_vmu_utility());
        }
        if n == 6 {
            tight_last = Some(tight_eq.average_vmu_utility());
        }
        report.push_row([
            n_f,
            eq.average_vmu_utility(),
            eq.average_bandwidth_mhz(),
            eval.mean_total_vmu_utility / n_f,
            eval.mean_total_bandwidth_mhz / n_f,
            tight_eq.average_vmu_utility(),
            tight_eq.average_bandwidth_mhz(),
        ]);
    }
    if let (Some(first), Some(last)) = (tight_first, tight_last) {
        report.note(format!(
            "tight-cap average VMU utility declines by {:.1}% from N = 2 to N = 6 (paper reports 12.8%)",
            100.0 * (first - last) / first.max(1e-12)
        ));
    }
    report
}

fn ablation_bandwidth_cap(_ctx: &ExperimentCtx) -> Report {
    let mut report = Report::new(
        "ablation_bandwidth_cap",
        "Ablation E7 — bandwidth-cap effect on the Stackelberg equilibrium",
        [
            "n_vmus",
            "bmax_mhz",
            "price",
            "msp_utility",
            "avg_bandwidth_mhz",
            "avg_vmu_utility",
            "cap_binding",
        ],
    );
    for &bmax in &[0.25, 0.5, 50.0] {
        for n in 1..=12usize {
            let mut config = ExperimentConfig::paper_n_vmus(n);
            config.market.max_bandwidth_mhz = bmax;
            let eq = AotmStackelbergGame::from_config(&config).closed_form_equilibrium();
            report.push_row([
                n as f64,
                bmax,
                eq.price,
                eq.msp_utility,
                eq.average_bandwidth_mhz(),
                eq.average_vmu_utility(),
                if eq.bandwidth_cap_binding { 1.0 } else { 0.0 },
            ]);
        }
    }
    report.note("expected shape: with a tight cap the price rises and per-VMU bandwidth falls once N exceeds the point where aggregate demand hits B_max; with 50 MHz the cap never binds");
    report
}

fn ablation_drl_design(ctx: &ExperimentCtx) -> Report {
    let mut report = Report::new(
        "ablation_drl_design",
        "Ablation E8 — observation history length and reward shaping",
        [
            "history_length",
            "sparse_reward",
            "equilibrium_ratio",
            "mean_price",
            "tail_return",
        ],
    );
    for &history_length in &[1usize, 2, 4, 8] {
        for (mode, sparse_flag) in [
            (RewardMode::Improvement, 1.0),
            (RewardMode::NormalizedUtility, 0.0),
        ] {
            let mut config = ExperimentConfig::paper_two_vmus();
            config.drl = ctx.drl(500 + history_length as u64);
            config.drl.history_length = history_length;
            let (mut mechanism, history) = train_mechanism(config, mode);
            let eval = mechanism.evaluate(50);
            report.push_row([
                history_length as f64,
                sparse_flag,
                eval.equilibrium_ratio,
                eval.mean_price,
                history.tail_mean(10, |e| e.episode_return),
            ]);
        }
    }
    report.note("expected shape: L = 4 (the paper's choice) performs at least as well as shorter histories; the dense reward converges faster at equal budget");
    report
}

fn sim_aotm_run<A: BandwidthAllocator>(allocator: &mut A, seed: u64) -> [f64; 5] {
    let config = MetaverseConfig {
        rsu_count: 8,
        duration_s: 600.0,
        seed,
        ..MetaverseConfig::default()
    };
    let trace = Trace::generate(&TraceConfig {
        trips: 6,
        seed,
        ..TraceConfig::default()
    });
    let mut sim = MetaverseSim::new(config, PerturbedHighway::default(), trace.to_vmu_entries());
    let report = sim.run(allocator);
    [
        report.aotm_summary.mean,
        report.aotm_summary.p95,
        report.downtime_summary.mean,
        report.migrations.len() as f64,
        report.failed_migrations as f64,
    ]
}

fn sim_aotm(_ctx: &ExperimentCtx) -> Report {
    let mut report = Report::new(
        "exp_simulator_aotm",
        "Supplementary — end-to-end AoTM by bandwidth allocator (6 VMUs, 8 RSUs, 600 s)",
        [
            "allocator",
            "mean_aotm_s",
            "p95_aotm_s",
            "mean_downtime_s",
            "migrations",
            "failed",
        ],
    );
    let mut stackelberg = StackelbergAllocator::new(
        MarketConfig::default(),
        LinkBudget::default(),
        PricingRule::StackelbergPerMigration,
    )
    .with_min_bandwidth_mhz(2.0);
    let mut fixed = FixedAllocator { bandwidth_hz: 5e6 };
    let mut equal = EqualShareAllocator {
        expected_concurrent: 6,
    };
    for (code, row) in [
        (0.0, sim_aotm_run(&mut stackelberg, 1)),
        (1.0, sim_aotm_run(&mut fixed, 1)),
        (2.0, sim_aotm_run(&mut equal, 1)),
    ] {
        report.push_row(std::iter::once(code).chain(row));
    }
    report.note("(allocator codes: 0 = stackelberg-priced, 1 = fixed-5MHz, 2 = equal-share)");
    report
}

/// Environment replicas used by every scenario training run.
const SCENARIO_ENVS: usize = 4;

/// The scenario experiment shared by all five presets: train the PPO agent on
/// parallel scenario replicas, then trace one deterministic evaluation
/// episode round by round.
pub fn scenario_report(kind: ScenarioKind, ctx: &ExperimentCtx) -> Report {
    let scenario = Scenario::preset(kind);
    let mut drl = ctx.drl(900 + kind as u64);
    if !ctx.full {
        drl.rounds_per_episode = 40;
        if ctx.episodes.is_none() {
            drl.episodes = 24;
        }
    }
    let run = train_scenario_parallel(
        &scenario,
        &drl,
        RewardMode::Improvement,
        drl.episodes,
        SCENARIO_ENVS,
        0,
    );
    let mut env = scenario.env(
        drl.history_length,
        drl.rounds_per_episode,
        RewardMode::Improvement,
        1234,
    );
    let records = evaluate_scenario(&run.agent, &mut env, drl.rounds_per_episode);
    let mut report = Report::new(
        format!("scenario_{}", kind.name().replace('-', "_")),
        format!(
            "Scenario `{}` — {} (E = {}, K = {}, {} replicas)",
            kind.name(),
            kind.description(),
            drl.episodes,
            drl.rounds_per_episode,
            SCENARIO_ENVS
        ),
        [
            "round",
            "clock_s",
            "price",
            "rival_price",
            "active_vmus",
            "served_vmus",
            "migrations",
            "budget_mhz",
            "sold_mhz",
            "msp_utility",
            "mean_aotm_s",
            "spectral_eff",
        ],
    );
    let mut migrations = 0usize;
    for r in &records {
        migrations += r.migrations;
        report.push_row([
            r.round as f64,
            r.clock_s,
            r.price,
            r.rival_price.unwrap_or(f64::NAN),
            r.active_vmus as f64,
            r.served_vmus as f64,
            r.migrations as f64,
            r.budget_mhz,
            r.total_demand_mhz,
            r.msp_utility,
            r.mean_aotm_s.unwrap_or(f64::NAN),
            r.mean_spectral_efficiency,
        ]);
    }
    let tail_return = run.history.tail_mean(8, |e| e.episode_return);
    let tail_utility = run.history.tail_mean(8, |e| e.mean_msp_utility);
    report.note(format!(
        "training: tail-8 mean return {tail_return:.2}, tail-8 mean MSP utility {tail_utility:.3}"
    ));
    report.note(format!(
        "evaluation episode: {} rounds, {} hand-overs, mean sold bandwidth {:.3} MHz",
        records.len(),
        migrations,
        mean(
            &records
                .iter()
                .map(|r| r.total_demand_mhz)
                .collect::<Vec<_>>()
        )
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_names_and_aliases_are_unique() {
        let specs = manifest();
        let mut seen = std::collections::HashSet::new();
        for spec in specs {
            assert!(seen.insert(spec.name), "duplicate name {}", spec.name);
            for alias in spec.aliases {
                assert!(seen.insert(alias), "duplicate alias {alias}");
            }
            assert!(!spec.description.is_empty());
        }
    }

    #[test]
    fn every_named_scenario_has_a_manifest_entry() {
        for kind in ScenarioKind::ALL {
            let name = format!("scenario-{}", kind.name());
            assert!(
                find(&name).is_some() || find(kind.name()).is_some(),
                "no manifest entry for scenario {kind}"
            );
        }
    }

    #[test]
    fn lookup_accepts_aliases_and_rejects_unknowns() {
        assert_eq!(find("fig2a").unwrap().name, "fig2a");
        assert_eq!(find("fig2a_convergence").unwrap().name, "fig2a");
        assert_eq!(find("e7").unwrap().name, "ablation-bandwidth-cap");
        assert!(find("not-an-experiment").is_none());
        assert!(run_by_name("not-an-experiment", &ExperimentCtx::default()).is_none());
    }

    #[test]
    fn ctx_parses_budget_flags() {
        let ctx = ExperimentCtx::from_args(&["--scenario", "highway", "--full", "--episodes", "3"]);
        assert!(ctx.full);
        assert_eq!(ctx.episodes, Some(3));
        assert_eq!(ctx.drl(0).episodes, 3);
        let fast = ExperimentCtx::default();
        assert!(!fast.full);
        assert!(fast.drl(0).episodes > 3);
        // A valueless --episodes must not swallow the flag that follows it.
        let ctx = ExperimentCtx::from_args(&["--episodes", "--full"]);
        assert!(ctx.full);
        assert_eq!(ctx.episodes, None);
    }

    #[test]
    fn equilibrium_only_experiment_runs_quickly() {
        // E7 needs no DRL training, so it can run in the unit-test budget and
        // exercise the whole spec -> run -> Report path.
        let report = run_by_name("ablation-bandwidth-cap", &ExperimentCtx::default()).unwrap();
        assert_eq!(report.table.len(), 36);
        assert!(!report.to_json().is_empty());
    }
}
