//! The audit-journal lifecycle behind `experiments journal-demo` and
//! `experiments replay`.
//!
//! `journal-demo` records a deterministic gateway run into an append-only
//! request journal (plus periodic state snapshots) and prints the final
//! service-state digest. `replay` rebuilds the *same* policy (checkpoint or
//! the deterministic fixed-seed fallback), replays the journal — optionally
//! resuming from the latest snapshot — and checks the reconstructed state
//! digest against an expected value. Killing the demo mid-run (or truncating
//! the journal mid-frame) leaves a torn tail that replay recovers from: the
//! state is reconstructed up to the last complete frame.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use vtm_core::registry::{EnvBuildOptions, EnvRegistry};
use vtm_gateway::{Gateway, GatewayConfig};
use vtm_journal::{
    find_latest_snapshot, find_snapshots, replay_journal, JournalOptions, ReplayOptions,
    ReplayReport, ScanMode, StateSnapshot,
};
use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};

use crate::results_dir;
use crate::serve_bench::resolve_snapshot;

/// Options of one `journal-demo` recording run.
#[derive(Debug, Clone)]
pub struct JournalDemoOptions {
    /// Registry preset the policy prices (decides the feature geometry and
    /// the request-stream dynamics).
    pub env: String,
    /// Optional checkpoint to load; when absent a policy is trained on the
    /// spot with a fixed seed, so `replay` can rebuild the identical policy.
    pub checkpoint: Option<PathBuf>,
    /// Episodes for the fallback on-the-spot training.
    pub train_episodes: usize,
    /// Journal path (snapshots land next to it as `<name>.snap.<frames>`).
    pub journal: PathBuf,
    /// Total requests to record.
    pub requests: usize,
    /// Distinct VMU sessions in the replayed stream.
    pub sessions: usize,
    /// Scheduler flush threshold.
    pub max_batch: usize,
    /// Journal fsync-less flush cadence (appends per `flush`).
    pub flush_every: u64,
    /// Snapshot cadence in processed frames (`0` = no periodic snapshots).
    pub snapshot_every: u64,
}

impl Default for JournalDemoOptions {
    fn default() -> Self {
        Self {
            env: "static".to_string(),
            checkpoint: None,
            train_episodes: 2,
            journal: results_dir().join("journal_demo.vtmj"),
            requests: 512,
            sessions: 32,
            max_batch: 16,
            flush_every: 8,
            snapshot_every: 128,
        }
    }
}

/// What one `journal-demo` run recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalDemoResult {
    /// Preset name the stream came from.
    pub env: String,
    /// The journal that was written.
    pub journal: PathBuf,
    /// Frames appended (== requests admitted).
    pub frames: u64,
    /// Journal bytes written.
    pub bytes: u64,
    /// Periodic snapshots taken during the run.
    pub snapshots: u64,
    /// FNV-1a digest of the live service state after the run — the value
    /// `replay --expect-digest` reconstructs.
    pub state_digest: u64,
}

/// Which snapshot `replay` starts from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotChoice {
    /// Use the latest `<journal>.snap.<frames>` next to the journal, if any.
    Auto,
    /// Replay the whole journal from genesis.
    None,
    /// Load this exact snapshot file.
    Path(PathBuf),
}

/// Options of one `replay` invocation.
#[derive(Debug, Clone)]
pub struct ReplayCliOptions {
    /// Must match the recording run (policy geometry and fallback training).
    pub env: String,
    /// Must match the recording run's checkpoint (or absence thereof).
    pub checkpoint: Option<PathBuf>,
    /// Episodes for the fallback on-the-spot training (must match the demo).
    pub train_episodes: usize,
    /// Journal to replay.
    pub journal: PathBuf,
    /// Where to start from.
    pub snapshot: SnapshotChoice,
    /// Refuse torn tails instead of recovering to the last complete frame.
    pub strict: bool,
    /// When set, the reconstructed state digest must equal this value.
    pub expect_digest: Option<u64>,
}

impl Default for ReplayCliOptions {
    fn default() -> Self {
        Self {
            env: "static".to_string(),
            checkpoint: None,
            train_episodes: 2,
            journal: results_dir().join("journal_demo.vtmj"),
            snapshot: SnapshotChoice::Auto,
            strict: false,
            expect_digest: None,
        }
    }
}

/// What one `replay` invocation reconstructed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCliResult {
    /// The replay engine's report (frames applied, torn tail, digest).
    pub report: ReplayReport,
    /// Frame count of the snapshot that was restored, if any.
    pub snapshot_frames: Option<u64>,
    /// `Some(true/false)` when `expect_digest` was given.
    pub digest_matches: Option<bool>,
}

/// Builds the pricing service both the demo and the replay run on: same
/// policy resolution (checkpoint or fixed-seed fallback training) and same
/// geometry, so the snapshot fingerprint and state digests are comparable.
pub(crate) fn build_service(
    env: &str,
    checkpoint: Option<&std::path::Path>,
    train_episodes: usize,
) -> Result<PricingService, String> {
    let build = EnvBuildOptions::default();
    let registry = EnvRegistry::builtin();
    let features = registry
        .get(env)
        .ok_or_else(|| format!("unknown environment preset `{env}`"))?
        .features_per_round();
    let snapshot = resolve_snapshot(env, checkpoint, train_episodes, &build)?;
    PricingService::from_snapshot(
        &snapshot,
        ServiceConfig::new(build.history_length, features),
    )
    .map_err(|e| format!("cannot build service: {e}"))
}

/// Records a journaling single-executor gateway run over the preset's
/// deterministic request stream.
///
/// # Errors
///
/// Returns a human-readable message for unknown presets, unreadable
/// checkpoints, journal I/O failures or gateway errors.
pub fn run_journal_demo(opts: &JournalDemoOptions) -> Result<JournalDemoResult, String> {
    let build = EnvBuildOptions::default();
    let registry = EnvRegistry::builtin();
    let service = Arc::new(build_service(
        &opts.env,
        opts.checkpoint.as_deref(),
        opts.train_episodes,
    )?);
    let sessions = opts.sessions.max(1);
    let requests = opts.requests.max(1);
    let rounds = requests.div_ceil(sessions);
    let stream = registry
        .request_stream(&opts.env, &build, sessions, rounds)
        .ok_or_else(|| format!("unknown environment preset `{}`", opts.env))?;

    // A fresh recording: drop stale snapshots from previous demos so that
    // `replay --snapshot auto` cannot pick up a snapshot that claims more
    // frames than the new journal holds.
    for (_, path) in find_snapshots(&opts.journal) {
        std::fs::remove_file(&path)
            .map_err(|e| format!("cannot remove stale snapshot {}: {e}", path.display()))?;
    }

    // Single executor: batches complete in admission order, which is what
    // makes the periodic snapshots consistent and the replay digest equal to
    // the live state.
    let gateway = Gateway::try_start(
        Arc::clone(&service),
        GatewayConfig::default()
            .with_executors(1)
            .with_max_batch(opts.max_batch.max(1))
            .with_max_delay(Duration::from_micros(500))
            .with_journal(
                JournalOptions::new(&opts.journal)
                    .with_flush_every(opts.flush_every)
                    .with_snapshot_every(opts.snapshot_every),
            ),
    )
    .map_err(|e| e.to_string())?;
    // Sliding submission window: wait the oldest ticket once 256 are in
    // flight, so arbitrarily large --requests counts stay under the
    // gateway's admission bound instead of tripping Overloaded.
    let mut submitted = 0usize;
    let mut tickets = std::collections::VecDeque::with_capacity(256);
    'rounds: for round in &stream {
        for frame in round {
            if submitted == requests {
                break 'rounds;
            }
            let request = QuoteRequest::new(frame.session, frame.features.clone());
            tickets.push_back(gateway.submit(request).map_err(|e| e.to_string())?);
            submitted += 1;
            if tickets.len() >= 256 {
                let ticket = tickets.pop_front().expect("window is non-empty");
                ticket.wait().map_err(|e| e.to_string())?;
            }
        }
    }
    for ticket in tickets {
        ticket.wait().map_err(|e| e.to_string())?;
    }
    let stats = gateway.shutdown();
    Ok(JournalDemoResult {
        env: opts.env.clone(),
        journal: opts.journal.clone(),
        frames: stats.journal_frames,
        bytes: stats.journal_bytes,
        snapshots: stats.snapshots,
        state_digest: service.state_digest(),
    })
}

/// Replays a journal into a freshly built service and reports the
/// reconstructed state.
///
/// # Errors
///
/// Returns a human-readable message for unknown presets, unreadable
/// checkpoints or snapshots, corrupt journals (in `--strict` mode any torn
/// tail is corrupt) and policy/geometry mismatches.
pub fn run_replay(opts: &ReplayCliOptions) -> Result<ReplayCliResult, String> {
    let service = build_service(&opts.env, opts.checkpoint.as_deref(), opts.train_episodes)?;
    let (snapshot, snapshot_frames) = match &opts.snapshot {
        SnapshotChoice::None => (None, None),
        SnapshotChoice::Auto => match find_latest_snapshot(&opts.journal) {
            Some((frames, path)) => {
                let snap = StateSnapshot::load_from(&path)
                    .map_err(|e| format!("cannot load snapshot {}: {e}", path.display()))?;
                (Some(snap), Some(frames))
            }
            None => (None, None),
        },
        SnapshotChoice::Path(path) => {
            let snap = StateSnapshot::load_from(path)
                .map_err(|e| format!("cannot load snapshot {}: {e}", path.display()))?;
            let frames = snap.frames_applied;
            (Some(snap), Some(frames))
        }
    };
    let replay_options = ReplayOptions {
        mode: if opts.strict {
            ScanMode::Strict
        } else {
            ScanMode::RecoverTail
        },
        ..ReplayOptions::default()
    };
    let report = replay_journal(&service, &opts.journal, snapshot.as_ref(), &replay_options)
        .map_err(|e| format!("replay failed: {e}"))?;
    let digest_matches = opts.expect_digest.map(|want| want == report.state_digest);
    Ok(ReplayCliResult {
        report,
        snapshot_frames,
        digest_matches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vtm_journal_cli_{tag}_{}.vtmj", std::process::id()))
    }

    fn cleanup(journal: &PathBuf) {
        for (_, path) in find_snapshots(journal) {
            let _ = std::fs::remove_file(path);
        }
        let _ = std::fs::remove_file(journal);
    }

    fn demo_opts(journal: &std::path::Path) -> JournalDemoOptions {
        JournalDemoOptions {
            journal: journal.to_path_buf(),
            requests: 60,
            sessions: 8,
            snapshot_every: 25,
            ..JournalDemoOptions::default()
        }
    }

    #[test]
    fn demo_then_replay_reconstructs_the_recorded_digest() {
        let journal = temp_journal("roundtrip");
        let demo = run_journal_demo(&demo_opts(&journal)).unwrap();
        assert_eq!(demo.frames, 60);
        assert!(demo.bytes > 0);
        assert!(demo.snapshots >= 1);

        // From genesis, from the latest snapshot, and in strict mode — all
        // must reconstruct the recorded digest (the journal is intact).
        for (snapshot, strict) in [
            (SnapshotChoice::None, false),
            (SnapshotChoice::Auto, false),
            (SnapshotChoice::None, true),
        ] {
            let replay = run_replay(&ReplayCliOptions {
                journal: journal.clone(),
                snapshot: snapshot.clone(),
                strict,
                expect_digest: Some(demo.state_digest),
                ..ReplayCliOptions::default()
            })
            .unwrap();
            assert_eq!(replay.report.state_digest, demo.state_digest);
            assert_eq!(replay.digest_matches, Some(true));
            assert_eq!(replay.report.truncated_tail, 0);
            if snapshot == SnapshotChoice::Auto {
                let frames = replay.snapshot_frames.unwrap();
                assert!(frames > 0);
                assert_eq!(replay.report.start_seq, frames);
            } else {
                assert_eq!(replay.report.frames_applied, 60);
            }
        }

        // A wrong expected digest is reported, not silently accepted.
        let mismatch = run_replay(&ReplayCliOptions {
            journal: journal.clone(),
            expect_digest: Some(demo.state_digest ^ 1),
            ..ReplayCliOptions::default()
        })
        .unwrap();
        assert_eq!(mismatch.digest_matches, Some(false));
        cleanup(&journal);
    }

    #[test]
    fn replay_recovers_a_torn_tail_after_a_simulated_crash() {
        let journal = temp_journal("torn");
        let demo = run_journal_demo(&demo_opts(&journal)).unwrap();

        // "Crash": chop 13 bytes off the last frame.
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() - 13]).unwrap();

        let recovered = run_replay(&ReplayCliOptions {
            journal: journal.clone(),
            snapshot: SnapshotChoice::None,
            ..ReplayCliOptions::default()
        })
        .unwrap();
        assert_eq!(recovered.report.frames_applied, demo.frames - 1);
        assert!(recovered.report.truncated_tail > 0);
        assert_ne!(recovered.report.state_digest, demo.state_digest);

        // Strict mode refuses the torn tail instead.
        let strict = run_replay(&ReplayCliOptions {
            journal: journal.clone(),
            snapshot: SnapshotChoice::None,
            strict: true,
            ..ReplayCliOptions::default()
        });
        assert!(strict.unwrap_err().contains("replay failed"));
        cleanup(&journal);
    }

    #[test]
    fn unknown_presets_and_missing_journals_are_rejected() {
        let opts = JournalDemoOptions {
            env: "not-a-preset".to_string(),
            journal: temp_journal("bad_env"),
            ..JournalDemoOptions::default()
        };
        assert!(run_journal_demo(&opts).is_err());
        let replay = run_replay(&ReplayCliOptions {
            journal: temp_journal("does_not_exist"),
            ..ReplayCliOptions::default()
        });
        assert!(replay.unwrap_err().contains("replay failed"));
    }
}
