//! The chaos-injection harness behind `experiments chaos`.
//!
//! Each named plan arms a deterministic [`FaultPlan`] (fixed seed, fixed
//! fault indices derived from the request count), drives a single-executor
//! gateway through the preset's request stream and checks two properties:
//!
//! 1. **Liveness** — every obtained ticket resolves within a bounded wait;
//!    no `QuoteTicket::wait` hangs under any injected fault.
//! 2. **Replay equivalence** — for journaled plans, replaying the surviving
//!    journal into a freshly built service reconstructs exactly the state a
//!    reference service reaches when fed the scanned frames directly.
//!
//! Violations are collected per plan (not panicked), so one run can report
//! every broken invariant; the `experiments chaos` subcommand exits non-zero
//! when any plan reports a violation.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use vtm_core::registry::{EnvBuildOptions, EnvRegistry};
use vtm_gateway::{FaultPlan, Gateway, GatewayConfig, JournalBypassPolicy, TelemetrySnapshot};
use vtm_journal::{
    find_snapshots, replay_journal, scan_journal, JournalOptions, ReplayOptions, ScanMode,
};
use vtm_serve::QuoteRequest;

use crate::journal_cli::build_service;
use crate::results_dir;

/// Every named fault plan the harness can run, in presentation order.
pub const PLANS: &[&str] = &[
    "executor-panic",
    "journal-io",
    "journal-bypass",
    "deadline-storm",
    "slow-batch",
    "scheduler-stall",
];

/// Options of one `experiments chaos` run.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Registry preset whose request stream is replayed under faults.
    pub env: String,
    /// Optional checkpoint; absent means the deterministic fixed-seed
    /// fallback training (same resolution as `journal-demo`).
    pub checkpoint: Option<PathBuf>,
    /// Episodes for the fallback on-the-spot training.
    pub train_episodes: usize,
    /// Plans to run; empty means all of [`PLANS`].
    pub plans: Vec<String>,
    /// Requests per plan (fault indices scale with this count).
    pub requests: usize,
    /// Distinct VMU sessions in the stream.
    pub sessions: usize,
    /// Journal path stem for the journaled plans (`<stem>.<plan>` per plan).
    pub journal: PathBuf,
    /// Liveness bound: a ticket that does not resolve within this wait is a
    /// violation.
    pub wait_timeout: Duration,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self {
            env: "static".to_string(),
            checkpoint: None,
            train_episodes: 2,
            plans: Vec::new(),
            requests: 48,
            sessions: 8,
            journal: results_dir().join("chaos.vtmj"),
            wait_timeout: Duration::from_secs(30),
        }
    }
}

/// What one plan's run observed.
#[derive(Debug, Clone)]
pub struct ChaosPlanResult {
    /// Plan name.
    pub plan: String,
    /// Tickets obtained (submissions the gateway admitted).
    pub admitted: u64,
    /// Waits that returned a quote.
    pub quoted: u64,
    /// Waits that returned a typed error (still liveness-correct).
    pub errored: u64,
    /// Submissions rejected synchronously (shed, stalled, overloaded).
    pub rejected: u64,
    /// Final gateway telemetry.
    pub stats: TelemetrySnapshot,
    /// `Some(true)` when the journal replay digest matched the reference;
    /// `None` for journal-less plans.
    pub replay_equivalent: Option<bool>,
    /// Every broken invariant, human-readable. Empty means the plan passed.
    pub violations: Vec<String>,
}

impl ChaosPlanResult {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The deterministic request stream the plans replay: the preset's stream,
/// flattened and truncated to `requests` frames.
fn stream_requests(opts: &ChaosOptions) -> Result<Vec<QuoteRequest>, String> {
    let build = EnvBuildOptions::default();
    let sessions = opts.sessions.max(1);
    let requests = opts.requests.max(4);
    let rounds = requests.div_ceil(sessions);
    let stream = EnvRegistry::builtin()
        .request_stream(&opts.env, &build, sessions, rounds)
        .ok_or_else(|| format!("unknown environment preset `{}`", opts.env))?;
    let mut out = Vec::with_capacity(requests);
    'rounds: for round in &stream {
        for frame in round {
            if out.len() == requests {
                break 'rounds;
            }
            out.push(QuoteRequest::new(frame.session, frame.features.clone()));
        }
    }
    Ok(out)
}

/// The gateway configuration for one plan. All plans run a single executor
/// with single-request batches, so batch index N is exactly request N and
/// the armed fault indices are deterministic.
fn plan_config(plan: &str, total: u64, journal: Option<&PathBuf>) -> Result<GatewayConfig, String> {
    let mut config = GatewayConfig::default()
        .with_executors(1)
        .with_max_batch(1)
        .with_max_delay(Duration::from_micros(100));
    if let Some(path) = journal {
        config = config.with_journal(
            JournalOptions::new(path)
                .with_flush_every(4)
                .with_snapshot_every(0),
        );
    }
    Ok(match plan {
        "executor-panic" => config.with_faults(FaultPlan::new(11).with_executor_panic(total / 2)),
        // Two transient append errors, far enough apart that each heals with
        // exactly one retry.
        "journal-io" => config
            .with_journal_retries(2)
            .with_journal_backoff(Duration::from_micros(200))
            .with_faults(
                FaultPlan::new(12)
                    .with_journal_error(total / 3, std::io::ErrorKind::Interrupted)
                    .with_journal_error(2 * total / 3, std::io::ErrorKind::WouldBlock),
            ),
        // No retries: the single injected error drops exactly one frame from
        // the journal while the quote still flows.
        "journal-bypass" => config
            .with_journal_retries(0)
            .with_journal_policy(JournalBypassPolicy::DegradeWithoutJournal)
            .with_faults(
                FaultPlan::new(13).with_journal_error(total / 2, std::io::ErrorKind::StorageFull),
            ),
        "deadline-storm" => config.with_default_deadline(Duration::ZERO),
        "slow-batch" => config.with_faults(
            FaultPlan::new(14).with_batch_delay(Duration::from_millis(5), (total / 4).max(1)),
        ),
        "scheduler-stall" => config
            .with_supervisor_poll(Duration::from_millis(1))
            .with_faults(FaultPlan::new(15).with_scheduler_panic(0)),
        other => {
            return Err(format!(
                "unknown chaos plan `{other}` (known: {})",
                PLANS.join(", ")
            ))
        }
    })
}

fn cleanup_journal(path: &PathBuf) {
    for (_, snap) in find_snapshots(path) {
        let _ = std::fs::remove_file(snap);
    }
    let _ = std::fs::remove_file(path);
}

/// Runs one named plan end to end.
fn run_plan(plan: &str, opts: &ChaosOptions) -> Result<ChaosPlanResult, String> {
    let requests = stream_requests(opts)?;
    let total = requests.len() as u64;
    let journaled = matches!(plan, "journal-io" | "journal-bypass");
    let journal_path = journaled.then(|| {
        let mut name = opts
            .journal
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "chaos.vtmj".to_string());
        name.push('.');
        name.push_str(plan);
        opts.journal.with_file_name(name)
    });
    if let Some(path) = &journal_path {
        cleanup_journal(path);
    }
    let config = plan_config(plan, total, journal_path.as_ref())?;
    let service = Arc::new(build_service(
        &opts.env,
        opts.checkpoint.as_deref(),
        opts.train_episodes,
    )?);
    let gateway = Gateway::try_start(Arc::clone(&service), config).map_err(|e| e.to_string())?;

    let mut violations = Vec::new();
    let (mut admitted, mut quoted, mut errored, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    for (i, request) in requests.iter().enumerate() {
        match gateway.submit(request.clone()) {
            Ok(ticket) => {
                admitted += 1;
                match ticket.wait_timeout(opts.wait_timeout) {
                    Some(Ok(_)) => quoted += 1,
                    Some(Err(_)) => errored += 1,
                    None => violations.push(format!(
                        "liveness: ticket {i} did not resolve within {:?}",
                        opts.wait_timeout
                    )),
                }
            }
            Err(_) => rejected += 1,
        }
    }
    let stats = gateway.shutdown();

    // Structural accounting that must hold under every plan.
    if admitted != quoted + errored + (violations.len() as u64) {
        violations.push(format!(
            "accounting: {admitted} admitted but {quoted} quoted + {errored} errored"
        ));
    }
    if stats.queue_depth != 0 {
        violations.push(format!(
            "accounting: {} requests still in flight after shutdown",
            stats.queue_depth
        ));
    }

    // Plan-specific counters.
    match plan {
        "executor-panic" => {
            if stats.panics != 1 || stats.restarts != 1 {
                violations.push(format!(
                    "supervision: expected 1 panic/1 restart, got {}/{}",
                    stats.panics, stats.restarts
                ));
            }
            if stats.completed != total - 1 || errored != 1 {
                violations.push(format!(
                    "isolation: the panic must fail exactly its own ticket \
                     ({} completed of {total}, {errored} errored)",
                    stats.completed
                ));
            }
        }
        "journal-io" => {
            if stats.journal_retries != 2 || stats.journal_bypassed != 0 {
                violations.push(format!(
                    "journal: expected 2 healed retries and no bypass, got {} retries, {} bypassed",
                    stats.journal_retries, stats.journal_bypassed
                ));
            }
            if stats.journal_frames != total || stats.completed != total {
                violations.push(format!(
                    "journal: retries must not lose frames ({} frames, {} completed of {total})",
                    stats.journal_frames, stats.completed
                ));
            }
        }
        "journal-bypass" => {
            if stats.journal_bypassed != 1 || stats.journal_frames != total - 1 {
                violations.push(format!(
                    "journal: expected exactly one bypassed frame, got {} bypassed, {} frames",
                    stats.journal_bypassed, stats.journal_frames
                ));
            }
            if stats.completed != total {
                violations.push(format!(
                    "degradation: bypass must not lose the quote ({} completed of {total})",
                    stats.completed
                ));
            }
        }
        "deadline-storm" if stats.expired != total || stats.completed != 0 => {
            violations.push(format!(
                "deadlines: every request must expire unpriced \
                 ({} expired, {} completed of {total})",
                stats.expired, stats.completed
            ));
        }
        "slow-batch" => {
            if stats.completed != total {
                violations.push(format!(
                    "slow batches must still complete ({} of {total})",
                    stats.completed
                ));
            }
            if stats.latency_max_us < 5_000 {
                violations.push(format!(
                    "injected 5ms batch delay not visible in latency (max {} us)",
                    stats.latency_max_us
                ));
            }
        }
        "scheduler-stall" => {
            if stats.watchdog_fires != 1 || stats.completed != 0 {
                violations.push(format!(
                    "watchdog: expected one fire and no completions, got {} fires, {} completed",
                    stats.watchdog_fires, stats.completed
                ));
            }
            if errored + rejected != total {
                violations.push(format!(
                    "watchdog: every request must be failed or rejected \
                     ({errored} errored + {rejected} rejected of {total})"
                ));
            }
        }
        _ => {}
    }

    // Post-recovery replay equivalence: what the journal recorded replays
    // into exactly the state a reference service reaches on those frames.
    let mut replay_equivalent = None;
    if let Some(path) = &journal_path {
        let scanned =
            scan_journal(path, ScanMode::RecoverTail).map_err(|e| format!("scan failed: {e}"))?;
        let reference = build_service(&opts.env, opts.checkpoint.as_deref(), opts.train_episodes)?;
        for frame in &scanned.frames {
            reference
                .quote_batch(std::slice::from_ref(&frame.request))
                .map_err(|e| format!("reference quote failed: {e}"))?;
        }
        let replayed = build_service(&opts.env, opts.checkpoint.as_deref(), opts.train_episodes)?;
        let report = replay_journal(
            &replayed,
            path,
            None,
            &ReplayOptions {
                mode: ScanMode::RecoverTail,
                ..ReplayOptions::default()
            },
        )
        .map_err(|e| format!("replay failed: {e}"))?;
        let equivalent = report.state_digest == reference.state_digest();
        if !equivalent {
            violations.push(format!(
                "replay: journal digest 0x{:016x} != reference digest 0x{:016x}",
                report.state_digest,
                reference.state_digest()
            ));
        }
        // The bypassed frame is the one place live state may legitimately
        // run ahead of the journal; everywhere else they must agree.
        if plan == "journal-io" && report.state_digest != service.state_digest() {
            violations.push(format!(
                "replay: journal digest 0x{:016x} != live digest 0x{:016x}",
                report.state_digest,
                service.state_digest()
            ));
        }
        replay_equivalent = Some(equivalent);
        cleanup_journal(path);
    }

    Ok(ChaosPlanResult {
        plan: plan.to_string(),
        admitted,
        quoted,
        errored,
        rejected,
        stats,
        replay_equivalent,
        violations,
    })
}

/// Runs the selected plans (all of [`PLANS`] when none are named) and
/// returns one result per plan, in order.
///
/// # Errors
///
/// Returns a human-readable message for unknown presets or plans,
/// unreadable checkpoints and journal I/O failures. Invariant *violations*
/// are not errors — they are collected per plan so a single run reports all
/// of them.
pub fn run_chaos(opts: &ChaosOptions) -> Result<Vec<ChaosPlanResult>, String> {
    let plans: Vec<String> = if opts.plans.is_empty() {
        PLANS.iter().map(|p| p.to_string()).collect()
    } else {
        opts.plans.clone()
    };
    plans.iter().map(|plan| run_plan(plan, opts)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(tag: &str) -> ChaosOptions {
        ChaosOptions {
            requests: 12,
            journal: std::env::temp_dir()
                .join(format!("vtm_chaos_{tag}_{}.vtmj", std::process::id())),
            ..ChaosOptions::default()
        }
    }

    #[test]
    fn deadline_storm_plan_passes_its_invariants() {
        let mut o = opts("storm");
        o.plans = vec!["deadline-storm".to_string()];
        let results = run_chaos(&o).unwrap();
        assert_eq!(results.len(), 1);
        assert!(
            results[0].passed(),
            "violations: {:?}",
            results[0].violations
        );
        assert_eq!(results[0].stats.expired, 12);
        assert_eq!(results[0].replay_equivalent, None);
    }

    #[test]
    fn journal_bypass_plan_verifies_replay_equivalence() {
        let mut o = opts("bypass");
        o.plans = vec!["journal-bypass".to_string()];
        let results = run_chaos(&o).unwrap();
        assert!(
            results[0].passed(),
            "violations: {:?}",
            results[0].violations
        );
        assert_eq!(results[0].replay_equivalent, Some(true));
        assert_eq!(results[0].stats.journal_bypassed, 1);
    }

    #[test]
    fn unknown_plans_and_presets_are_rejected() {
        let mut o = opts("bad");
        o.plans = vec!["not-a-plan".to_string()];
        assert!(run_chaos(&o).unwrap_err().contains("unknown chaos plan"));
        let mut o = opts("bad_env");
        o.env = "not-a-preset".to_string();
        o.plans = vec!["deadline-storm".to_string()];
        assert!(run_chaos(&o).is_err());
    }
}
