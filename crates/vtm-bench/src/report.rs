//! Result reporting shared by every experiment: aligned stdout tables, CSV
//! and JSON files under `results/`.
//!
//! The fig/ablation binaries used to copy-paste this boilerplate; they now go
//! through [`Report`], which owns a [`ResultsTable`] plus free-text notes and
//! writes both a CSV (`results/<name>.csv`) and a JSON document
//! (`results/<name>.json`) per experiment.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple column-oriented results table that can be printed and saved as
/// CSV or JSON.
#[derive(Debug, Clone, Default)]
pub struct ResultsTable {
    headers: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl ResultsTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row<I: IntoIterator<Item = f64>>(&mut self, row: I) {
        let row: Vec<f64> = row.into_iter().collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row length must match header count"
        );
        self.rows.push(row);
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned text block.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(", "));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:>12.4}")).collect();
            out.push_str(&cells.join(", "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// Directory where experiment CSVs/JSONs are written (`results/` beside the
/// workspace manifest, falling back to the current directory).
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| Path::new(&d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let dir = base.join("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serialises an `f64` as a JSON token (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One experiment's report: a results table, a human title and free-text
/// notes, emitted as stdout + CSV + JSON.
#[derive(Debug, Clone)]
pub struct Report {
    /// File stem used under `results/` (e.g. `fig2a_convergence`).
    pub name: String,
    /// Human-readable title printed above the table.
    pub title: String,
    /// The results table.
    pub table: ResultsTable,
    /// Free-text notes (expected shapes, summary statistics).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with the given table headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(
        name: impl Into<String>,
        title: impl Into<String>,
        headers: I,
    ) -> Self {
        Self {
            name: name.into(),
            title: title.into(),
            table: ResultsTable::new(headers),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row<I: IntoIterator<Item = f64>>(&mut self, row: I) {
        self.table.push_row(row);
    }

    /// Appends a free-text note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self
            .table
            .headers()
            .iter()
            .map(|h| format!("\"{}\"", json_escape(h)))
            .collect();
        let rows: Vec<String> = self
            .table
            .rows()
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|&v| json_number(v)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect();
        format!(
            "{{\n  \"name\": \"{}\",\n  \"title\": \"{}\",\n  \"headers\": [{}],\n  \"rows\": [{}],\n  \"notes\": [{}]\n}}\n",
            json_escape(&self.name),
            json_escape(&self.title),
            headers.join(","),
            rows.join(","),
            notes.join(",")
        )
    }

    /// Prints the title, table and notes to stdout.
    pub fn print(&self) {
        println!("{}\n", self.title);
        println!("{}", self.table.to_text());
        for note in &self.notes {
            println!("{note}");
        }
    }

    /// Writes `<dir>/<name>.csv` and `<dir>/<name>.json`, returning their
    /// paths.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered.
    pub fn save(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        fs::create_dir_all(dir)?;
        let csv = dir.join(format!("{}.csv", self.name));
        let json = dir.join(format!("{}.json", self.name));
        fs::write(&csv, self.table.to_csv())?;
        fs::write(&json, self.to_json())?;
        Ok((csv, json))
    }

    /// Prints the report and saves it under [`results_dir`], warning on
    /// stderr (without aborting) when the files cannot be written.
    pub fn emit(&self) {
        self.print();
        match self.save(&results_dir()) {
            Ok((csv, json)) => println!("(saved to {} and {})", csv.display(), json.display()),
            Err(err) => eprintln!("warning: could not save report {}: {err}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut t = ResultsTable::new(["a", "b"]);
        assert!(t.is_empty());
        t.push_row([1.0, 2.0]);
        t.push_row([3.5, -4.25]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.headers(), ["a", "b"]);
        assert_eq!(t.rows().len(), 2);
        let text = t.to_text();
        assert!(text.starts_with("a, b"));
        let csv = t.to_csv();
        assert!(csv.contains("3.5,-4.25"));
    }

    #[test]
    #[should_panic(expected = "row length must match")]
    fn mismatched_row_panics() {
        let mut t = ResultsTable::new(["a", "b"]);
        t.push_row([1.0]);
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn report_round_trips_to_json_and_disk() {
        let mut report = Report::new("test_report", "A \"test\" report", ["x", "y"]);
        report.push_row([1.0, 2.0]);
        report.note("shape: rises");
        let json = report.to_json();
        assert!(json.contains("\"name\": \"test_report\""));
        assert!(json.contains("\\\"test\\\""));
        assert!(json.contains("[1,2]"));
        assert!(json.contains("shape: rises"));
        let dir = std::env::temp_dir().join("vtm_report_test");
        let (csv, json_path) = report.save(&dir).expect("save succeeds");
        assert!(csv.exists() && json_path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_dir_exists() {
        let dir = results_dir();
        assert!(dir.exists());
    }
}
