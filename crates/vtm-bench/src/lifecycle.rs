//! The `experiments train` subcommand: train a policy on any registry
//! preset and persist it as a versioned checkpoint — the *train → checkpoint*
//! half of the policy lifecycle (`serve-bench` is the *load → serve* half).

use std::path::{Path, PathBuf};

use vtm_core::registry::{EnvBuildOptions, EnvRegistry};
use vtm_rl::env::Environment;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_rl::trainer::Trainer;

/// Options of one `experiments train` run.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Registry preset to train on.
    pub env: String,
    /// Training episodes.
    pub episodes: usize,
    /// Explicit environment replicas per collection round. `None` (the
    /// default) means: 4 for a fresh run, and *the checkpoint's recorded
    /// collector count* when resuming — the `(seed, round, replica)`
    /// schedule depends on it, so inheriting it keeps a resumed run
    /// bit-identical to an uninterrupted one.
    pub collectors: Option<usize>,
    /// Collector worker threads (`0` = one per core).
    pub threads: usize,
    /// Where the final checkpoint is written.
    pub checkpoint: PathBuf,
    /// Explicit base seed of the run. `None` (the default) means: 7 for a
    /// fresh run, and *the checkpoint's own recorded seed* when resuming —
    /// so a resume without `--seed` continues the interrupted seed schedule
    /// exactly instead of silently diverging.
    pub seed: Option<u64>,
    /// Optional checkpoint to resume from.
    pub resume: Option<PathBuf>,
}

/// Fresh-run fallback seed when none is given.
const DEFAULT_SEED: u64 = 7;

/// Fresh-run fallback collector count when none is given.
const DEFAULT_COLLECTORS: usize = 4;

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            env: "static".to_string(),
            episodes: 24,
            collectors: None,
            threads: 0,
            checkpoint: PathBuf::from("results/policy.vtm"),
            seed: None,
            resume: None,
        }
    }
}

/// Summary of one training-to-checkpoint run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSummary {
    /// Episodes trained in this run.
    pub episodes: usize,
    /// Mean return over the last 8 episodes.
    pub tail_mean_return: f64,
    /// Global round counter recorded in the checkpoint.
    pub trained_rounds: u64,
    /// Where the checkpoint was written.
    pub checkpoint: PathBuf,
}

/// Trains a PPO policy on the named preset and writes the final
/// [`PolicySnapshot`] to `opts.checkpoint`. With `opts.resume`, the agent
/// state and round counter are restored first, so the run continues the
/// interrupted seed schedule exactly.
///
/// # Errors
///
/// Returns a human-readable message for unknown presets, unreadable resume
/// checkpoints and write failures.
pub fn train_to_checkpoint(opts: &TrainOptions) -> Result<TrainSummary, String> {
    let registry = EnvRegistry::builtin();
    let build = EnvBuildOptions {
        seed: opts.seed.unwrap_or(DEFAULT_SEED),
        ..EnvBuildOptions::default()
    };
    let env = registry
        .build(&opts.env, &build)
        .ok_or_else(|| format!("unknown environment preset `{}`", opts.env))?;
    let (mut agent, start_round, run_seed, collectors) = match &opts.resume {
        Some(path) => {
            let snapshot = PolicySnapshot::load_from(path)
                .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?;
            // Geometry must match the chosen preset, or training would feed
            // wrong-width observations (or wrong action bounds) to the
            // restored policy.
            if snapshot.config.obs_dim != env.observation_dim() {
                return Err(format!(
                    "checkpoint {} was trained for obs_dim {}, but preset `{}` has obs_dim {}",
                    path.display(),
                    snapshot.config.obs_dim,
                    opts.env,
                    env.observation_dim()
                ));
            }
            if snapshot.action_space != env.action_space() {
                return Err(format!(
                    "checkpoint {} was trained for a different action space than preset `{}`",
                    path.display(),
                    opts.env
                ));
            }
            // Without an explicit --seed, continue the checkpoint's own seed
            // schedule so the resumed run is bit-identical to an
            // uninterrupted one.
            let run_seed = opts.seed.unwrap_or(snapshot.config.seed);
            let collectors = opts
                .collectors
                .unwrap_or(match snapshot.trained_collectors {
                    0 => DEFAULT_COLLECTORS,
                    k => k as usize,
                });
            (
                PpoAgent::restore(&snapshot),
                snapshot.trained_rounds,
                run_seed,
                collectors,
            )
        }
        None => {
            let seed = opts.seed.unwrap_or(DEFAULT_SEED);
            let ppo = PpoConfig::new(env.observation_dim(), 1).with_seed(seed);
            (
                PpoAgent::new(ppo, env.action_space()),
                0,
                seed,
                opts.collectors.unwrap_or(DEFAULT_COLLECTORS),
            )
        }
    };
    let max_steps = env.rounds_per_episode();
    let report = Trainer::for_env(env)
        .episodes(opts.episodes)
        .collectors(collectors)
        .threads(opts.threads)
        .max_steps(max_steps)
        .seed(run_seed)
        .start_round(start_round)
        .run(&mut agent)
        .map_err(|e| format!("training failed: {e}"))?;
    if let Some(parent) = opts
        .checkpoint
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    agent
        .snapshot()
        .with_trained_rounds(report.next_round())
        .with_trained_collectors(collectors as u64)
        .save_to(&opts.checkpoint)
        .map_err(|e| format!("cannot write {}: {e}", opts.checkpoint.display()))?;
    let tail = report
        .episode_returns
        .iter()
        .rev()
        .take(8)
        .copied()
        .collect::<Vec<_>>();
    Ok(TrainSummary {
        episodes: report.episode_returns.len(),
        tail_mean_return: crate::mean(&tail),
        trained_rounds: report.next_round(),
        checkpoint: opts.checkpoint.clone(),
    })
}

/// Loads a checkpoint and returns a one-line human description (used by the
/// CLI after training and by smoke tests).
///
/// # Errors
///
/// Returns a human-readable message when the checkpoint is unreadable.
pub fn describe_checkpoint(path: &Path) -> Result<String, String> {
    let snapshot =
        PolicySnapshot::load_from(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(format!(
        "{}: obs_dim {}, action_dim {}, hidden {:?}, {} trained rounds, normalizer: {}",
        path.display(),
        snapshot.config.obs_dim,
        snapshot.config.action_dim,
        snapshot.config.hidden,
        snapshot.trained_rounds,
        if snapshot.obs_normalizer.is_some() {
            "yes"
        } else {
            "no"
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_checkpoint(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vtm_lifecycle_{tag}_{}.vtm", std::process::id()))
    }

    #[test]
    fn train_writes_a_loadable_checkpoint() {
        let checkpoint = temp_checkpoint("train");
        let opts = TrainOptions {
            episodes: 2,
            collectors: Some(2),
            threads: 1,
            checkpoint: checkpoint.clone(),
            ..TrainOptions::default()
        };
        let summary = train_to_checkpoint(&opts).unwrap();
        assert_eq!(summary.episodes, 2);
        assert_eq!(summary.trained_rounds, 1);
        let description = describe_checkpoint(&checkpoint).unwrap();
        assert!(description.contains("trained rounds"));
        let snapshot = PolicySnapshot::load_from(&checkpoint).unwrap();
        assert_eq!(snapshot.trained_rounds, 1);
        std::fs::remove_file(&checkpoint).unwrap();
    }

    #[test]
    fn resume_continues_the_round_counter() {
        let first = temp_checkpoint("resume_a");
        let second = temp_checkpoint("resume_b");
        let opts = TrainOptions {
            episodes: 2,
            collectors: Some(1),
            threads: 1,
            checkpoint: first.clone(),
            ..TrainOptions::default()
        };
        train_to_checkpoint(&opts).unwrap();
        let resumed = TrainOptions {
            episodes: 3,
            checkpoint: second.clone(),
            resume: Some(first.clone()),
            ..opts
        };
        let summary = train_to_checkpoint(&resumed).unwrap();
        assert_eq!(summary.trained_rounds, 5);
        std::fs::remove_file(&first).unwrap();
        std::fs::remove_file(&second).unwrap();
    }

    #[test]
    fn resume_without_seed_matches_an_uninterrupted_run_bit_exactly() {
        let whole_ckpt = temp_checkpoint("seed_whole");
        let part_ckpt = temp_checkpoint("seed_part");
        let final_ckpt = temp_checkpoint("seed_final");
        let base = TrainOptions {
            collectors: Some(2),
            threads: 1,
            seed: Some(123),
            ..TrainOptions::default()
        };
        // Uninterrupted: 4 episodes at seed 123.
        train_to_checkpoint(&TrainOptions {
            episodes: 4,
            checkpoint: whole_ckpt.clone(),
            ..base.clone()
        })
        .unwrap();
        // Split: 2 episodes at seed 123, then resume WITHOUT repeating the
        // seed — it must be inherited from the checkpoint.
        train_to_checkpoint(&TrainOptions {
            episodes: 2,
            checkpoint: part_ckpt.clone(),
            ..base.clone()
        })
        .unwrap();
        // Neither --seed nor --collectors repeated: both must be inherited
        // from the checkpoint.
        train_to_checkpoint(&TrainOptions {
            episodes: 2,
            seed: None,
            collectors: None,
            checkpoint: final_ckpt.clone(),
            resume: Some(part_ckpt.clone()),
            ..base
        })
        .unwrap();
        let whole = PolicySnapshot::load_from(&whole_ckpt).unwrap();
        let resumed = PolicySnapshot::load_from(&final_ckpt).unwrap();
        assert_eq!(whole, resumed, "resume without --seed diverged");
        for p in [whole_ckpt, part_ckpt, final_ckpt] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn resume_rejects_a_checkpoint_for_a_different_geometry() {
        // A highway checkpoint (obs_dim 24) cannot resume on the static
        // preset (obs_dim 12): typed error, not a mid-training panic.
        let checkpoint = temp_checkpoint("geometry");
        let highway = TrainOptions {
            env: "highway".to_string(),
            episodes: 1,
            collectors: Some(1),
            threads: 1,
            checkpoint: checkpoint.clone(),
            ..TrainOptions::default()
        };
        train_to_checkpoint(&highway).unwrap();
        let mismatched = TrainOptions {
            env: "static".to_string(),
            resume: Some(checkpoint.clone()),
            ..highway
        };
        let err = train_to_checkpoint(&mismatched).unwrap_err();
        assert!(err.contains("obs_dim"), "unexpected error: {err}");
        std::fs::remove_file(&checkpoint).unwrap();
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let opts = TrainOptions {
            env: "nope".to_string(),
            ..TrainOptions::default()
        };
        assert!(train_to_checkpoint(&opts).is_err());
        assert!(describe_checkpoint(Path::new("/nonexistent/x.vtm")).is_err());
    }
}
