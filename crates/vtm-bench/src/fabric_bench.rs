//! The fabric load generator behind `experiments fabric-bench`.
//!
//! Measures what sharding buys on top of one gateway: the same two load
//! shapes as the gateway bench (closed-loop capacity, open-loop offered
//! load), but driven through a [`Fabric`] — N independent gateway shards
//! per policy arm, with deterministic session-hash routing. The headline
//! number is `scaled_qps / baseline_qps`: the N-shard closed loop against
//! a 1-shard fabric at otherwise identical settings (the multi-core
//! acceptance in `tests/fabric_speedup.rs` pins it at ≥ 1.7× for 2
//! shards on ≥ 4 cores).
//!
//! Every run reports the full [`FabricSnapshot`] — per-arm quote counts,
//! client-observed latency percentiles, revenue-proxy sums and every
//! per-shard gateway telemetry — and the whole result is written to
//! `results/BENCH_fabric.json`. Per-arm counters are recorded at ticket
//! resolution, so only closed-loop runs (whose clients wait) populate
//! them; open-loop runs still carry full per-shard gateway telemetry.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use vtm_core::registry::{EnvBuildOptions, EnvRegistry, RequestFrame};
use vtm_fabric::{ArmSpec, Fabric, FabricConfig, FabricError, FabricSnapshot};
use vtm_gateway::{GatewayConfig, GatewayError};
use vtm_serve::{QuoteRequest, ServiceConfig, SharedPolicy};

use crate::results_dir;
use crate::serve_bench::resolve_snapshot;
use crate::timing::{available_cores, percentile};

/// Options of one fabric-bench run.
#[derive(Debug, Clone)]
pub struct FabricBenchOptions {
    /// Registry preset the policy prices (decides the feature geometry and
    /// the request-stream dynamics).
    pub env: String,
    /// Optional checkpoint to load; when absent a policy is trained on the
    /// spot for `train_episodes` episodes.
    pub checkpoint: Option<PathBuf>,
    /// Episodes for the fallback on-the-spot training.
    pub train_episodes: usize,
    /// Wall-clock seconds per timed run.
    pub duration_s: f64,
    /// Distinct VMU sessions in the replayed stream.
    pub sessions: usize,
    /// Environment rounds generated per session (the stream cycles).
    pub stream_rounds: usize,
    /// Gateway shards per arm in the scaled runs (`0` = one per core).
    pub shards: usize,
    /// The policy arms and their session split (the same snapshot serves
    /// every arm — the bench measures routing and sharding, not policies).
    pub arms: Vec<ArmSpec>,
    /// Closed-loop ingress worker threads (`0` = one per core).
    pub ingress: usize,
    /// Executor threads *per shard gateway* (parallelism comes from the
    /// shards; 1 keeps each shard at the deterministic baseline shape).
    pub executors: usize,
    /// Scheduler flush threshold per shard.
    pub max_batch: usize,
    /// Scheduler flush deadline in microseconds.
    pub max_delay_us: u64,
    /// Admission bound (in-flight requests) per shard.
    pub queue_capacity: usize,
    /// Open-loop offered loads, as multiples of the scaled closed-loop
    /// throughput (empty = skip the open-loop sweep).
    pub open_loop_factors: Vec<f64>,
}

impl Default for FabricBenchOptions {
    fn default() -> Self {
        Self {
            env: "static".to_string(),
            checkpoint: None,
            train_episodes: 2,
            duration_s: 2.0,
            sessions: 64,
            stream_rounds: 32,
            shards: 0,
            arms: vec![ArmSpec::new("a", 90), ArmSpec::new("b", 10)],
            ingress: 0,
            executors: 1,
            max_batch: 32,
            max_delay_us: 1000,
            queue_capacity: 4096,
            open_loop_factors: vec![0.5, 1.0, 2.0],
        }
    }
}

/// One timed run (one fabric lifetime) inside a fabric-bench.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRunResult {
    /// Human label (`baseline-1shard`, `scaled-2shards`, `open-x2.0`, …).
    pub label: String,
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Gateway shards per arm in this run.
    pub shards: usize,
    /// Ingress worker threads driving load.
    pub ingress: usize,
    /// Offered load (requests/s); `None` for closed loops.
    pub offered_qps: Option<f64>,
    /// Completed quotes per second over the run.
    pub achieved_qps: f64,
    /// Client-side exact p50 latency in µs (closed loops only).
    pub client_p50_us: Option<f64>,
    /// Client-side exact p99 latency in µs (closed loops only).
    pub client_p99_us: Option<f64>,
    /// The fabric's final snapshot: per-arm counters/percentiles plus
    /// every per-shard gateway telemetry.
    pub fabric: FabricSnapshot,
}

/// The measured outcome of one fabric-bench invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricBenchResult {
    /// Preset name the stream came from.
    pub env: String,
    /// Distinct sessions in the stream.
    pub sessions: usize,
    /// Seconds per timed run.
    pub duration_s: f64,
    /// Gateway shards per arm in the scaled runs.
    pub shards: usize,
    /// The arm split, as `name=percent` tokens.
    pub arms: Vec<ArmSpec>,
    /// Closed-loop throughput of the 1-shard fabric.
    pub baseline_qps: f64,
    /// Closed-loop throughput of the `shards`-shard fabric.
    pub scaled_qps: f64,
    /// `scaled_qps / baseline_qps` — what sharding buys.
    pub speedup: f64,
    /// Every timed run, in execution order.
    pub runs: Vec<FabricRunResult>,
}

impl FabricBenchResult {
    /// Renders the result as the `results/BENCH_fabric.json` document.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.1}"));
        let arms: Vec<String> = self
            .arms
            .iter()
            .map(|a| format!("\"{}={}\"", a.name, a.percent))
            .collect();
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|run| {
                format!(
                    "    {{\"label\": \"{}\", \"mode\": \"{}\", \"shards\": {}, \
                     \"ingress\": {}, \"offered_qps\": {}, \"achieved_qps\": {:.1}, \
                     \"client_p50_us\": {}, \"client_p99_us\": {}, \
                     \"fabric\": {}}}",
                    run.label,
                    run.mode,
                    run.shards,
                    run.ingress,
                    opt(run.offered_qps),
                    run.achieved_qps,
                    opt(run.client_p50_us),
                    opt(run.client_p99_us),
                    run.fabric.to_json(),
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"fabric\",\n  \"env\": \"{env}\",\n  \"shapes\": {{\n    \
             \"sessions\": {sessions},\n    \"shards\": {shards},\n    \
             \"arms\": [{arms}],\n    \"duration_s\": {dur}\n  }},\n  \
             \"baseline_qps\": {base:.1},\n  \"scaled_qps\": {scaled:.1},\n  \
             \"speedup\": {speedup:.3},\n  \"runs\": [\n{runs}\n  ]\n}}\n",
            env = self.env,
            sessions = self.sessions,
            shards = self.shards,
            arms = arms.join(", "),
            dur = self.duration_s,
            base = self.baseline_qps,
            scaled = self.scaled_qps,
            speedup = self.speedup,
            runs = runs.join(",\n"),
        )
    }

    /// Writes `results/BENCH_fabric.json` and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error when the file cannot be written.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = results_dir().join("BENCH_fabric.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Outcome of one closed-loop run against a fabric.
struct ClosedLoopOutcome {
    achieved_qps: f64,
    client_p50_us: f64,
    client_p99_us: f64,
    fabric: FabricSnapshot,
}

/// Closed loop: `ingress` threads each own a session slice of the stream
/// and submit-and-wait against the fabric until the deadline.
fn closed_loop(
    policy: &SharedPolicy,
    config: FabricConfig,
    ingress: usize,
    stream: &[Vec<RequestFrame>],
    duration: Duration,
) -> Result<ClosedLoopOutcome, String> {
    let fabric = Fabric::start_shared(policy, config).map_err(|e| e.to_string())?;
    let ingress = ingress.min(stream.first().map_or(1, Vec::len)).max(1);
    let start = Instant::now();
    let deadline = start + duration;
    let outcomes: Vec<Result<Vec<f64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ingress)
            .map(|t| {
                let fabric = &fabric;
                scope.spawn(move || {
                    let mut latencies_us = Vec::new();
                    'run: for round in 0.. {
                        if Instant::now() >= deadline {
                            break 'run;
                        }
                        let frames: &Vec<RequestFrame> = &stream[round % stream.len()];
                        // Per-session order stays FIFO: each ingress thread
                        // owns its session slice, and the fabric routes a
                        // session to exactly one shard.
                        for frame in frames.iter().skip(t).step_by(ingress) {
                            if Instant::now() >= deadline {
                                break 'run;
                            }
                            let request = QuoteRequest::new(frame.session, frame.features.clone());
                            let sent = Instant::now();
                            match fabric.quote(request) {
                                Ok(_) => latencies_us.push(sent.elapsed().as_secs_f64() * 1e6),
                                Err(FabricError::Gateway(GatewayError::Overloaded { .. })) => {
                                    std::thread::yield_now();
                                }
                                Err(err) => return Err(err.to_string()),
                            }
                        }
                    }
                    Ok(latencies_us)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingress worker panicked"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let mut latencies_us = Vec::new();
    for outcome in outcomes {
        latencies_us.extend(outcome?);
    }
    let snapshot = fabric.shutdown();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let (client_p50_us, client_p99_us) = if latencies_us.is_empty() {
        (0.0, 0.0)
    } else {
        (
            percentile(&latencies_us, 0.50),
            percentile(&latencies_us, 0.99),
        )
    };
    Ok(ClosedLoopOutcome {
        achieved_qps: latencies_us.len() as f64 / elapsed,
        client_p50_us,
        client_p99_us,
        fabric: snapshot,
    })
}

/// Open loop: offer requests at `rate_qps` without waiting for quotes
/// (tickets are dropped; per-shard completions still land in gateway
/// telemetry). Overload is absorbed per shard by admission control.
fn open_loop(
    policy: &SharedPolicy,
    config: FabricConfig,
    rate_qps: f64,
    stream: &[Vec<RequestFrame>],
    duration: Duration,
) -> Result<(f64, FabricSnapshot), String> {
    let fabric = Fabric::start_shared(policy, config).map_err(|e| e.to_string())?;
    let start = Instant::now();
    let mut frames = stream.iter().flatten().cycle();
    let mut offered = 0u64;
    loop {
        let elapsed = start.elapsed();
        if elapsed >= duration {
            break;
        }
        let target = (elapsed.as_secs_f64() * rate_qps) as u64;
        while offered < target {
            let frame = frames.next().expect("stream is non-empty");
            match fabric.submit(QuoteRequest::new(frame.session, frame.features.clone())) {
                Ok(_) | Err(FabricError::Gateway(GatewayError::Overloaded { .. })) => offered += 1,
                Err(err) => return Err(err.to_string()),
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    // Count only the offered window (the shutdown drain finishes the tail
    // after it; see the gateway bench for the rationale).
    let in_window: u64 = fabric
        .telemetry()
        .gateways
        .iter()
        .map(|g| g.telemetry.completed)
        .sum();
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let snapshot = fabric.shutdown();
    Ok((in_window as f64 / elapsed, snapshot))
}

/// Runs the benchmark: resolve the policy once (the shared snapshot serves
/// every shard of every arm), generate the request stream, time the
/// 1-shard baseline, the `shards`-shard scaled closed loop, then the
/// open-loop offered-load sweep.
///
/// # Errors
///
/// Returns a human-readable message for unknown presets, unreadable
/// checkpoints, invalid arm splits or internal fabric errors.
pub fn run_fabric_bench(opts: &FabricBenchOptions) -> Result<FabricBenchResult, String> {
    let build = EnvBuildOptions::default();
    let registry = EnvRegistry::builtin();
    let features = registry
        .get(&opts.env)
        .ok_or_else(|| format!("unknown environment preset `{}`", opts.env))?
        .features_per_round();
    let snapshot = resolve_snapshot(
        &opts.env,
        opts.checkpoint.as_deref(),
        opts.train_episodes,
        &build,
    )?;
    let policy = SharedPolicy::from_snapshot(&snapshot)
        .map_err(|e| format!("cannot build shared policy: {e}"))?;
    let sessions = opts.sessions.max(1);
    let stream = registry
        .request_stream(&opts.env, &build, sessions, opts.stream_rounds.max(1))
        .ok_or_else(|| format!("unknown environment preset `{}`", opts.env))?;

    let shards = if opts.shards == 0 {
        available_cores()
    } else {
        opts.shards
    };
    let ingress = if opts.ingress == 0 {
        available_cores()
    } else {
        opts.ingress
    };
    let gateway = GatewayConfig::default()
        .with_max_batch(opts.max_batch)
        .with_max_delay(Duration::from_micros(opts.max_delay_us))
        .with_queue_capacity(opts.queue_capacity)
        .with_executors(opts.executors.max(1));
    let service = ServiceConfig::new(build.history_length, features);
    let config = |shards: usize| {
        FabricConfig::new(shards, service)
            .with_arms(opts.arms.clone())
            .with_gateway(gateway.clone())
    };
    let duration = Duration::from_secs_f64(opts.duration_s.max(0.01));

    let mut runs = Vec::new();

    // 1-shard closed-loop baseline (the speedup anchor).
    let baseline = closed_loop(&policy, config(1), ingress, &stream, duration)?;
    let baseline_qps = baseline.achieved_qps;
    runs.push(FabricRunResult {
        label: "baseline-1shard".to_string(),
        mode: "closed",
        shards: 1,
        ingress,
        offered_qps: None,
        achieved_qps: baseline_qps,
        client_p50_us: Some(baseline.client_p50_us),
        client_p99_us: Some(baseline.client_p99_us),
        fabric: baseline.fabric,
    });

    // Scaled closed loop at the configured shard count.
    let scaled = closed_loop(&policy, config(shards), ingress, &stream, duration)?;
    let scaled_qps = scaled.achieved_qps;
    runs.push(FabricRunResult {
        label: format!("scaled-{shards}shards"),
        mode: "closed",
        shards,
        ingress,
        offered_qps: None,
        achieved_qps: scaled_qps,
        client_p50_us: Some(scaled.client_p50_us),
        client_p99_us: Some(scaled.client_p99_us),
        fabric: scaled.fabric,
    });

    // Open-loop sweep: offered load as multiples of the measured capacity.
    for &factor in &opts.open_loop_factors {
        let rate = (scaled_qps * factor).max(1.0);
        let (achieved, fabric) = open_loop(&policy, config(shards), rate, &stream, duration)?;
        runs.push(FabricRunResult {
            label: format!("open-x{factor:.2}"),
            mode: "open",
            shards,
            ingress: 1,
            offered_qps: Some(rate),
            achieved_qps: achieved,
            client_p50_us: None,
            client_p99_us: None,
            fabric,
        });
    }

    Ok(FabricBenchResult {
        env: opts.env.clone(),
        sessions,
        duration_s: opts.duration_s,
        shards,
        arms: opts.arms.clone(),
        baseline_qps,
        scaled_qps,
        speedup: scaled_qps / baseline_qps.max(1e-9),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts() -> FabricBenchOptions {
        FabricBenchOptions {
            duration_s: 0.05,
            sessions: 16,
            stream_rounds: 4,
            shards: 2,
            ingress: 2,
            max_batch: 8,
            max_delay_us: 200,
            open_loop_factors: vec![1.0],
            ..FabricBenchOptions::default()
        }
    }

    #[test]
    fn fabric_bench_runs_and_reports_consistent_numbers() {
        let result = run_fabric_bench(&smoke_opts()).unwrap();
        assert_eq!(result.shards, 2);
        assert!(result.baseline_qps > 0.0);
        assert!(result.scaled_qps > 0.0);
        assert!(result.speedup > 0.0);
        // baseline + scaled + one open
        assert_eq!(result.runs.len(), 3);
        for run in &result.runs {
            // Gateway-side books balance across every shard of every arm.
            for gateway in &run.fabric.gateways {
                let t = &gateway.telemetry;
                assert_eq!(t.submitted, t.completed + t.failed, "books must balance");
                assert_eq!(t.failed, 0);
                assert_eq!(t.queue_depth, 0, "shutdown must drain");
            }
            assert_eq!(run.fabric.arms.len(), 2);
            if run.mode == "closed" {
                // Closed-loop clients wait, so arm counters are populated
                // and agree with the per-shard completions.
                let arm_quotes: u64 = run.fabric.arms.iter().map(|a| a.quotes).sum();
                let completed: u64 = run
                    .fabric
                    .gateways
                    .iter()
                    .map(|g| g.telemetry.completed)
                    .sum();
                assert_eq!(arm_quotes, completed);
                let majority = &run.fabric.arms[0];
                assert!(majority.revenue > 0.0, "revenue proxy must accumulate");
                assert!(majority.latency_p99_us >= majority.latency_p50_us);
            }
        }
        let scaled = &result.runs[1];
        assert_eq!(scaled.fabric.gateways.len(), 4, "2 shards × 2 arms");
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"fabric\""));
        assert!(json.contains("\"arms\": [\"a=90\", \"b=10\"]"));
        assert!(json.contains("\"baseline_qps\""));
        assert!(json.contains("\"open-x1.00\""));
        assert!(json.contains("\"revenue\""));
        assert!(json.contains("\"generation\""));
    }

    #[test]
    fn unknown_presets_and_bad_splits_are_rejected() {
        let opts = FabricBenchOptions {
            env: "not-a-preset".to_string(),
            ..smoke_opts()
        };
        assert!(run_fabric_bench(&opts).is_err());
        let opts = FabricBenchOptions {
            arms: vec![ArmSpec::new("a", 30)],
            ..smoke_opts()
        };
        assert!(run_fabric_bench(&opts).is_err());
    }
}
