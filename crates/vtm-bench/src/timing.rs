//! Shared wall-clock measurement helpers: medians, percentiles and core
//! detection, used by the serve/gateway load generators and the `--ignored`
//! multi-core acceptance tests (previously copy-pasted per benchmark).

/// Logical cores available to this process (1 when detection fails) — the
/// gate every multi-core acceptance test keys its ≥ 4-core requirement on.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Sorts the samples in place and returns the median (the upper middle for
/// even counts, matching the previous per-bench helpers).
///
/// # Panics
///
/// Panics if `samples` is empty or contains a non-finite value.
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample set");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Nearest-rank percentile (`q` in `[0, 1]`) of an already-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_sorts_and_picks_upper_middle() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 3.0);
        assert_eq!(median(&mut [5.0]), 5.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 0.5), 5.0);
        assert_eq!(percentile(&sorted, 0.95), 10.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
    }

    #[test]
    fn cores_detects_at_least_one() {
        assert!(available_cores() >= 1);
    }
}
