//! Shared wall-clock measurement helpers: medians, percentiles and core
//! detection, used by the serve/gateway load generators and the `--ignored`
//! multi-core acceptance tests.
//!
//! The sample math itself now lives in `vtm-obs` (the single home of the
//! workspace's percentile/bucket helpers); this module re-exports it under
//! the historical bench names and keeps the process-local core detection.

/// Sorts the samples in place and returns the median (upper middle for even
/// counts) — re-exported from `vtm-obs`, the shared home of sample math.
pub use vtm_obs::median;
/// Nearest-rank percentile of an already-sorted slice — re-exported from
/// `vtm-obs` (named `percentile_sorted` there).
pub use vtm_obs::percentile_sorted as percentile;

/// Logical cores available to this process (1 when detection fails) — the
/// gate every multi-core acceptance test keys its ≥ 4-core requirement on.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-exports preserve the historical bench semantics (upper-middle
    /// median, nearest-rank percentile) — pinned here so a vtm-obs change
    /// cannot silently shift benchmark reporting.
    #[test]
    fn median_sorts_and_picks_upper_middle() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 3.0);
        assert_eq!(median(&mut [5.0]), 5.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 0.5), 5.0);
        assert_eq!(percentile(&sorted, 0.95), 10.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
    }

    #[test]
    fn cores_detects_at_least_one() {
        assert!(available_cores() >= 1);
    }
}
