//! The gateway load generator behind `experiments gateway-bench`.
//!
//! Measures the end-to-end quote throughput and latency of a
//! [`Gateway`] (micro-batching scheduler + executor pool over a shared
//! frozen [`PricingService`]) under two canonical load shapes:
//!
//! * **closed loop** — `N` ingress worker threads each submit one request
//!   and block for its quote before sending the next, replaying a
//!   realistic per-environment request stream
//!   ([`EnvRegistry::request_stream`]); throughput is self-clocked by
//!   service latency, so this measures capacity without overload;
//! * **open loop** — requests are *offered* at a fixed rate regardless of
//!   completions (the fleet does not wait for the MSP); rates beyond
//!   capacity exercise admission control, and the reject count shows the
//!   backpressure doing its job.
//!
//! Every run reports the gateway's own telemetry (p50/p95/p99 latency,
//! batch-size distribution, rejects), and the whole result is written to
//! `results/BENCH_gateway.json`. The ≥ 2x multi-core acceptance
//! (`tests/gateway_speedup.rs`) compares the scaled closed loop against a
//! 1-ingress/1-executor baseline.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vtm_core::registry::{EnvBuildOptions, EnvRegistry, RequestFrame};
use vtm_gateway::{Gateway, GatewayConfig, GatewayError, TelemetrySnapshot};
use vtm_serve::{Precision, PricingService, QuoteRequest, ServiceConfig};

use crate::results_dir;
use crate::serve_bench::{resolve_snapshot, BenchPrecision};
use crate::timing::{available_cores, percentile};

/// Options of one gateway-bench run.
#[derive(Debug, Clone)]
pub struct GatewayBenchOptions {
    /// Registry preset the policy prices (decides the feature geometry and
    /// the request-stream dynamics).
    pub env: String,
    /// Optional checkpoint to load; when absent a policy is trained on the
    /// spot for `train_episodes` episodes.
    pub checkpoint: Option<PathBuf>,
    /// Episodes for the fallback on-the-spot training.
    pub train_episodes: usize,
    /// Wall-clock seconds per timed run.
    pub duration_s: f64,
    /// Distinct VMU sessions in the replayed stream.
    pub sessions: usize,
    /// Environment rounds generated per session (the stream cycles).
    pub stream_rounds: usize,
    /// Closed-loop ingress worker threads (`0` = one per core).
    pub ingress: usize,
    /// Gateway executor threads (`0` = one per core).
    pub executors: usize,
    /// Scheduler flush threshold.
    pub max_batch: usize,
    /// Scheduler flush deadline in microseconds.
    pub max_delay_us: u64,
    /// Admission bound (in-flight requests).
    pub queue_capacity: usize,
    /// Open-loop offered loads, as multiples of the scaled closed-loop
    /// throughput (empty = skip the open-loop sweep).
    pub open_loop_factors: Vec<f64>,
    /// Precision modes to measure: with
    /// [`BenchPrecision::WithF32`] a second scaled closed loop runs over
    /// an f32 service, so `BENCH_gateway.json` records gateway capacity in
    /// both numeric modes.
    pub precision: BenchPrecision,
}

impl Default for GatewayBenchOptions {
    fn default() -> Self {
        Self {
            env: "static".to_string(),
            checkpoint: None,
            train_episodes: 2,
            duration_s: 2.0,
            sessions: 64,
            stream_rounds: 32,
            ingress: 0,
            executors: 0,
            max_batch: 32,
            max_delay_us: 1000,
            queue_capacity: 4096,
            open_loop_factors: vec![0.5, 1.0, 2.0],
            precision: BenchPrecision::default(),
        }
    }
}

/// One timed run (one gateway lifetime) inside a gateway-bench.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayRunResult {
    /// Human label (`baseline-closed`, `scaled-closed`, `open-x2.0`, …).
    pub label: String,
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Ingress worker threads driving load.
    pub ingress: usize,
    /// Gateway executor threads.
    pub executors: usize,
    /// Offered load (requests/s); `None` for closed loops.
    pub offered_qps: Option<f64>,
    /// Completed quotes per second over the run.
    pub achieved_qps: f64,
    /// Client-side exact p50 latency in µs (closed loops only — open-loop
    /// clients do not wait, so only the gateway histogram applies).
    pub client_p50_us: Option<f64>,
    /// Client-side exact p99 latency in µs (closed loops only).
    pub client_p99_us: Option<f64>,
    /// The gateway's final telemetry (latency percentiles, batch sizes,
    /// rejects, queue depth).
    pub telemetry: TelemetrySnapshot,
}

/// The measured outcome of one gateway-bench invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayBenchResult {
    /// Preset name the stream came from.
    pub env: String,
    /// Distinct sessions in the stream.
    pub sessions: usize,
    /// Feature-block width per round.
    pub features_per_round: usize,
    /// Observation history length.
    pub history_length: usize,
    /// Seconds per timed run.
    pub duration_s: f64,
    /// Scheduler flush threshold.
    pub max_batch: usize,
    /// Scheduler flush deadline (µs).
    pub max_delay_us: u64,
    /// Closed-loop throughput of the 1-ingress/1-executor baseline.
    pub baseline_qps: f64,
    /// Closed-loop throughput at the configured ingress/executor counts.
    pub scaled_qps: f64,
    /// `scaled_qps / baseline_qps` — the concurrency speedup.
    pub speedup: f64,
    /// Scaled closed-loop throughput over the quantized f32 service (when
    /// measured).
    pub f32_scaled_qps: Option<f64>,
    /// `f32_scaled_qps / scaled_qps` — what quantization buys the gateway
    /// on top of concurrency (when measured).
    pub f32_speedup: Option<f64>,
    /// Every timed run, in execution order.
    pub runs: Vec<GatewayRunResult>,
}

impl GatewayBenchResult {
    /// Renders the result as the `results/BENCH_gateway.json` document.
    pub fn to_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|run| {
                let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.1}"));
                format!(
                    "    {{\"label\": \"{}\", \"mode\": \"{}\", \"ingress\": {}, \
                     \"executors\": {}, \"offered_qps\": {}, \"achieved_qps\": {:.1}, \
                     \"client_p50_us\": {}, \"client_p99_us\": {}, \
                     \"telemetry\": {}}}",
                    run.label,
                    run.mode,
                    run.ingress,
                    run.executors,
                    opt(run.offered_qps),
                    run.achieved_qps,
                    opt(run.client_p50_us),
                    opt(run.client_p99_us),
                    run.telemetry.to_json(),
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"gateway\",\n  \"env\": \"{env}\",\n  \"shapes\": {{\n    \
             \"sessions\": {sessions},\n    \"history_length\": {hist},\n    \
             \"features_per_round\": {feat},\n    \"max_batch\": {max_batch},\n    \
             \"max_delay_us\": {delay},\n    \"duration_s\": {dur}\n  }},\n  \
             \"baseline_qps\": {base:.1},\n  \"scaled_qps\": {scaled:.1},\n  \
             \"speedup\": {speedup:.3},{f32}\n  \"runs\": [\n{runs}\n  ]\n}}\n",
            env = self.env,
            sessions = self.sessions,
            hist = self.history_length,
            feat = self.features_per_round,
            max_batch = self.max_batch,
            delay = self.max_delay_us,
            dur = self.duration_s,
            base = self.baseline_qps,
            scaled = self.scaled_qps,
            speedup = self.speedup,
            f32 = match (self.f32_scaled_qps, self.f32_speedup) {
                (Some(qps), Some(speedup)) => format!(
                    "\n  \"f32_scaled_qps\": {qps:.1},\n  \"f32_speedup_vs_f64\": {speedup:.3},"
                ),
                _ => String::new(),
            },
            runs = runs.join(",\n"),
        )
    }

    /// Writes `results/BENCH_gateway.json` and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error when the file cannot be written.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = results_dir().join("BENCH_gateway.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Outcome of one closed-loop run: throughput plus the clients' own
/// exactly-measured latency percentiles (microseconds), which cross-check
/// the gateway's bucketed histogram.
struct ClosedLoopOutcome {
    achieved_qps: f64,
    client_p50_us: f64,
    client_p99_us: f64,
    telemetry: TelemetrySnapshot,
}

/// Closed loop: `ingress` threads each own a session slice of the stream
/// and submit-and-wait until the deadline.
fn closed_loop(
    service: &Arc<PricingService>,
    config: GatewayConfig,
    ingress: usize,
    stream: &[Vec<RequestFrame>],
    duration: Duration,
) -> Result<ClosedLoopOutcome, String> {
    let gateway = Arc::new(Gateway::start(Arc::clone(service), config));
    // Never spawn more workers than there are sessions to slice between
    // them: a worker with an empty slice would find no frame to price (and
    // its deadline check lives in the per-frame loop).
    let ingress = ingress.min(stream.first().map_or(1, Vec::len)).max(1);
    let start = Instant::now();
    let deadline = start + duration;
    let outcomes: Vec<Result<Vec<f64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ingress)
            .map(|t| {
                let gateway = Arc::clone(&gateway);
                scope.spawn(move || {
                    let mut latencies_us = Vec::new();
                    'run: for round in 0.. {
                        if Instant::now() >= deadline {
                            break 'run;
                        }
                        let frames: &Vec<RequestFrame> = &stream[round % stream.len()];
                        // Each ingress thread prices its own session slice,
                        // so per-session request order stays FIFO.
                        for frame in frames.iter().skip(t).step_by(ingress) {
                            if Instant::now() >= deadline {
                                break 'run;
                            }
                            let request = QuoteRequest::new(frame.session, frame.features.clone());
                            let sent = Instant::now();
                            match gateway.quote(request) {
                                Ok(_) => latencies_us.push(sent.elapsed().as_secs_f64() * 1e6),
                                Err(GatewayError::Overloaded { .. }) => {
                                    std::thread::yield_now();
                                }
                                Err(err) => return Err(err.to_string()),
                            }
                        }
                    }
                    Ok(latencies_us)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingress worker panicked"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let mut latencies_us = Vec::new();
    for outcome in outcomes {
        latencies_us.extend(outcome?);
    }
    let telemetry = Arc::into_inner(gateway)
        .expect("ingress workers have exited")
        .shutdown();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let (client_p50_us, client_p99_us) = if latencies_us.is_empty() {
        (0.0, 0.0)
    } else {
        (
            percentile(&latencies_us, 0.50),
            percentile(&latencies_us, 0.99),
        )
    };
    Ok(ClosedLoopOutcome {
        achieved_qps: latencies_us.len() as f64 / elapsed,
        client_p50_us,
        client_p99_us,
        telemetry,
    })
}

/// Open loop: offer requests at `rate_qps` without waiting for quotes;
/// overload is absorbed by admission control (rejects), never by queues
/// growing without bound.
fn open_loop(
    service: &Arc<PricingService>,
    config: GatewayConfig,
    rate_qps: f64,
    stream: &[Vec<RequestFrame>],
    duration: Duration,
) -> Result<(f64, TelemetrySnapshot), String> {
    let gateway = Gateway::start(Arc::clone(service), config);
    let start = Instant::now();
    let mut frames = stream.iter().flatten().cycle();
    let mut offered = 0u64;
    loop {
        let elapsed = start.elapsed();
        if elapsed >= duration {
            break;
        }
        // Pace submissions against the wall clock instead of sleeping a
        // fixed interval per request (robust at rates far beyond 1/sleep).
        let target = (elapsed.as_secs_f64() * rate_qps) as u64;
        while offered < target {
            let frame = frames.next().expect("stream is non-empty");
            match gateway.submit(QuoteRequest::new(frame.session, frame.features.clone())) {
                // The ticket is dropped: open-loop clients do not wait.
                // Completion still lands in telemetry.
                Ok(_) | Err(GatewayError::Overloaded { .. }) => offered += 1,
                Err(err) => return Err(err.to_string()),
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    // Measure throughput over the offered window only: the shutdown drain
    // below finishes the in-flight tail *after* the window, and counting
    // it against the pre-drain elapsed time would inflate achieved_qps at
    // overload (up to queue_capacity extra completions).
    let in_window = gateway.telemetry().completed;
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let telemetry = gateway.shutdown(); // drains all admitted requests
    Ok((in_window as f64 / elapsed, telemetry))
}

/// Runs the benchmark: resolve the policy, generate the request stream,
/// time the 1/1 baseline, the scaled closed loop, then the open-loop
/// offered-load sweep.
///
/// # Errors
///
/// Returns a human-readable message for unknown presets, unreadable
/// checkpoints or internal gateway errors.
pub fn run_gateway_bench(opts: &GatewayBenchOptions) -> Result<GatewayBenchResult, String> {
    let build = EnvBuildOptions::default();
    let registry = EnvRegistry::builtin();
    let features = registry
        .get(&opts.env)
        .ok_or_else(|| format!("unknown environment preset `{}`", opts.env))?
        .features_per_round();
    let snapshot = resolve_snapshot(
        &opts.env,
        opts.checkpoint.as_deref(),
        opts.train_episodes,
        &build,
    )?;
    let sessions = opts.sessions.max(1);
    let stream = registry
        .request_stream(&opts.env, &build, sessions, opts.stream_rounds.max(1))
        .ok_or_else(|| format!("unknown environment preset `{}`", opts.env))?;

    // One frozen service shared by every run: executor parallelism comes
    // from the gateway pool, so the inner forward pass stays single-thread.
    let service = Arc::new(
        PricingService::from_snapshot(
            &snapshot,
            ServiceConfig::new(build.history_length, features),
        )
        .map_err(|e| format!("cannot build service: {e}"))?,
    );
    let ingress = if opts.ingress == 0 {
        available_cores()
    } else {
        opts.ingress
    };
    let executors = if opts.executors == 0 {
        available_cores()
    } else {
        opts.executors
    };
    let gateway_config = GatewayConfig::default()
        .with_max_batch(opts.max_batch)
        .with_max_delay(Duration::from_micros(opts.max_delay_us))
        .with_queue_capacity(opts.queue_capacity);
    let duration = Duration::from_secs_f64(opts.duration_s.max(0.01));

    let mut runs = Vec::new();

    // 1-ingress/1-executor closed-loop baseline (the acceptance anchor).
    let baseline = closed_loop(
        &service,
        gateway_config.clone().with_executors(1),
        1,
        &stream,
        duration,
    )?;
    let baseline_qps = baseline.achieved_qps;
    runs.push(GatewayRunResult {
        label: "baseline-closed".to_string(),
        mode: "closed",
        ingress: 1,
        executors: 1,
        offered_qps: None,
        achieved_qps: baseline_qps,
        client_p50_us: Some(baseline.client_p50_us),
        client_p99_us: Some(baseline.client_p99_us),
        telemetry: baseline.telemetry,
    });

    // Scaled closed loop at the configured concurrency.
    let scaled = closed_loop(
        &service,
        gateway_config.clone().with_executors(executors),
        ingress,
        &stream,
        duration,
    )?;
    let scaled_qps = scaled.achieved_qps;
    runs.push(GatewayRunResult {
        label: "scaled-closed".to_string(),
        mode: "closed",
        ingress,
        executors,
        offered_qps: None,
        achieved_qps: scaled_qps,
        client_p50_us: Some(scaled.client_p50_us),
        client_p99_us: Some(scaled.client_p99_us),
        telemetry: scaled.telemetry,
    });

    // Quantized mode: the same scaled closed loop over an f32 service, so
    // the report shows what precision buys at the same concurrency (the
    // per-run telemetry carries the precision label).
    let mut f32_scaled_qps = None;
    if opts.precision == BenchPrecision::WithF32 {
        let f32_service = Arc::new(
            PricingService::from_snapshot(
                &snapshot,
                ServiceConfig::new(build.history_length, features).with_precision(Precision::F32),
            )
            .map_err(|e| format!("cannot build f32 service: {e}"))?,
        );
        let f32_scaled = closed_loop(
            &f32_service,
            gateway_config.clone().with_executors(executors),
            ingress,
            &stream,
            duration,
        )?;
        f32_scaled_qps = Some(f32_scaled.achieved_qps);
        runs.push(GatewayRunResult {
            label: "scaled-closed-f32".to_string(),
            mode: "closed",
            ingress,
            executors,
            offered_qps: None,
            achieved_qps: f32_scaled.achieved_qps,
            client_p50_us: Some(f32_scaled.client_p50_us),
            client_p99_us: Some(f32_scaled.client_p99_us),
            telemetry: f32_scaled.telemetry,
        });
    }

    // Open-loop sweep: offered load as multiples of the measured capacity.
    for &factor in &opts.open_loop_factors {
        let rate = (scaled_qps * factor).max(1.0);
        let (achieved, telemetry) = open_loop(
            &service,
            gateway_config.clone().with_executors(executors),
            rate,
            &stream,
            duration,
        )?;
        runs.push(GatewayRunResult {
            label: format!("open-x{factor:.2}"),
            mode: "open",
            ingress: 1,
            executors,
            offered_qps: Some(rate),
            achieved_qps: achieved,
            client_p50_us: None,
            client_p99_us: None,
            telemetry,
        });
    }

    Ok(GatewayBenchResult {
        env: opts.env.clone(),
        sessions,
        features_per_round: features,
        history_length: build.history_length,
        duration_s: opts.duration_s,
        max_batch: opts.max_batch,
        max_delay_us: opts.max_delay_us,
        baseline_qps,
        scaled_qps,
        speedup: scaled_qps / baseline_qps.max(1e-9),
        f32_scaled_qps,
        f32_speedup: f32_scaled_qps.map(|qps| qps / scaled_qps.max(1e-9)),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts() -> GatewayBenchOptions {
        GatewayBenchOptions {
            duration_s: 0.05,
            sessions: 8,
            stream_rounds: 4,
            ingress: 2,
            executors: 1,
            max_batch: 8,
            max_delay_us: 200,
            open_loop_factors: vec![1.0],
            ..GatewayBenchOptions::default()
        }
    }

    #[test]
    fn gateway_bench_runs_and_reports_consistent_numbers() {
        let result = run_gateway_bench(&smoke_opts()).unwrap();
        assert_eq!(result.sessions, 8);
        assert!(result.baseline_qps > 0.0);
        assert!(result.scaled_qps > 0.0);
        assert!(result.speedup > 0.0);
        // baseline + scaled + scaled-f32 + one open
        assert_eq!(result.runs.len(), 4);
        assert!(result.f32_scaled_qps.unwrap() > 0.0);
        assert!(result.f32_speedup.unwrap() > 0.0);
        let f32_run = result
            .runs
            .iter()
            .find(|r| r.label == "scaled-closed-f32")
            .unwrap();
        assert_eq!(f32_run.telemetry.precision, "f32");
        for run in &result.runs {
            let t = &run.telemetry;
            assert_eq!(t.submitted, t.completed + t.failed, "books must balance");
            assert_eq!(t.failed, 0);
            assert_eq!(t.queue_depth, 0, "shutdown must drain");
            if t.completed > 0 {
                assert!(t.latency_p99_us >= t.latency_p50_us);
                assert!(t.batches > 0);
            }
        }
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"gateway\""));
        assert!(json.contains("\"baseline_qps\""));
        assert!(json.contains("\"open-x1.00\""));
        assert!(json.contains("\"f32_scaled_qps\""));
        assert!(json.contains("\"scaled-closed-f32\""));
        assert!(json.contains("\"client_p50_us\""));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"batch_size_buckets\""));
    }

    #[test]
    fn unknown_presets_are_rejected() {
        let opts = GatewayBenchOptions {
            env: "not-a-preset".to_string(),
            ..smoke_opts()
        };
        assert!(run_gateway_bench(&opts).is_err());
    }
}
