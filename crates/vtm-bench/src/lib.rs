//! # vtm-bench — experiment harness
//!
//! Shared utilities for the experiment binaries that regenerate every figure
//! of the paper's evaluation (§V) and for the criterion benchmarks. Each
//! binary prints the figure's series as an aligned table and writes a CSV
//! next to the repository root (under `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

use vtm_core::config::{DrlConfig, ExperimentConfig};
use vtm_core::env::RewardMode;
use vtm_core::mechanism::{IncentiveMechanism, TrainingHistory};
use vtm_rl::buffer::ProcessedSample;
use vtm_rl::env::{ActionSpace, Environment, Step};
use vtm_rl::ppo::{PpoAgent, PpoConfig};

/// A simple column-oriented results table that can be printed and saved as CSV.
#[derive(Debug, Clone, Default)]
pub struct ResultsTable {
    headers: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl ResultsTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row<I: IntoIterator<Item = f64>>(&mut self, row: I) {
        let row: Vec<f64> = row.into_iter().collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row length must match header count"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned text block.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(", "));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:>12.4}")).collect();
            out.push_str(&cells.join(", "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and writes it to `results/<name>.csv`.
    ///
    /// Failures to write the CSV are reported on stderr but do not abort the
    /// experiment (printing the series is the primary output).
    pub fn print_and_save(&self, name: &str) {
        println!("{}", self.to_text());
        let path = results_dir().join(format!("{name}.csv"));
        if let Err(err) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: could not write {}: {err}", path.display());
        } else {
            println!("(saved to {})", path.display());
        }
    }
}

/// Directory where experiment CSVs are written (`results/` beside the
/// workspace manifest, falling back to the current directory).
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| Path::new(&d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let dir = base.join("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Whether the binary was invoked with `--full` (paper-scale training).
pub fn full_scale_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The DRL configuration used by the experiment binaries: the paper's
/// settings when `full` is true, otherwise a faster configuration with the
/// same structure (fewer episodes, larger learning rate) so that every figure
/// can be regenerated in minutes on a laptop.
pub fn harness_drl_config(full: bool, seed: u64) -> DrlConfig {
    if full {
        DrlConfig {
            seed,
            ..DrlConfig::default()
        }
    } else {
        DrlConfig {
            episodes: 80,
            rounds_per_episode: 50,
            learning_rate: 3e-4,
            seed,
            ..DrlConfig::default()
        }
    }
}

/// Trains the learning-based mechanism on `config` and returns it together
/// with its training history.
pub fn train_mechanism(
    config: ExperimentConfig,
    reward: RewardMode,
) -> (IncentiveMechanism, TrainingHistory) {
    let mut mechanism = IncentiveMechanism::with_reward_mode(config, reward);
    let history = mechanism.train();
    (mechanism, history)
}

/// The 12-dimensional fixed-horizon environment shared by the DRL rollout
/// benchmarks (`benches/drl.rs`) and the rollout acceptance test
/// (`tests/rollout_speedup.rs`): `K`-round episodes like the paper's pricing
/// game, reward peaking at action 25 inside the `[5, 50]` price box.
#[derive(Debug, Clone)]
pub struct FixedHorizonEnv {
    t: usize,
    horizon: usize,
}

impl FixedHorizonEnv {
    /// Creates an environment whose episodes last exactly `horizon` steps.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        Self { t: 0, horizon }
    }
}

impl Environment for FixedHorizonEnv {
    fn observation_dim(&self) -> usize {
        12
    }
    fn action_space(&self) -> ActionSpace {
        ActionSpace::scalar(5.0, 50.0)
    }
    fn reset(&mut self) -> Vec<f64> {
        self.t = 0;
        vec![0.1; 12]
    }
    fn step(&mut self, action: &[f64]) -> Step {
        self.t += 1;
        let mut observation = vec![0.1; 12];
        observation[0] = self.t as f64 / self.horizon as f64;
        Step {
            observation,
            reward: -(action[0] - 25.0).powi(2) / 100.0,
            done: self.t >= self.horizon,
        }
    }
}

/// The PPO agent configuration used by the rollout benchmarks: 12-dim
/// observations, scalar price action, fixed seed 7.
pub fn rollout_bench_agent() -> PpoAgent {
    PpoAgent::new(
        PpoConfig::new(12, 1).with_seed(7),
        ActionSpace::scalar(5.0, 50.0),
    )
}

/// The PPO agent at the paper's training shapes — 7-dim observation, scalar
/// price action, two hidden layers of 64 units, mini-batch `|I| = 20`,
/// `M = 10` update epochs — shared by the update-path benchmarks, the
/// fused/reference equivalence test and the `bench_json` emitter.
pub fn update_bench_agent(seed: u64) -> PpoAgent {
    PpoAgent::new(
        PpoConfig::new(7, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
}

/// Deterministic synthetic PPO samples at the paper's shapes for exercising
/// the update path without running an environment. Advantages and
/// log-probability offsets are spread wide enough that both the clipped and
/// unclipped surrogate branches are taken.
pub fn update_bench_samples(agent: &PpoAgent, n: usize, seed: u64) -> Vec<ProcessedSample> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let obs_dim = agent.config().obs_dim;
    let action_dim = agent.config().action_dim;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let observation: Vec<f64> = (0..obs_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let action: Vec<f64> = (0..action_dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            ProcessedSample {
                old_log_prob: rng.gen_range(-3.0..0.0),
                advantage: rng.gen_range(-2.0..2.0),
                value_target: rng.gen_range(-1.0..1.0),
                observation,
                action,
            }
        })
        .collect()
}

/// Mean of a slice (0 when empty), used by several binaries.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut t = ResultsTable::new(["a", "b"]);
        assert!(t.is_empty());
        t.push_row([1.0, 2.0]);
        t.push_row([3.5, -4.25]);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(text.starts_with("a, b"));
        let csv = t.to_csv();
        assert!(csv.contains("3.5,-4.25"));
    }

    #[test]
    #[should_panic(expected = "row length must match")]
    fn mismatched_row_panics() {
        let mut t = ResultsTable::new(["a", "b"]);
        t.push_row([1.0]);
    }

    #[test]
    fn harness_config_scales() {
        assert_eq!(harness_drl_config(true, 1).episodes, 500);
        assert!(harness_drl_config(false, 1).episodes < 500);
        assert_eq!(harness_drl_config(false, 7).seed, 7);
    }

    #[test]
    fn fixed_horizon_env_terminates_on_schedule() {
        let mut env = FixedHorizonEnv::new(3);
        assert_eq!(env.reset().len(), env.observation_dim());
        assert!(!env.step(&[25.0]).done);
        assert!(!env.step(&[25.0]).done);
        assert!(env.step(&[25.0]).done);
        let agent = rollout_bench_agent();
        assert_eq!(agent.config().obs_dim, 12);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn results_dir_exists() {
        let dir = results_dir();
        assert!(dir.exists());
    }
}
