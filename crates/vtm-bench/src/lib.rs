//! # vtm-bench — experiment harness
//!
//! Shared utilities for the experiment binaries that regenerate every figure
//! of the paper's evaluation (§V), the trace-driven scenario experiments and
//! the criterion benchmarks.
//!
//! The single manifest-driven [`experiments`] runner replaces the old
//! one-figure-per-binary layout: every experiment is an entry in
//! [`experiments::manifest`], selected by name on the command line (the
//! historical `fig*`/`ablation*` binary stems live on as aliases), and emits
//! its series as an aligned table plus CSV and JSON files under `results/`
//! via the [`report`] helpers. The runner also drives the policy lifecycle:
//! `experiments train` ([`lifecycle`]) produces versioned policy checkpoints
//! and `experiments serve-bench` ([`serve_bench`]) measures the batched
//! serving layer's quote throughput against the per-request baseline;
//! `experiments gateway-bench` ([`gateway_bench`]) drives the concurrent
//! online gateway (`vtm-gateway`) with closed- and open-loop load and
//! records latency percentiles, batch-size histograms and rejects;
//! `experiments fabric-bench` ([`fabric_bench`]) scales the same load
//! across a sharded A/B fabric (`vtm-fabric`) and reports per-shard and
//! per-arm percentiles plus the sharding speedup;
//! `experiments journal-demo` / `experiments replay` ([`journal_cli`])
//! record a journaled gateway run and reconstruct its exact service state
//! from the audit journal (optionally resuming from a snapshot);
//! `experiments chaos` ([`chaos`]) injects deterministic fault plans into a
//! live gateway and checks liveness plus post-recovery replay equivalence;
//! `experiments metrics-dump` / `experiments slo-check` ([`obs_cli`]) render
//! a traced gateway run's metrics registry (Prometheus text + JSON, with a
//! deterministic logical-clock stage decomposition) and gate fresh bench
//! reports against the committed baselines in `results/baselines/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod fabric_bench;
pub mod gateway_bench;
pub mod journal_cli;
pub mod lifecycle;
pub mod obs_cli;
pub mod report;
pub mod serve_bench;
pub mod timing;

pub use report::{results_dir, Report, ResultsTable};

use vtm_core::config::{DrlConfig, ExperimentConfig};
use vtm_core::env::RewardMode;
use vtm_core::mechanism::{IncentiveMechanism, TrainingHistory};
use vtm_rl::buffer::ProcessedSample;
use vtm_rl::env::{ActionSpace, Environment, Step};
use vtm_rl::ppo::{PpoAgent, PpoConfig};

/// The DRL configuration used by the experiment binaries: the paper's
/// settings when `full` is true, otherwise a faster configuration with the
/// same structure (fewer episodes, larger learning rate) so that every figure
/// can be regenerated in minutes on a laptop.
pub fn harness_drl_config(full: bool, seed: u64) -> DrlConfig {
    if full {
        DrlConfig {
            seed,
            ..DrlConfig::default()
        }
    } else {
        DrlConfig {
            episodes: 80,
            rounds_per_episode: 50,
            learning_rate: 3e-4,
            seed,
            ..DrlConfig::default()
        }
    }
}

/// Trains the learning-based mechanism on `config` and returns it together
/// with its training history.
pub fn train_mechanism(
    config: ExperimentConfig,
    reward: RewardMode,
) -> (IncentiveMechanism, TrainingHistory) {
    let mut mechanism = IncentiveMechanism::with_reward_mode(config, reward);
    let history = mechanism.train();
    (mechanism, history)
}

/// The 12-dimensional fixed-horizon environment shared by the DRL rollout
/// benchmarks (`benches/drl.rs`) and the rollout acceptance test
/// (`tests/rollout_speedup.rs`): `K`-round episodes like the paper's pricing
/// game, reward peaking at action 25 inside the `[5, 50]` price box.
#[derive(Debug, Clone)]
pub struct FixedHorizonEnv {
    t: usize,
    horizon: usize,
}

impl FixedHorizonEnv {
    /// Creates an environment whose episodes last exactly `horizon` steps.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        Self { t: 0, horizon }
    }
}

impl Environment for FixedHorizonEnv {
    fn observation_dim(&self) -> usize {
        12
    }
    fn action_space(&self) -> ActionSpace {
        ActionSpace::scalar(5.0, 50.0)
    }
    fn reset(&mut self) -> Vec<f64> {
        self.t = 0;
        vec![0.1; 12]
    }
    fn step(&mut self, action: &[f64]) -> Step {
        self.t += 1;
        let mut observation = vec![0.1; 12];
        observation[0] = self.t as f64 / self.horizon as f64;
        Step {
            observation,
            reward: -(action[0] - 25.0).powi(2) / 100.0,
            done: self.t >= self.horizon,
        }
    }
}

/// The PPO agent configuration used by the rollout benchmarks: 12-dim
/// observations, scalar price action, fixed seed 7.
pub fn rollout_bench_agent() -> PpoAgent {
    PpoAgent::new(
        PpoConfig::new(12, 1).with_seed(7),
        ActionSpace::scalar(5.0, 50.0),
    )
}

/// The PPO agent at the paper's training shapes — 7-dim observation, scalar
/// price action, two hidden layers of 64 units, mini-batch `|I| = 20`,
/// `M = 10` update epochs — shared by the update-path benchmarks, the
/// fused/reference equivalence test and the `bench_json` emitter.
pub fn update_bench_agent(seed: u64) -> PpoAgent {
    PpoAgent::new(
        PpoConfig::new(7, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
}

/// Deterministic synthetic PPO samples at the paper's shapes for exercising
/// the update path without running an environment. Advantages and
/// log-probability offsets are spread wide enough that both the clipped and
/// unclipped surrogate branches are taken.
pub fn update_bench_samples(agent: &PpoAgent, n: usize, seed: u64) -> Vec<ProcessedSample> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let obs_dim = agent.config().obs_dim;
    let action_dim = agent.config().action_dim;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let observation: Vec<f64> = (0..obs_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let action: Vec<f64> = (0..action_dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            ProcessedSample {
                old_log_prob: rng.gen_range(-3.0..0.0),
                advantage: rng.gen_range(-2.0..2.0),
                value_target: rng.gen_range(-1.0..1.0),
                observation,
                action,
            }
        })
        .collect()
}

/// Mean of a slice (0 when empty), used by several binaries.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_config_scales() {
        assert_eq!(harness_drl_config(true, 1).episodes, 500);
        assert!(harness_drl_config(false, 1).episodes < 500);
        assert_eq!(harness_drl_config(false, 7).seed, 7);
    }

    #[test]
    fn fixed_horizon_env_terminates_on_schedule() {
        let mut env = FixedHorizonEnv::new(3);
        assert_eq!(env.reset().len(), env.observation_dim());
        assert!(!env.step(&[25.0]).done);
        assert!(!env.step(&[25.0]).done);
        assert!(env.step(&[25.0]).done);
        let agent = rollout_bench_agent();
        assert_eq!(agent.config().obs_dim, 12);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
