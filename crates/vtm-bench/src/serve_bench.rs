//! The serving throughput benchmark behind `experiments serve-bench`.
//!
//! Measures the end-to-end quote throughput of a [`PricingService`] loaded
//! from a policy checkpoint, comparing the batched path (one
//! [`PricingService::quote_batch`] call per pricing round) against the
//! per-request baseline (one [`PricingService::quote_one`] call per session
//! per round) over identical request streams. Since both paths produce
//! bit-identical greedy quotes, the measured ratio is pure batching
//! speedup — the same lever the training-side rollout engine uses, now on
//! the serving side. Results are written to `results/BENCH_serve.json`.

use std::path::{Path, PathBuf};
use std::time::Instant;

use vtm_core::registry::{EnvBuildOptions, EnvRegistry};
use vtm_rl::env::Environment;
use vtm_rl::ppo::PpoAgent;
use vtm_rl::snapshot::PolicySnapshot;
use vtm_rl::trainer::Trainer;
use vtm_serve::{Precision, PricingService, QuoteRequest, ServiceConfig};

use crate::results_dir;
use crate::timing::{available_cores, median};

/// Which precision modes one serve-bench run measures.
///
/// The f64 reference path is always measured (it is the committed baseline
/// the quantized path is compared against); the question is whether the
/// f32 fast path rides along, agreement-checked and paired-timed against
/// it. See `docs/NUMERICS.md` for the contract behind the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BenchPrecision {
    /// Measure the f64 reference path only (the pre-f32 behaviour).
    F64Only,
    /// Measure f64 *and* the quantized f32 path: greedy decision agreement
    /// is asserted, the max absolute price divergence recorded, and both
    /// modes land in `BENCH_serve.json`. The default.
    #[default]
    WithF32,
}

impl BenchPrecision {
    /// Parses a `--precision` argument (`f64`, `f32` or `both`; measuring
    /// f32 always keeps the f64 baseline for the agreement check).
    pub fn parse(arg: &str) -> Result<Self, String> {
        match arg {
            "f64" => Ok(BenchPrecision::F64Only),
            "f32" | "both" => Ok(BenchPrecision::WithF32),
            other => Err(format!(
                "unknown precision `{other}` (expected f64, f32 or both)"
            )),
        }
    }
}

/// Options of one serve-bench run.
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Registry preset the policy prices (decides the feature geometry).
    pub env: String,
    /// Optional checkpoint to load; when absent a policy is trained on the
    /// spot for `train_episodes` episodes.
    pub checkpoint: Option<PathBuf>,
    /// Concurrent VMU sessions per round.
    pub sessions: usize,
    /// Pricing rounds per timed pass.
    pub rounds: usize,
    /// Timed passes; the reported numbers are the per-path medians.
    pub repeats: usize,
    /// Episodes for the fallback on-the-spot training.
    pub train_episodes: usize,
    /// Inference worker threads for the batched path (`0` = one per core).
    pub inference_threads: usize,
    /// Precision modes to measure.
    pub precision: BenchPrecision,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        Self {
            env: "static".to_string(),
            checkpoint: None,
            sessions: 64,
            rounds: 20,
            repeats: 5,
            train_episodes: 2,
            inference_threads: 0,
            precision: BenchPrecision::default(),
        }
    }
}

/// The measured outcome of one serve-bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchResult {
    /// Preset name the geometry came from.
    pub env: String,
    /// Sessions per round.
    pub sessions: usize,
    /// Rounds per pass.
    pub rounds: usize,
    /// Feature-block width per round.
    pub features_per_round: usize,
    /// Observation history length.
    pub history_length: usize,
    /// Inference threads the batched path resolved to.
    pub inference_threads: usize,
    /// Median seconds per pass, batched path.
    pub batched_s: f64,
    /// Median seconds per pass, per-request path.
    pub per_request_s: f64,
    /// Batched throughput (quotes per second).
    pub batched_qps: f64,
    /// Per-request throughput (quotes per second).
    pub per_request_qps: f64,
    /// `batched_qps / per_request_qps`.
    pub speedup: f64,
    /// Median seconds per pass, batched f32 path (when measured).
    pub f32_batched_s: Option<f64>,
    /// Batched f32 throughput in quotes per second (when measured).
    pub f32_batched_qps: Option<f64>,
    /// Batched f64 time over batched f32 time (when measured) — the
    /// quantization speedup the `serve_f32_speedup` acceptance test gates.
    pub f32_speedup: Option<f64>,
    /// Largest absolute price divergence between the f32 and f64 greedy
    /// quotes over the whole request stream (when measured).
    pub f32_max_price_err: Option<f64>,
    /// Whether every f32 greedy quote picked the same argmax action
    /// dimension as its f64 counterpart (when measured; `run_serve_bench`
    /// fails instead of reporting `false`).
    pub f32_argmax_agree: Option<bool>,
}

impl ServeBenchResult {
    /// Renders the result as the `results/BENCH_serve.json` document. The
    /// top-level `batched`/`per_request` numbers are always the f64
    /// reference path; when the f32 fast path was measured it appears as a
    /// `precision_f32` block alongside them, so the committed f64 baseline
    /// never moves when the quantized mode is toggled.
    pub fn to_json(&self) -> String {
        let f32_block = match (self.f32_batched_s, self.f32_batched_qps, self.f32_speedup) {
            (Some(s), Some(qps), Some(speedup)) => format!(
                ",\n  \"precision_f32\": {{\n    \"seconds_per_pass\": {s:.6},\n    \
                 \"quotes_per_s\": {qps:.1},\n    \"speedup_vs_f64\": {speedup:.3},\n    \
                 \"max_abs_price_err\": {err:.3e},\n    \"argmax_agree\": {agree}\n  }}",
                err = self.f32_max_price_err.unwrap_or(0.0),
                agree = self.f32_argmax_agree.unwrap_or(false),
            ),
            _ => String::new(),
        };
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"env\": \"{env}\",\n  \"shapes\": {{\n    \
             \"sessions\": {sessions},\n    \"rounds\": {rounds},\n    \
             \"history_length\": {hist},\n    \"features_per_round\": {feat},\n    \
             \"inference_threads\": {threads}\n  }},\n  \"precision\": \"f64\",\n  \
             \"batched\": {{\n    \"seconds_per_pass\": {bs:.6},\n    \
             \"quotes_per_s\": {bqps:.1}\n  }},\n  \"per_request\": {{\n    \
             \"seconds_per_pass\": {ps:.6},\n    \"quotes_per_s\": {pqps:.1}\n  }},\n  \
             \"speedup\": {speedup:.3}{f32_block}\n}}\n",
            env = self.env,
            sessions = self.sessions,
            rounds = self.rounds,
            hist = self.history_length,
            feat = self.features_per_round,
            threads = self.inference_threads,
            bs = self.batched_s,
            bqps = self.batched_qps,
            ps = self.per_request_s,
            pqps = self.per_request_qps,
            speedup = self.speedup,
        )
    }

    /// Writes `results/BENCH_serve.json` and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error when the file cannot be written.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = results_dir().join("BENCH_serve.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Deterministic synthetic feature block for `(round, session, width)` —
/// the request stream both timed paths replay.
fn feature_block(round: usize, session: usize, width: usize) -> Vec<f64> {
    (0..width)
        .map(|f| ((round * 131 + session * 31 + f * 7) % 97) as f64 / 97.0)
        .collect()
}

/// Builds the per-round request batches.
fn request_stream(opts: &ServeBenchOptions, width: usize) -> Vec<Vec<QuoteRequest>> {
    (0..opts.rounds)
        .map(|round| {
            (0..opts.sessions)
                .map(|s| QuoteRequest::new(s as u64, feature_block(round, s, width)))
                .collect()
        })
        .collect()
}

/// Resolves a serving policy snapshot: load the checkpoint when given,
/// otherwise train a small policy on the named preset right here (shared by
/// `serve-bench` and `gateway-bench`).
pub(crate) fn resolve_snapshot(
    env_name: &str,
    checkpoint: Option<&Path>,
    train_episodes: usize,
    build: &EnvBuildOptions,
) -> Result<PolicySnapshot, String> {
    if let Some(path) = checkpoint {
        return PolicySnapshot::load_from(path)
            .map_err(|e| format!("cannot load checkpoint {}: {e}", path.display()));
    }
    let registry = EnvRegistry::builtin();
    let env = registry
        .build(env_name, build)
        .ok_or_else(|| format!("unknown environment preset `{env_name}`"))?;
    let ppo = vtm_rl::ppo::PpoConfig::new(env.observation_dim(), 1).with_seed(7);
    let mut agent = PpoAgent::new(ppo, env.action_space());
    let report = Trainer::for_env(env)
        .episodes(train_episodes)
        .max_steps(build.rounds_per_episode)
        .run(&mut agent)
        .map_err(|e| format!("fallback training failed: {e}"))?;
    Ok(agent.snapshot().with_trained_rounds(report.next_round()))
}

/// Runs the benchmark: builds (or loads) the policy, replays the same
/// request stream through the batched and the per-request path, checks they
/// quote identically, and reports the throughput of each.
///
/// # Errors
///
/// Returns a human-readable message for unknown presets, unreadable
/// checkpoints or geometry mismatches.
pub fn run_serve_bench(opts: &ServeBenchOptions) -> Result<ServeBenchResult, String> {
    let build = EnvBuildOptions::default();
    let registry = EnvRegistry::builtin();
    let spec = registry
        .get(&opts.env)
        .ok_or_else(|| format!("unknown environment preset `{}`", opts.env))?;
    let features = spec.features_per_round();
    let snapshot = resolve_snapshot(
        &opts.env,
        opts.checkpoint.as_deref(),
        opts.train_episodes,
        &build,
    )?;
    let resolved_threads = match opts.inference_threads {
        0 => available_cores(),
        t => t,
    };
    // The batched service fans its forward pass out across cores; the
    // per-request baseline is inherently one row-vector pass per call.
    let service_config =
        ServiceConfig::new(build.history_length, features).with_inference_threads(resolved_threads);
    let make_service = || {
        PricingService::from_snapshot(&snapshot, service_config)
            .map_err(|e| format!("cannot build service: {e}"))
    };
    let make_f32_service = || {
        PricingService::from_snapshot(&snapshot, service_config.with_precision(Precision::F32))
            .map_err(|e| format!("cannot build f32 service: {e}"))
    };
    let with_f32 = opts.precision == BenchPrecision::WithF32;
    let stream = request_stream(opts, features);

    // Correctness first: both paths must quote identically.
    {
        let batched = make_service()?;
        let sequential = make_service()?;
        for batch in &stream {
            let a = batched.quote_batch(batch).map_err(|e| e.to_string())?;
            let b: Result<Vec<_>, _> = batch.iter().map(|r| sequential.quote_one(r)).collect();
            let b = b.map_err(|e| e.to_string())?;
            if a != b {
                return Err("batched and per-request quotes diverged".to_string());
            }
        }
    }

    // When the f32 mode rides along, pin its decision agreement against
    // the f64 reference over the same stream before timing anything.
    let mut f32_max_price_err = 0.0f64;
    if with_f32 {
        let reference = make_service()?;
        let quantized = make_f32_service()?;
        for batch in &stream {
            let wide = reference.quote_batch(batch).map_err(|e| e.to_string())?;
            let narrow = quantized.quote_batch(batch).map_err(|e| e.to_string())?;
            for (w, n) in wide.iter().zip(&narrow) {
                if argmax(&w.action) != argmax(&n.action) {
                    return Err(format!(
                        "f32 greedy decision diverged from f64 for session {}",
                        w.session
                    ));
                }
                f32_max_price_err = f32_max_price_err.max((w.price() - n.price()).abs());
            }
        }
    }

    // Interleaved paired timing (one pass of each per repeat), so CPU
    // frequency drift on shared machines hits both paths equally.
    let mut batched_times = Vec::with_capacity(opts.repeats);
    let mut per_request_times = Vec::with_capacity(opts.repeats);
    let mut f32_times = Vec::with_capacity(opts.repeats);
    for _ in 0..opts.repeats {
        let service = make_service()?;
        let t = Instant::now();
        for batch in &stream {
            service.quote_batch(batch).map_err(|e| e.to_string())?;
        }
        batched_times.push(t.elapsed().as_secs_f64());

        if with_f32 {
            let service = make_f32_service()?;
            let t = Instant::now();
            for batch in &stream {
                service.quote_batch(batch).map_err(|e| e.to_string())?;
            }
            f32_times.push(t.elapsed().as_secs_f64());
        }

        let service = make_service()?;
        let t = Instant::now();
        for batch in &stream {
            for request in batch {
                service.quote_one(request).map_err(|e| e.to_string())?;
            }
        }
        per_request_times.push(t.elapsed().as_secs_f64());
    }
    let batched_s = median(&mut batched_times).max(1e-12);
    let per_request_s = median(&mut per_request_times).max(1e-12);
    let quotes = (opts.sessions * opts.rounds) as f64;
    let f32_batched_s = with_f32.then(|| median(&mut f32_times).max(1e-12));
    Ok(ServeBenchResult {
        env: opts.env.clone(),
        sessions: opts.sessions,
        rounds: opts.rounds,
        features_per_round: features,
        history_length: build.history_length,
        inference_threads: resolved_threads,
        batched_s,
        per_request_s,
        batched_qps: quotes / batched_s,
        per_request_qps: quotes / per_request_s,
        speedup: per_request_s / batched_s,
        f32_batched_s,
        f32_batched_qps: f32_batched_s.map(|s| quotes / s),
        f32_speedup: f32_batched_s.map(|s| batched_s / s),
        f32_max_price_err: with_f32.then_some(f32_max_price_err),
        f32_argmax_agree: with_f32.then_some(true),
    })
}

/// Index of the largest action dimension — the greedy "which action wins"
/// witness the precision agreement check compares.
fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_runs_and_reports_consistent_numbers() {
        let opts = ServeBenchOptions {
            sessions: 8,
            rounds: 3,
            repeats: 1,
            ..ServeBenchOptions::default()
        };
        let result = run_serve_bench(&opts).unwrap();
        assert_eq!(result.sessions, 8);
        assert_eq!(result.rounds, 3);
        assert!(result.batched_qps > 0.0);
        assert!(result.per_request_qps > 0.0);
        assert!(result.speedup > 0.0);
        // The default measures both precision modes, agreement-checked.
        assert!(result.f32_batched_qps.unwrap() > 0.0);
        assert!(result.f32_speedup.unwrap() > 0.0);
        assert!(result.f32_max_price_err.unwrap() < 1e-2);
        assert_eq!(result.f32_argmax_agree, Some(true));
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"serve\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"precision_f32\""));
        assert!(json.contains("\"argmax_agree\": true"));
    }

    #[test]
    fn f64_only_mode_omits_the_f32_block() {
        let opts = ServeBenchOptions {
            sessions: 4,
            rounds: 2,
            repeats: 1,
            precision: BenchPrecision::F64Only,
            ..ServeBenchOptions::default()
        };
        let result = run_serve_bench(&opts).unwrap();
        assert_eq!(result.f32_batched_s, None);
        assert!(!result.to_json().contains("precision_f32"));
    }

    #[test]
    fn precision_arguments_parse() {
        assert_eq!(BenchPrecision::parse("f64"), Ok(BenchPrecision::F64Only));
        assert_eq!(BenchPrecision::parse("f32"), Ok(BenchPrecision::WithF32));
        assert_eq!(BenchPrecision::parse("both"), Ok(BenchPrecision::WithF32));
        assert!(BenchPrecision::parse("f16").is_err());
    }

    #[test]
    fn unknown_presets_are_rejected() {
        let opts = ServeBenchOptions {
            env: "not-a-preset".to_string(),
            ..ServeBenchOptions::default()
        };
        assert!(run_serve_bench(&opts).is_err());
    }
}
