//! The observability subcommands: `experiments metrics-dump` and
//! `experiments slo-check`.
//!
//! `metrics-dump` drives a small traced gateway run in **logical-clock
//! mode** — every tracer timestamp is a monotonically increasing integer
//! tick instead of wall time — so the per-stage latency decomposition it
//! prints is bit-reproducible across machines. The run submits requests
//! serially (submit, then wait), which pins the tick order per request and
//! makes the telescoping identity `admission + queue_wait + batch_form +
//! inference + resolve == total` checkable exactly. The resulting metrics
//! registry (gateway counters, stage histograms, service session stats) is
//! rendered in both the Prometheus text exposition format and JSON and
//! saved under `results/`.
//!
//! `slo-check` compares fresh `BENCH_gateway.json` / `BENCH_fabric.json`
//! reports against the committed baselines in `results/baselines/` with an
//! explicit noise band: throughput regressions beyond the band fail (exit
//! 1), latency regressions only warn (shared-runner latency is too noisy to
//! gate on — see `docs/OBSERVABILITY.md` for the baseline update
//! procedure).

use std::path::PathBuf;
use std::sync::Arc;

use vtm_obs::{DeltaWindow, JsonValue, MetricsRegistry, TraceRecord, TracerConfig};
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};

use vtm_gateway::{Gateway, GatewayConfig};

use crate::results_dir;

/// Options of one `experiments metrics-dump` run.
#[derive(Debug, Clone)]
pub struct MetricsDumpOptions {
    /// Distinct VMU sessions in the deterministic stream.
    pub sessions: usize,
    /// Rounds (one request per session per round).
    pub rounds: usize,
    /// Trace 1-in-N sampling (1 = every request).
    pub sample_every: u64,
    /// Policy seed for the throwaway snapshot.
    pub seed: u64,
    /// Write `metrics.prom` / `metrics.json` / `TRACE_gateway.json` under
    /// `results/`.
    pub save: bool,
}

impl Default for MetricsDumpOptions {
    fn default() -> Self {
        Self {
            sessions: 8,
            rounds: 8,
            sample_every: 1,
            seed: 11,
            save: true,
        }
    }
}

/// What one `metrics-dump` run produced.
#[derive(Debug, Clone)]
pub struct MetricsDumpResult {
    /// Requests submitted (and completed — the run is serial).
    pub completed: u64,
    /// Trace records captured in the ring.
    pub records: Vec<TraceRecord>,
    /// Whether every record satisfied the telescoping stage identity.
    pub identity_ok: bool,
    /// The deterministic per-stage decomposition report (logical ticks).
    pub stage_report: String,
    /// Prometheus text exposition of the final registry.
    pub text: String,
    /// JSON rendering of the final registry.
    pub json: String,
    /// Completions observed in the *second half* of the run, measured via a
    /// rotating [`DeltaWindow`] over the cumulative registry.
    pub window_completed: u64,
    /// Files written (empty with `save: false`).
    pub saved: Vec<PathBuf>,
}

const HISTORY: usize = 4;
const FEATURES: usize = 3;

/// Runs the deterministic traced gateway run and renders its metrics.
///
/// # Errors
///
/// Returns a human-readable message for gateway/service construction
/// failures, submission errors or report I/O failures.
pub fn run_metrics_dump(opts: &MetricsDumpOptions) -> Result<MetricsDumpResult, String> {
    let sessions = opts.sessions.max(1);
    let rounds = opts.rounds.max(1);
    let agent = PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(opts.seed),
        ActionSpace::scalar(5.0, 50.0),
    );
    let service = Arc::new(
        PricingService::from_snapshot(&agent.snapshot(), ServiceConfig::new(HISTORY, FEATURES))
            .map_err(|e| format!("cannot build service: {e}"))?,
    );
    let tracing = TracerConfig::default()
        .with_sample_every(opts.sample_every)
        .with_capacity((sessions * rounds).next_power_of_two())
        .with_logical_clock(true);
    let gateway = Gateway::start(
        Arc::clone(&service),
        GatewayConfig::default()
            .with_max_batch(4)
            .with_tracing(tracing),
    );

    // Serial submit → wait: each request's tracer ticks land in a fixed
    // global order, so the decomposition below is bit-reproducible.
    let mut window = DeltaWindow::new();
    let mut completed = 0u64;
    for round in 0..rounds {
        for s in 0..sessions {
            let features: Vec<f64> = (0..FEATURES)
                .map(|f| ((round * 31 + s * 7 + f) % 97) as f64 / 97.0)
                .collect();
            let ticket = gateway
                .submit(QuoteRequest::new(s as u64, features))
                .map_err(|e| format!("submit failed: {e}"))?;
            ticket.wait().map_err(|e| format!("wait failed: {e}"))?;
            completed += 1;
        }
        if round + 1 == rounds / 2 {
            // First rotation of the delta window: the second half of the
            // run will be reported as a windowed delta.
            let mut registry = MetricsRegistry::new();
            gateway.telemetry().register_metrics(&mut registry, &[]);
            window.rotate(registry);
        }
    }

    let records = gateway.trace_records();
    let snapshot = gateway.shutdown();
    let mut registry = MetricsRegistry::new();
    snapshot.register_metrics(&mut registry, &[]);
    service.stats().register_metrics(&mut registry, &[]);
    let delta = window.rotate(registry.clone());
    let window_completed = registry_counter(&delta, "vtm_gateway_completed_total");

    let (stage_report, identity_ok) = decompose(&records, completed);
    let text = registry.render_text();
    let json = registry.render_json();

    let mut saved = Vec::new();
    if opts.save {
        let dir = results_dir();
        let traces: Vec<String> = records.iter().map(TraceRecord::to_json).collect();
        let trace_json = format!(
            "{{\"traced\": {}, \"identity_ok\": {}, \"records\": [\n  {}\n]}}\n",
            records.len(),
            identity_ok,
            traces.join(",\n  ")
        );
        for (name, body) in [
            ("metrics.prom", &text),
            ("metrics.json", &json),
            ("TRACE_gateway.json", &trace_json),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, body).map_err(|e| format!("cannot write {name}: {e}"))?;
            saved.push(path);
        }
    }

    Ok(MetricsDumpResult {
        completed,
        records,
        identity_ok,
        stage_report,
        text,
        json,
        window_completed,
        saved,
    })
}

/// Sums a counter family's samples in a rendered registry.
fn registry_counter(registry: &MetricsRegistry, name: &str) -> u64 {
    registry
        .families()
        .iter()
        .filter(|f| f.name == name)
        .flat_map(|f| &f.samples)
        .map(|s| match &s.value {
            vtm_obs::MetricValue::Counter(v) => *v,
            _ => 0,
        })
        .sum()
}

/// Builds the per-stage decomposition report and checks the telescoping
/// identity on every record.
fn decompose(records: &[TraceRecord], completed: u64) -> (String, bool) {
    let mut sums = [0u64; 6];
    let mut identity_ok = true;
    for record in records {
        let stages = record.stages();
        let parts = [
            stages.admission_us,
            stages.queue_wait_us,
            stages.batch_form_us,
            stages.inference_us,
            stages.resolve_us,
            stages.total_us,
        ];
        for (sum, part) in sums.iter_mut().zip(parts) {
            *sum += part;
        }
        if stages.admission_us
            + stages.queue_wait_us
            + stages.batch_form_us
            + stages.inference_us
            + stages.resolve_us
            != stages.total_us
        {
            identity_ok = false;
        }
    }
    let n = records.len().max(1) as f64;
    let names = [
        "admission",
        "queue_wait",
        "batch_form",
        "inference",
        "resolve",
        "total",
    ];
    let mut report = format!(
        "stage decomposition ({} traced of {} completed, logical ticks):\n",
        records.len(),
        completed
    );
    for (name, sum) in names.iter().zip(sums) {
        report.push_str(&format!(
            "  {name:<11} sum={sum:<6} mean={:.2}\n",
            sum as f64 / n
        ));
    }
    report.push_str(&format!(
        "  identity admission+queue_wait+batch_form+inference+resolve == total: {}\n",
        if identity_ok { "HOLDS" } else { "VIOLATED" }
    ));
    (report, identity_ok)
}

/// Options of one `experiments slo-check` run.
#[derive(Debug, Clone)]
pub struct SloOptions {
    /// Directory holding the fresh `BENCH_*.json` reports.
    pub current_dir: PathBuf,
    /// Directory holding the committed baseline reports.
    pub baseline_dir: PathBuf,
    /// Benches to check (`gateway`, `fabric`); empty means both.
    pub benches: Vec<String>,
    /// Allowed fractional throughput drop before failing (0.30 = -30%).
    pub qps_band: f64,
    /// Allowed fractional p99-latency growth before *warning*.
    pub latency_band: f64,
    /// Absolute latency slack (µs) added to the warn threshold — sub-floor
    /// wobble on shared runners is never worth a warning.
    pub latency_floor_us: f64,
    /// Report failures but exit 0 (for noisy 1-core CI runners).
    pub warn_only: bool,
}

impl Default for SloOptions {
    fn default() -> Self {
        Self {
            current_dir: results_dir(),
            baseline_dir: results_dir().join("baselines"),
            benches: Vec::new(),
            qps_band: 0.30,
            latency_band: 0.50,
            latency_floor_us: 500.0,
            warn_only: false,
        }
    }
}

/// Severity of one SLO comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloStatus {
    /// Within the band.
    Ok,
    /// Out of band on a warn-only metric (latency).
    Warn,
    /// Out of band on an enforced metric (throughput).
    Fail,
}

/// One baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct SloFinding {
    /// Which bench the metric came from (`gateway` / `fabric`).
    pub bench: String,
    /// Metric name inside the bench report.
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Outcome of the comparison.
    pub status: SloStatus,
}

/// Every comparison of one `slo-check` run.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// All comparisons, in bench order.
    pub findings: Vec<SloFinding>,
}

impl SloReport {
    /// Whether no enforced metric regressed.
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.status != SloStatus::Fail)
    }
}

/// The qps metrics enforced per bench (path, both files must have them).
const QPS_METRICS: &[&str] = &["baseline_qps", "scaled_qps"];

/// Compares fresh bench reports against the committed baselines.
///
/// # Errors
///
/// Returns a human-readable message when a report or baseline file is
/// missing or unparseable — the caller maps that to exit code 2 (usage/io),
/// distinct from exit 1 (SLO regression).
pub fn run_slo_check(opts: &SloOptions) -> Result<SloReport, String> {
    let benches: Vec<String> = if opts.benches.is_empty() {
        vec!["gateway".to_string(), "fabric".to_string()]
    } else {
        opts.benches.clone()
    };
    let mut findings = Vec::new();
    for bench in &benches {
        if bench != "gateway" && bench != "fabric" {
            return Err(format!("unknown bench `{bench}` (expected gateway|fabric)"));
        }
        let file = format!("BENCH_{bench}.json");
        let current = load_json(&opts.current_dir.join(&file))?;
        let baseline = load_json(&opts.baseline_dir.join(&file))?;
        for metric in QPS_METRICS {
            let (base, cur) = match (number_at(&baseline, metric), number_at(&current, metric)) {
                (Some(b), Some(c)) => (b, c),
                _ => return Err(format!("{file}: metric `{metric}` missing")),
            };
            let ratio = if base > 0.0 { cur / base } else { 1.0 };
            let status = if cur < base * (1.0 - opts.qps_band) {
                SloStatus::Fail
            } else {
                SloStatus::Ok
            };
            findings.push(SloFinding {
                bench: bench.clone(),
                metric: (*metric).to_string(),
                baseline: base,
                current: cur,
                ratio,
                status,
            });
        }
        // f32 throughput is gateway-only and optional in older baselines.
        if let (Some(base), Some(cur)) = (
            number_at(&baseline, "f32_scaled_qps"),
            number_at(&current, "f32_scaled_qps"),
        ) {
            let status = if cur < base * (1.0 - opts.qps_band) {
                SloStatus::Fail
            } else {
                SloStatus::Ok
            };
            findings.push(SloFinding {
                bench: bench.clone(),
                metric: "f32_scaled_qps".to_string(),
                baseline: base,
                current: cur,
                ratio: if base > 0.0 { cur / base } else { 1.0 },
                status,
            });
        }
        // Client p99 of the first (baseline-closed) run: warn-only.
        if let (Some(base), Some(cur)) = (
            number_at(&baseline, "runs.0.client_p99_us"),
            number_at(&current, "runs.0.client_p99_us"),
        ) {
            let threshold = (base * (1.0 + opts.latency_band)).max(base + opts.latency_floor_us);
            let status = if cur > threshold {
                SloStatus::Warn
            } else {
                SloStatus::Ok
            };
            findings.push(SloFinding {
                bench: bench.clone(),
                metric: "client_p99_us".to_string(),
                baseline: base,
                current: cur,
                ratio: if base > 0.0 { cur / base } else { 1.0 },
                status,
            });
        }
    }
    Ok(SloReport { findings })
}

/// Reads and parses one JSON report.
fn load_json(path: &std::path::Path) -> Result<JsonValue, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    JsonValue::parse(&body).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// A finite number at a dot-separated path, if present.
fn number_at(value: &JsonValue, path: &str) -> Option<f64> {
    value.path(path).and_then(JsonValue::as_f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &std::path::Path, name: &str, body: &str) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(name), body).unwrap();
    }

    fn bench_json(baseline_qps: f64, scaled_qps: f64, p99: f64) -> String {
        format!(
            "{{\"baseline_qps\": {baseline_qps}, \"scaled_qps\": {scaled_qps}, \
             \"runs\": [{{\"label\": \"baseline-closed\", \"client_p99_us\": {p99}}}]}}"
        )
    }

    fn temp_dirs(tag: &str) -> (PathBuf, PathBuf) {
        let root = std::env::temp_dir().join(format!("vtm_slo_{tag}_{}", std::process::id()));
        (root.join("current"), root.join("baselines"))
    }

    #[test]
    fn slo_check_passes_inside_the_noise_band() {
        let (current, baselines) = temp_dirs("pass");
        write(
            &baselines,
            "BENCH_gateway.json",
            &bench_json(1000.0, 900.0, 2000.0),
        );
        write(
            &current,
            "BENCH_gateway.json",
            &bench_json(850.0, 800.0, 2100.0),
        );
        let report = run_slo_check(&SloOptions {
            current_dir: current,
            baseline_dir: baselines,
            benches: vec!["gateway".to_string()],
            ..SloOptions::default()
        })
        .unwrap();
        assert!(report.passed(), "{:?}", report.findings);
        assert_eq!(report.findings.len(), 3);
    }

    #[test]
    fn slo_check_fails_on_synthetic_throughput_regression() {
        let (current, baselines) = temp_dirs("fail");
        write(
            &baselines,
            "BENCH_gateway.json",
            &bench_json(1000.0, 1000.0, 2000.0),
        );
        // 40% drop — outside the 30% band.
        write(
            &current,
            "BENCH_gateway.json",
            &bench_json(600.0, 600.0, 2000.0),
        );
        let report = run_slo_check(&SloOptions {
            current_dir: current,
            baseline_dir: baselines,
            benches: vec!["gateway".to_string()],
            ..SloOptions::default()
        })
        .unwrap();
        assert!(!report.passed());
        assert!(report
            .findings
            .iter()
            .any(|f| f.metric == "baseline_qps" && f.status == SloStatus::Fail));
    }

    #[test]
    fn latency_regressions_warn_but_never_fail() {
        let (current, baselines) = temp_dirs("warn");
        write(
            &baselines,
            "BENCH_gateway.json",
            &bench_json(1000.0, 1000.0, 1000.0),
        );
        // Throughput fine, p99 tripled — warn, not fail.
        write(
            &current,
            "BENCH_gateway.json",
            &bench_json(1000.0, 1000.0, 3000.0),
        );
        let report = run_slo_check(&SloOptions {
            current_dir: current,
            baseline_dir: baselines,
            benches: vec!["gateway".to_string()],
            ..SloOptions::default()
        })
        .unwrap();
        assert!(report.passed());
        assert!(report
            .findings
            .iter()
            .any(|f| f.metric == "client_p99_us" && f.status == SloStatus::Warn));
    }

    #[test]
    fn missing_baseline_is_an_io_error_not_a_regression() {
        let (current, baselines) = temp_dirs("missing");
        write(
            &current,
            "BENCH_gateway.json",
            &bench_json(1000.0, 1000.0, 1000.0),
        );
        let err = run_slo_check(&SloOptions {
            current_dir: current,
            baseline_dir: baselines,
            benches: vec!["gateway".to_string()],
            ..SloOptions::default()
        })
        .unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    /// The metrics-dump run is deterministic in logical-clock mode: the
    /// stage identity holds exactly and every traced request decomposes
    /// into five unit-tick stages (serial submit → wait).
    #[test]
    fn metrics_dump_decomposition_is_deterministic() {
        let opts = MetricsDumpOptions {
            sessions: 4,
            rounds: 3,
            save: false,
            ..MetricsDumpOptions::default()
        };
        let a = run_metrics_dump(&opts).unwrap();
        let b = run_metrics_dump(&opts).unwrap();
        assert!(a.identity_ok);
        assert_eq!(a.completed, 12);
        assert_eq!(a.records.len(), 12);
        for record in &a.records {
            let stages = record.stages();
            assert_eq!(stages.total_us, 5, "{record:?}");
            assert_eq!(stages.queue_wait_us, 1);
            assert_eq!(stages.inference_us, 1);
        }
        assert_eq!(a.stage_report, b.stage_report);
        assert!(
            a.text.contains("vtm_gateway_completed_total 12"),
            "{}",
            a.text
        );
        assert!(
            a.text
                .contains("vtm_gateway_stage_us_count{stage=\"inference\"} 12"),
            "{}",
            a.text
        );
        assert!(a.json.contains("vtm_serve_quotes_total"), "{}", a.json);
        // The delta window saw only the second half of the run.
        assert!(a.window_completed < a.completed, "{}", a.window_completed);
        assert!(a.window_completed > 0);
    }
}
