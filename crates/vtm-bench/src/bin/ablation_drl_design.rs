//! Ablation E8: DRL design choices — observation history length `L` and the
//! reward definition (the paper's sparse Eq. (12) indicator versus a dense
//! normalised-utility reward).
//!
//! For each variant the mechanism is trained with the same budget and the
//! deterministic policy is scored as a fraction of the complete-information
//! equilibrium utility.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin ablation_drl_design            # fast
//! cargo run -p vtm-bench --release --bin ablation_drl_design -- --full  # paper-scale budget
//! ```

use vtm_bench::{full_scale_requested, harness_drl_config, train_mechanism, ResultsTable};
use vtm_core::config::ExperimentConfig;
use vtm_core::env::RewardMode;

fn main() {
    let full = full_scale_requested();
    println!("Ablation E8 — observation history length and reward shaping\n");

    let mut table = ResultsTable::new([
        "history_length",
        "sparse_reward",
        "equilibrium_ratio",
        "mean_price",
        "tail_return",
    ]);

    for &history_length in &[1usize, 2, 4, 8] {
        for (mode, sparse_flag) in [
            (RewardMode::Improvement, 1.0),
            (RewardMode::NormalizedUtility, 0.0),
        ] {
            let mut config = ExperimentConfig::paper_two_vmus();
            config.drl = harness_drl_config(full, 500 + history_length as u64);
            config.drl.history_length = history_length;
            let (mut mechanism, history) = train_mechanism(config, mode);
            let eval = mechanism.evaluate(50);
            table.push_row([
                history_length as f64,
                sparse_flag,
                eval.equilibrium_ratio,
                eval.mean_price,
                history.tail_mean(10, |e| e.episode_return),
            ]);
        }
    }

    table.print_and_save("ablation_drl_design");
    println!("expected shape: L = 4 (the paper's choice) performs at least as well as shorter histories; the dense reward converges faster at equal budget");
}
