//! Thin wrapper over the manifest-driven runner: ablation E8, observation
//! history length and reward shaping. Equivalent to
//! `experiments -- --run ablation-drl-design`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin ablation_drl_design            # fast
//! cargo run -p vtm-bench --release --bin ablation_drl_design -- --full  # paper-scale budget
//! ```

fn main() {
    vtm_bench::experiments::main_single("ablation-drl-design");
}
