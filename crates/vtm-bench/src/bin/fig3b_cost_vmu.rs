//! Figure 3(b): the VMUs' total utility and total purchased bandwidth versus
//! the unit transmission cost.
//!
//! Paper setting: two VMUs (200 MB and 100 MB, α = 5), C swept from 5 to 9.
//! Expected shape: both the total VMU utility and the total bandwidth decrease
//! as the transmission cost (and hence the price) grows. The paper quotes the
//! total bandwidth in hundredths of a MHz (27.9 at C = 6, 23.4 at C = 8); the
//! table therefore also reports `total_bandwidth_x100`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig3b_cost_vmu            # fast
//! cargo run -p vtm-bench --release --bin fig3b_cost_vmu -- --full  # paper-scale DRL training
//! ```

use vtm_bench::{full_scale_requested, harness_drl_config, train_mechanism, ResultsTable};
use vtm_core::config::ExperimentConfig;
use vtm_core::env::RewardMode;
use vtm_core::stackelberg::AotmStackelbergGame;

fn main() {
    let full = full_scale_requested();
    println!(
        "Fig. 3(b) — total VMU utility and bandwidth vs unit transmission cost (N = 2 VMUs)\n"
    );

    let mut table = ResultsTable::new([
        "cost",
        "eq_total_vmu_utility",
        "eq_total_bandwidth_mhz",
        "eq_total_bandwidth_x100",
        "drl_total_vmu_utility",
        "drl_total_bandwidth_mhz",
    ]);

    for cost in [5.0, 6.0, 7.0, 8.0, 9.0] {
        let mut config = ExperimentConfig::paper_two_vmus();
        config.market.unit_cost = cost;
        config.drl = harness_drl_config(full, 200 + cost as u64);
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();

        let (mut mechanism, _) = train_mechanism(config, RewardMode::Improvement);
        let eval = mechanism.evaluate(100);

        table.push_row([
            cost,
            eq.total_vmu_utility(),
            eq.total_bandwidth_mhz(),
            eq.total_bandwidth_mhz() * 100.0,
            eval.mean_total_vmu_utility,
            eval.mean_total_bandwidth_mhz,
        ]);
    }

    table.print_and_save("fig3b_cost_vmu");
    println!("expected shape: both series decrease with the transmission cost");
}
