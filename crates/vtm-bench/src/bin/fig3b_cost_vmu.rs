//! Thin wrapper over the manifest-driven runner: Fig. 3(b), total VMU utility
//! and bandwidth vs the unit transmission cost. Equivalent to
//! `experiments -- --figure fig3b`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig3b_cost_vmu            # fast
//! cargo run -p vtm-bench --release --bin fig3b_cost_vmu -- --full  # paper-scale DRL training
//! ```

fn main() {
    vtm_bench::experiments::main_single("fig3b");
}
