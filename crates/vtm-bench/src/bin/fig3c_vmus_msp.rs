//! Figure 3(c): the MSP's utility and price strategy versus the number of
//! VMUs.
//!
//! Paper setting: N ∈ [2, 6] identical VMUs with 100 MB twins and α = 5.
//! Expected shape: the MSP utility grows with N (7.03 at N = 2 up to ≈ 20 at
//! N = 6); the price stays flat while bandwidth is plentiful and rises once
//! the bandwidth cap starts to bind. Because the paper's stated 50 MHz cap is
//! never reached by the model's demands, the harness additionally reports a
//! tight-cap variant (the bandwidth-scarcity regime the paper describes).
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig3c_vmus_msp            # fast
//! cargo run -p vtm-bench --release --bin fig3c_vmus_msp -- --full  # paper-scale DRL training
//! ```

use vtm_bench::{full_scale_requested, harness_drl_config, train_mechanism, ResultsTable};
use vtm_core::config::ExperimentConfig;
use vtm_core::env::RewardMode;
use vtm_core::stackelberg::AotmStackelbergGame;

/// Aggregate bandwidth cap (MHz) used for the scarcity variant: chosen so the
/// cap starts binding around N = 4, reproducing the "price rises later"
/// behaviour the paper attributes to bandwidth becoming insufficient.
const TIGHT_CAP_MHZ: f64 = 0.5;

fn main() {
    let full = full_scale_requested();
    println!("Fig. 3(c) — MSP utility and price vs number of VMUs (100 MB twins, alpha = 5)\n");

    let mut table = ResultsTable::new([
        "n_vmus",
        "eq_price",
        "eq_msp_utility",
        "drl_price",
        "drl_msp_utility",
        "tightcap_price",
        "tightcap_msp_utility",
    ]);

    for n in 2..=6usize {
        let mut config = ExperimentConfig::paper_n_vmus(n);
        config.drl = harness_drl_config(full, 300 + n as u64);
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();

        let (mut mechanism, _) = train_mechanism(config, RewardMode::Improvement);
        let eval = mechanism.evaluate(100);

        let mut tight = ExperimentConfig::paper_n_vmus(n);
        tight.market.max_bandwidth_mhz = TIGHT_CAP_MHZ;
        let tight_eq = AotmStackelbergGame::from_config(&tight).closed_form_equilibrium();

        table.push_row([
            n as f64,
            eq.price,
            eq.msp_utility,
            eval.mean_price,
            eval.mean_msp_utility,
            tight_eq.price,
            tight_eq.msp_utility,
        ]);
    }

    table.print_and_save("fig3c_vmus_msp");
    println!(
        "expected shape: MSP utility grows with N; the slack-cap price is flat, the tight-cap ({} MHz) price rises once demand exceeds the cap",
        TIGHT_CAP_MHZ
    );
}
