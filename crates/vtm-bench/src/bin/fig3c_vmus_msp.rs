//! Thin wrapper over the manifest-driven runner: Fig. 3(c), MSP utility and
//! price vs the number of VMUs. Equivalent to
//! `experiments -- --figure fig3c`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig3c_vmus_msp            # fast
//! cargo run -p vtm-bench --release --bin fig3c_vmus_msp -- --full  # paper-scale DRL training
//! ```

fn main() {
    vtm_bench::experiments::main_single("fig3c");
}
