//! Figure 3(a): the MSP's utility and price strategy versus the unit
//! transmission cost, for the proposed DRL scheme, the Stackelberg
//! equilibrium, the greedy baseline and the random baseline.
//!
//! Paper setting: two VMUs (200 MB and 100 MB, α = 5) and C swept from 5 to 9.
//! Expected shape: price increases with the cost (≈ 25 at C = 5 up to ≈ 34 at
//! C = 9), utilities decrease with the cost, and the proposed scheme tracks
//! the equilibrium while dominating greedy and random pricing.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig3a_cost_msp            # fast
//! cargo run -p vtm-bench --release --bin fig3a_cost_msp -- --full  # paper-scale DRL training
//! ```

use vtm_bench::{full_scale_requested, harness_drl_config, mean, train_mechanism, ResultsTable};
use vtm_core::config::ExperimentConfig;
use vtm_core::env::RewardMode;
use vtm_core::schemes::{run_scheme, GreedyPricing, RandomPricing};
use vtm_core::stackelberg::AotmStackelbergGame;

fn main() {
    let full = full_scale_requested();
    let rounds = 200;
    println!("Fig. 3(a) — MSP utility and price vs unit transmission cost (N = 2 VMUs)\n");

    let mut table = ResultsTable::new([
        "cost",
        "eq_price",
        "eq_msp_utility",
        "drl_price",
        "drl_msp_utility",
        "greedy_msp_utility",
        "random_msp_utility",
    ]);

    for cost in [5.0, 6.0, 7.0, 8.0, 9.0] {
        let mut config = ExperimentConfig::paper_two_vmus();
        config.market.unit_cost = cost;
        config.drl = harness_drl_config(full, 100 + cost as u64);
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();

        // Proposed: the DRL policy trained under incomplete information.
        let (mut mechanism, _) = train_mechanism(config, RewardMode::Improvement);
        let eval = mechanism.evaluate(rounds.min(100));

        // Baselines.
        let greedy = mean(&run_scheme(&mut GreedyPricing::new(1, 1.0), &game, rounds));
        let random = mean(&run_scheme(&mut RandomPricing::new(1), &game, rounds));

        table.push_row([
            cost,
            eq.price,
            eq.msp_utility,
            eval.mean_price,
            eval.mean_msp_utility,
            greedy,
            random,
        ]);
    }

    table.print_and_save("fig3a_cost_msp");
    println!("expected shape: price rises with cost, every utility falls, DRL ≈ equilibrium > greedy > random");
}
