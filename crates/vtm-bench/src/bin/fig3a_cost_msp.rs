//! Thin wrapper over the manifest-driven runner: Fig. 3(a), MSP utility and
//! price vs the unit transmission cost. Equivalent to
//! `experiments -- --figure fig3a`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig3a_cost_msp            # fast
//! cargo run -p vtm-bench --release --bin fig3a_cost_msp -- --full  # paper-scale DRL training
//! ```

fn main() {
    vtm_bench::experiments::main_single("fig3a");
}
