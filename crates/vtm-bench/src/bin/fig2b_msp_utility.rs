//! Thin wrapper over the manifest-driven runner: Fig. 2(b), MSP utility
//! convergence to the Stackelberg equilibrium. Equivalent to
//! `experiments -- --figure fig2b`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig2b_msp_utility            # fast
//! cargo run -p vtm-bench --release --bin fig2b_msp_utility -- --full  # paper scale
//! ```

fn main() {
    vtm_bench::experiments::main_single("fig2b");
}
