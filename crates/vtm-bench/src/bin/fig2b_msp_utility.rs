//! Figure 2(b): convergence of the MSP's utility to the Stackelberg
//! equilibrium during training.
//!
//! The per-episode mean MSP utility of the DRL mechanism is printed next to
//! the complete-information equilibrium utility it should converge to.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig2b_msp_utility            # fast
//! cargo run -p vtm-bench --release --bin fig2b_msp_utility -- --full  # paper scale
//! ```

use vtm_bench::{full_scale_requested, harness_drl_config, train_mechanism, ResultsTable};
use vtm_core::config::ExperimentConfig;
use vtm_core::env::RewardMode;
use vtm_core::stackelberg::AotmStackelbergGame;

fn main() {
    let full = full_scale_requested();
    let mut config = ExperimentConfig::paper_two_vmus();
    config.drl = harness_drl_config(full, 1);

    let equilibrium = AotmStackelbergGame::from_config(&config).closed_form_equilibrium();
    println!(
        "Fig. 2(b) — MSP utility per episode vs the Stackelberg equilibrium (U_s* = {:.3})\n",
        equilibrium.msp_utility
    );

    let (mut mechanism, history) = train_mechanism(config, RewardMode::Improvement);

    let mut table = ResultsTable::new([
        "episode",
        "mean_msp_utility",
        "best_msp_utility",
        "equilibrium_utility",
    ]);
    for log in &history.episodes {
        table.push_row([
            log.episode as f64,
            log.mean_msp_utility,
            log.best_msp_utility,
            equilibrium.msp_utility,
        ]);
    }
    table.print_and_save("fig2b_msp_utility");

    let eval = mechanism.evaluate(50);
    println!(
        "final deterministic policy: price {:.3} (p* = {:.3}), utility {:.3} = {:.1}% of the equilibrium",
        eval.mean_price,
        equilibrium.price,
        eval.mean_msp_utility,
        100.0 * eval.equilibrium_ratio
    );
}
