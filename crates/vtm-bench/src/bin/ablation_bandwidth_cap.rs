//! Thin wrapper over the manifest-driven runner: ablation E7, the effect of
//! the aggregate bandwidth cap on the equilibrium. Equivalent to
//! `experiments -- --run ablation-bandwidth-cap`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin ablation_bandwidth_cap
//! ```

fn main() {
    vtm_bench::experiments::main_single("ablation-bandwidth-cap");
}
