//! Ablation E7: how the aggregate bandwidth cap `B_max` shapes the
//! equilibrium price, the MSP utility and the per-VMU bandwidth as the
//! population grows.
//!
//! The paper explains Fig. 3(c)/(d) by bandwidth scarcity; this ablation makes
//! the mechanism explicit by sweeping both the VMU count (1–12) and the cap
//! (tight, medium, and the paper's stated 50 MHz) and reporting where the cap
//! starts to bind.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin ablation_bandwidth_cap
//! ```

use vtm_bench::ResultsTable;
use vtm_core::config::ExperimentConfig;
use vtm_core::stackelberg::AotmStackelbergGame;

fn main() {
    println!("Ablation E7 — bandwidth-cap effect on the Stackelberg equilibrium\n");
    let mut table = ResultsTable::new([
        "n_vmus",
        "bmax_mhz",
        "price",
        "msp_utility",
        "avg_bandwidth_mhz",
        "avg_vmu_utility",
        "cap_binding",
    ]);

    for &bmax in &[0.25, 0.5, 50.0] {
        for n in 1..=12usize {
            let mut config = ExperimentConfig::paper_n_vmus(n);
            config.market.max_bandwidth_mhz = bmax;
            let eq = AotmStackelbergGame::from_config(&config).closed_form_equilibrium();
            table.push_row([
                n as f64,
                bmax,
                eq.price,
                eq.msp_utility,
                eq.average_bandwidth_mhz(),
                eq.average_vmu_utility(),
                if eq.bandwidth_cap_binding { 1.0 } else { 0.0 },
            ]);
        }
    }

    table.print_and_save("ablation_bandwidth_cap");
    println!("expected shape: with a tight cap the price rises and per-VMU bandwidth falls once N exceeds the point where aggregate demand hits B_max; with 50 MHz the cap never binds");
}
