//! The manifest-driven experiment runner: one binary for every figure,
//! ablation and trace-driven scenario experiment.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin experiments -- --list
//! cargo run -p vtm-bench --release --bin experiments -- --scenario highway
//! cargo run -p vtm-bench --release --bin experiments -- --scenario all --episodes 4
//! cargo run -p vtm-bench --release --bin experiments -- --figure fig2a --full
//! cargo run -p vtm-bench --release --bin experiments -- --all
//! ```
//!
//! Each selected experiment prints its table and writes
//! `results/<name>.csv` + `results/<name>.json`.

use vtm_bench::experiments::{find, manifest, ExperimentCtx};
use vtm_core::scenario::ScenarioKind;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--list] [--all] [--scenario <name>|all]... [--figure <name>|all]... \
         [--run <name>]... [--episodes N] [--full]"
    );
    eprintln!("known experiments:");
    for spec in manifest() {
        eprintln!("  {:<28} {}", spec.name, spec.description);
    }
    std::process::exit(2);
}

fn select(selected: &mut Vec<&'static str>, name: &str) {
    match find(name) {
        Some(spec) => {
            if !selected.contains(&spec.name) {
                selected.push(spec.name);
            }
        }
        None => {
            eprintln!("error: unknown experiment `{name}`");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ctx = ExperimentCtx::from_args(&args);
    let mut selected: Vec<&'static str> = Vec::new();

    let mut iter = args.iter().map(String::as_str);
    let mut listed = false;
    while let Some(arg) = iter.next() {
        match arg {
            "--list" => {
                for spec in manifest() {
                    println!("{:<28} {}", spec.name, spec.description);
                }
                listed = true;
            }
            "--all" => {
                for spec in manifest() {
                    select(&mut selected, spec.name);
                }
            }
            "--scenario" => match iter.next() {
                Some("all") => {
                    for kind in ScenarioKind::ALL {
                        select(&mut selected, &format!("scenario-{}", kind.name()));
                    }
                }
                Some(name) => select(&mut selected, &format!("scenario-{name}")),
                None => usage(),
            },
            "--figure" => match iter.next() {
                Some("all") => {
                    for spec in manifest() {
                        if spec.name.starts_with("fig") {
                            select(&mut selected, spec.name);
                        }
                    }
                }
                Some(name) => select(&mut selected, name),
                None => usage(),
            },
            "--run" => match iter.next() {
                Some(name) => select(&mut selected, name),
                None => usage(),
            },
            "--episodes" => {
                // The value itself is consumed by ExperimentCtx::from_args;
                // here we only validate it.
                if iter.next().and_then(|v| v.parse::<usize>().ok()).is_none() {
                    eprintln!("error: --episodes needs a positive count");
                    usage();
                }
            }
            "--full" => {}
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }

    if selected.is_empty() {
        if listed {
            return;
        }
        usage();
    }

    let total = selected.len();
    for (i, name) in selected.iter().enumerate() {
        let spec = find(name).expect("selected names come from the manifest");
        println!("=== [{}/{}] {} ===", i + 1, total, spec.name);
        let report = (spec.run)(&ctx);
        report.emit();
        println!();
    }
}
