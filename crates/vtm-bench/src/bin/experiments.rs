//! The manifest-driven experiment runner: one binary for every figure,
//! ablation, trace-driven scenario experiment and the policy lifecycle.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin experiments -- --list
//! cargo run -p vtm-bench --release --bin experiments -- --scenario highway
//! cargo run -p vtm-bench --release --bin experiments -- --scenario all --episodes 4
//! cargo run -p vtm-bench --release --bin experiments -- --figure fig2a --full
//! cargo run -p vtm-bench --release --bin experiments -- --all
//!
//! # policy lifecycle: train -> checkpoint -> serve
//! cargo run -p vtm-bench --release --bin experiments -- \
//!     train --env highway --episodes 24 --checkpoint results/policy_highway.vtm
//! cargo run -p vtm-bench --release --bin experiments -- \
//!     serve-bench --checkpoint results/policy_highway.vtm --env highway --sessions 64
//!
//! # audit journal: record a gateway run, then rebuild its exact state
//! cargo run -p vtm-bench --release --bin experiments -- \
//!     journal-demo --env highway --requests 512 --journal results/demo.vtmj
//! cargo run -p vtm-bench --release --bin experiments -- \
//!     replay --env highway --journal results/demo.vtmj --expect-digest 0x...
//! ```
//!
//! Each selected experiment prints its table and writes
//! `results/<name>.csv` + `results/<name>.json`; `serve-bench` writes
//! `results/BENCH_serve.json`.

use vtm_bench::chaos::{run_chaos, ChaosOptions, PLANS};
use vtm_bench::experiments::{find, manifest, ExperimentCtx};
use vtm_bench::fabric_bench::{run_fabric_bench, FabricBenchOptions};
use vtm_bench::gateway_bench::{run_gateway_bench, GatewayBenchOptions};
use vtm_bench::journal_cli::{
    run_journal_demo, run_replay, JournalDemoOptions, ReplayCliOptions, SnapshotChoice,
};
use vtm_bench::lifecycle::{describe_checkpoint, train_to_checkpoint, TrainOptions};
use vtm_bench::obs_cli::{
    run_metrics_dump, run_slo_check, MetricsDumpOptions, SloOptions, SloStatus,
};
use vtm_bench::serve_bench::{run_serve_bench, BenchPrecision, ServeBenchOptions};
use vtm_core::registry::EnvRegistry;
use vtm_core::scenario::ScenarioKind;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--list] [--all] [--scenario <name>|all]... [--figure <name>|all]... \
         [--run <name>]... [--episodes N] [--full]"
    );
    eprintln!(
        "       experiments train [--env <preset>] [--episodes N] [--collectors N] \
         [--threads N] [--seed N] [--checkpoint <path>] [--resume <path>]"
    );
    eprintln!(
        "       experiments serve-bench [--env <preset>] [--checkpoint <path>] \
         [--sessions N] [--rounds N] [--repeats N] [--precision f64|f32|both]"
    );
    eprintln!(
        "       experiments gateway-bench [--env <preset>] [--checkpoint <path>] \
         [--duration-s S] [--sessions N] [--ingress N] [--executors N] \
         [--max-batch N] [--max-delay-us N] [--queue-capacity N] [--no-open-loop] \
         [--precision f64|f32|both]"
    );
    eprintln!(
        "       experiments fabric-bench [--env <preset>] [--checkpoint <path>] \
         [--shards N] [--arms a=90,b=10] [--duration-s S] [--sessions N] \
         [--ingress N] [--executors N] [--max-batch N] [--max-delay-us N] \
         [--queue-capacity N] [--no-open-loop]"
    );
    eprintln!(
        "       experiments journal-demo [--env <preset>] [--checkpoint <path>] \
         [--journal <path>] [--requests N] [--sessions N] [--snapshot-every N] \
         [--flush-every N]"
    );
    eprintln!(
        "       experiments replay [--env <preset>] [--checkpoint <path>] \
         [--journal <path>] [--snapshot auto|none|<path>] [--strict] \
         [--expect-digest <hex>]"
    );
    eprintln!(
        "       experiments chaos [--env <preset>] [--checkpoint <path>] \
         [--plan <name>]... [--requests N] [--sessions N] [--journal <path>]"
    );
    eprintln!(
        "       experiments metrics-dump [--sessions N] [--rounds N] \
         [--sample-every N] [--seed N] [--no-save]"
    );
    eprintln!(
        "       experiments slo-check [--bench gateway|fabric]... \
         [--current <dir>] [--baselines <dir>] [--qps-band F] [--warn-only]"
    );
    eprintln!("chaos plans: {}", PLANS.join(", "));
    eprintln!("known experiments:");
    for spec in manifest() {
        eprintln!("  {:<28} {}", spec.name, spec.description);
    }
    eprintln!(
        "environment presets: {}",
        EnvRegistry::builtin().names().join(", ")
    );
    std::process::exit(2);
}

fn select(selected: &mut Vec<&'static str>, name: &str) {
    match find(name) {
        Some(spec) => {
            if !selected.contains(&spec.name) {
                selected.push(spec.name);
            }
        }
        None => {
            eprintln!("error: unknown experiment `{name}`");
            usage();
        }
    }
}

/// Parses `--flag <value>` pairs for the lifecycle subcommands; exits with
/// usage on anything unknown.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => {
            eprintln!("error: {flag} needs a value");
            usage();
        }
    }
}

fn parse_count(value: &str, flag: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} needs a number, got `{value}`");
            usage();
        }
    }
}

fn parse_precision(value: &str) -> BenchPrecision {
    match BenchPrecision::parse(value) {
        Ok(p) => p,
        Err(err) => {
            eprintln!("error: {err}");
            usage();
        }
    }
}

fn main_train(args: &[String]) {
    let mut opts = TrainOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--env" => opts.env = flag_value(args, &mut i, "--env").to_string(),
            "--episodes" => {
                opts.episodes = parse_count(flag_value(args, &mut i, "--episodes"), "--episodes")
            }
            "--collectors" => {
                opts.collectors = Some(
                    parse_count(flag_value(args, &mut i, "--collectors"), "--collectors").max(1),
                )
            }
            "--threads" => {
                opts.threads = parse_count(flag_value(args, &mut i, "--threads"), "--threads")
            }
            "--seed" => {
                opts.seed = Some(parse_count(flag_value(args, &mut i, "--seed"), "--seed") as u64)
            }
            "--checkpoint" => {
                opts.checkpoint = flag_value(args, &mut i, "--checkpoint").into();
            }
            "--resume" => opts.resume = Some(flag_value(args, &mut i, "--resume").into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown train argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    match train_to_checkpoint(&opts) {
        Ok(summary) => {
            println!(
                "trained {} episodes on `{}` (tail-8 mean return {:.2}, {} rounds total)",
                summary.episodes, opts.env, summary.tail_mean_return, summary.trained_rounds
            );
            match describe_checkpoint(&summary.checkpoint) {
                Ok(description) => println!("checkpoint {description}"),
                Err(err) => eprintln!("warning: {err}"),
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

fn main_serve_bench(args: &[String]) {
    let mut opts = ServeBenchOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--env" => opts.env = flag_value(args, &mut i, "--env").to_string(),
            "--checkpoint" => {
                opts.checkpoint = Some(flag_value(args, &mut i, "--checkpoint").into())
            }
            "--sessions" => {
                opts.sessions =
                    parse_count(flag_value(args, &mut i, "--sessions"), "--sessions").max(1)
            }
            "--rounds" => {
                opts.rounds = parse_count(flag_value(args, &mut i, "--rounds"), "--rounds").max(1)
            }
            "--repeats" => {
                opts.repeats =
                    parse_count(flag_value(args, &mut i, "--repeats"), "--repeats").max(1)
            }
            "--precision" => {
                opts.precision = parse_precision(flag_value(args, &mut i, "--precision"))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown serve-bench argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    match run_serve_bench(&opts) {
        Ok(result) => {
            println!(
                "serve-bench `{}`: {} sessions x {} rounds — batched {:.0} quotes/s vs \
                 per-request {:.0} quotes/s ({:.2}x)",
                result.env,
                result.sessions,
                result.rounds,
                result.batched_qps,
                result.per_request_qps,
                result.speedup
            );
            if let (Some(qps), Some(speedup)) = (result.f32_batched_qps, result.f32_speedup) {
                println!(
                    "  f32 batched {:.0} quotes/s ({:.2}x vs f64 batched), max price err \
                     {:.2e}, argmax agree: {}",
                    qps,
                    speedup,
                    result.f32_max_price_err.unwrap_or(0.0),
                    result.f32_argmax_agree.unwrap_or(false)
                );
            }
            match result.save() {
                Ok(path) => println!("(saved to {})", path.display()),
                Err(err) => {
                    eprintln!("error: could not write BENCH_serve.json: {err}");
                    std::process::exit(1);
                }
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

fn main_gateway_bench(args: &[String]) {
    let mut opts = GatewayBenchOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--env" => opts.env = flag_value(args, &mut i, "--env").to_string(),
            "--checkpoint" => {
                opts.checkpoint = Some(flag_value(args, &mut i, "--checkpoint").into())
            }
            "--duration-s" => {
                let value = flag_value(args, &mut i, "--duration-s");
                opts.duration_s = match value.parse::<f64>() {
                    Ok(s) if s > 0.0 => s,
                    _ => {
                        eprintln!("error: --duration-s needs a positive number, got `{value}`");
                        usage();
                    }
                };
            }
            "--sessions" => {
                opts.sessions =
                    parse_count(flag_value(args, &mut i, "--sessions"), "--sessions").max(1)
            }
            "--ingress" => {
                opts.ingress = parse_count(flag_value(args, &mut i, "--ingress"), "--ingress")
            }
            "--executors" => {
                opts.executors = parse_count(flag_value(args, &mut i, "--executors"), "--executors")
            }
            "--max-batch" => {
                opts.max_batch =
                    parse_count(flag_value(args, &mut i, "--max-batch"), "--max-batch").max(1)
            }
            "--max-delay-us" => {
                opts.max_delay_us =
                    parse_count(flag_value(args, &mut i, "--max-delay-us"), "--max-delay-us") as u64
            }
            "--queue-capacity" => {
                opts.queue_capacity = parse_count(
                    flag_value(args, &mut i, "--queue-capacity"),
                    "--queue-capacity",
                )
                .max(1)
            }
            "--no-open-loop" => opts.open_loop_factors.clear(),
            "--precision" => {
                opts.precision = parse_precision(flag_value(args, &mut i, "--precision"))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown gateway-bench argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    match run_gateway_bench(&opts) {
        Ok(result) => {
            println!(
                "gateway-bench `{}`: baseline (1 ingress/1 executor) {:.0} quotes/s, scaled \
                 {:.0} quotes/s ({:.2}x)",
                result.env, result.baseline_qps, result.scaled_qps, result.speedup
            );
            if let (Some(qps), Some(speedup)) = (result.f32_scaled_qps, result.f32_speedup) {
                println!("  f32 scaled {qps:.0} quotes/s ({speedup:.2}x vs f64 scaled)");
            }
            for run in &result.runs {
                let offered = run
                    .offered_qps
                    .map_or("closed loop".to_string(), |q| format!("offered {q:.0}/s"));
                println!(
                    "  {:<16} {offered:>16} -> {:>8.0} quotes/s, p50 {} us, p99 {} us, \
                     mean batch {:.1}, rejected {}",
                    run.label,
                    run.achieved_qps,
                    run.telemetry.latency_p50_us,
                    run.telemetry.latency_p99_us,
                    run.telemetry.mean_batch_size,
                    run.telemetry.rejected
                );
            }
            match result.save() {
                Ok(path) => println!("(saved to {})", path.display()),
                Err(err) => {
                    eprintln!("error: could not write BENCH_gateway.json: {err}");
                    std::process::exit(1);
                }
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

fn main_fabric_bench(args: &[String]) {
    let mut opts = FabricBenchOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--env" => opts.env = flag_value(args, &mut i, "--env").to_string(),
            "--checkpoint" => {
                opts.checkpoint = Some(flag_value(args, &mut i, "--checkpoint").into())
            }
            "--duration-s" => {
                let value = flag_value(args, &mut i, "--duration-s");
                opts.duration_s = match value.parse::<f64>() {
                    Ok(s) if s > 0.0 => s,
                    _ => {
                        eprintln!("error: --duration-s needs a positive number, got `{value}`");
                        usage();
                    }
                };
            }
            "--sessions" => {
                opts.sessions =
                    parse_count(flag_value(args, &mut i, "--sessions"), "--sessions").max(1)
            }
            "--shards" => {
                opts.shards = parse_count(flag_value(args, &mut i, "--shards"), "--shards")
            }
            "--arms" => {
                let value = flag_value(args, &mut i, "--arms");
                opts.arms = match vtm_fabric::parse_arms(value) {
                    Ok(arms) => arms,
                    Err(err) => {
                        eprintln!("error: --arms: {err}");
                        usage();
                    }
                };
            }
            "--ingress" => {
                opts.ingress = parse_count(flag_value(args, &mut i, "--ingress"), "--ingress")
            }
            "--executors" => {
                opts.executors = parse_count(flag_value(args, &mut i, "--executors"), "--executors")
            }
            "--max-batch" => {
                opts.max_batch =
                    parse_count(flag_value(args, &mut i, "--max-batch"), "--max-batch").max(1)
            }
            "--max-delay-us" => {
                opts.max_delay_us =
                    parse_count(flag_value(args, &mut i, "--max-delay-us"), "--max-delay-us") as u64
            }
            "--queue-capacity" => {
                opts.queue_capacity = parse_count(
                    flag_value(args, &mut i, "--queue-capacity"),
                    "--queue-capacity",
                )
                .max(1)
            }
            "--no-open-loop" => opts.open_loop_factors.clear(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown fabric-bench argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    match run_fabric_bench(&opts) {
        Ok(result) => {
            let arms: Vec<String> = result
                .arms
                .iter()
                .map(|a| format!("{}={}", a.name, a.percent))
                .collect();
            println!(
                "fabric-bench `{}` [{}]: baseline (1 shard) {:.0} quotes/s, {} shards \
                 {:.0} quotes/s ({:.2}x)",
                result.env,
                arms.join(","),
                result.baseline_qps,
                result.shards,
                result.scaled_qps,
                result.speedup
            );
            for run in &result.runs {
                let offered = run
                    .offered_qps
                    .map_or("closed loop".to_string(), |q| format!("offered {q:.0}/s"));
                println!(
                    "  {:<18} {offered:>16} -> {:>8.0} quotes/s",
                    run.label, run.achieved_qps
                );
                for arm in &run.fabric.arms {
                    if arm.quotes > 0 {
                        println!(
                            "    arm {:<10} {:>8} quotes, p50 {} us, p95 {} us, p99 {} us, \
                             revenue {:.1}",
                            arm.name,
                            arm.quotes,
                            arm.latency_p50_us,
                            arm.latency_p95_us,
                            arm.latency_p99_us,
                            arm.revenue
                        );
                    }
                }
            }
            match result.save() {
                Ok(path) => println!("(saved to {})", path.display()),
                Err(err) => {
                    eprintln!("error: could not write BENCH_fabric.json: {err}");
                    std::process::exit(1);
                }
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

fn main_journal_demo(args: &[String]) {
    let mut opts = JournalDemoOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--env" => opts.env = flag_value(args, &mut i, "--env").to_string(),
            "--checkpoint" => {
                opts.checkpoint = Some(flag_value(args, &mut i, "--checkpoint").into())
            }
            "--journal" => opts.journal = flag_value(args, &mut i, "--journal").into(),
            "--requests" => {
                opts.requests =
                    parse_count(flag_value(args, &mut i, "--requests"), "--requests").max(1)
            }
            "--sessions" => {
                opts.sessions =
                    parse_count(flag_value(args, &mut i, "--sessions"), "--sessions").max(1)
            }
            "--snapshot-every" => {
                opts.snapshot_every = parse_count(
                    flag_value(args, &mut i, "--snapshot-every"),
                    "--snapshot-every",
                ) as u64
            }
            "--flush-every" => {
                opts.flush_every =
                    parse_count(flag_value(args, &mut i, "--flush-every"), "--flush-every") as u64
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown journal-demo argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    match run_journal_demo(&opts) {
        Ok(result) => {
            println!(
                "journal-demo `{}`: {} frames ({} bytes, {} snapshots) -> {}",
                result.env,
                result.frames,
                result.bytes,
                result.snapshots,
                result.journal.display()
            );
            println!("state digest 0x{:016x}", result.state_digest);
            println!(
                "replay with: experiments replay --env {} --journal {} \
                 --expect-digest 0x{:016x}",
                result.env,
                result.journal.display(),
                result.state_digest
            );
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

/// Parses `--expect-digest` as hex (with or without `0x`) or decimal.
fn parse_digest(value: &str) -> u64 {
    let parsed = match value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => u64::from_str_radix(value, 16).or_else(|_| value.parse::<u64>()),
    };
    match parsed {
        Ok(digest) => digest,
        Err(_) => {
            eprintln!("error: --expect-digest needs a hex digest, got `{value}`");
            usage();
        }
    }
}

fn main_replay(args: &[String]) {
    let mut opts = ReplayCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--env" => opts.env = flag_value(args, &mut i, "--env").to_string(),
            "--checkpoint" => {
                opts.checkpoint = Some(flag_value(args, &mut i, "--checkpoint").into())
            }
            "--journal" => opts.journal = flag_value(args, &mut i, "--journal").into(),
            "--snapshot" => {
                opts.snapshot = match flag_value(args, &mut i, "--snapshot") {
                    "auto" => SnapshotChoice::Auto,
                    "none" => SnapshotChoice::None,
                    path => SnapshotChoice::Path(path.into()),
                }
            }
            "--strict" => opts.strict = true,
            "--expect-digest" => {
                opts.expect_digest = Some(parse_digest(flag_value(args, &mut i, "--expect-digest")))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown replay argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    match run_replay(&opts) {
        Ok(result) => {
            match result.snapshot_frames {
                Some(frames) => println!(
                    "replayed {} of {} frames after restoring a {frames}-frame snapshot",
                    result.report.frames_applied, result.report.total_frames
                ),
                None => println!(
                    "replayed {} of {} frames from genesis",
                    result.report.frames_applied, result.report.total_frames
                ),
            }
            if result.report.truncated_tail > 0 {
                println!(
                    "recovered past a torn tail of {} bytes (incomplete final frame)",
                    result.report.truncated_tail
                );
            }
            println!("state digest 0x{:016x}", result.report.state_digest);
            match result.digest_matches {
                Some(true) => println!("digest check: OK"),
                Some(false) => {
                    eprintln!("error: digest check FAILED (state diverged from the recording)");
                    std::process::exit(1);
                }
                None => {}
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

fn main_chaos(args: &[String]) {
    let mut opts = ChaosOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--env" => opts.env = flag_value(args, &mut i, "--env").to_string(),
            "--checkpoint" => {
                opts.checkpoint = Some(flag_value(args, &mut i, "--checkpoint").into())
            }
            "--plan" => opts
                .plans
                .push(flag_value(args, &mut i, "--plan").to_string()),
            "--requests" => {
                opts.requests =
                    parse_count(flag_value(args, &mut i, "--requests"), "--requests").max(4)
            }
            "--sessions" => {
                opts.sessions =
                    parse_count(flag_value(args, &mut i, "--sessions"), "--sessions").max(1)
            }
            "--journal" => opts.journal = flag_value(args, &mut i, "--journal").into(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown chaos argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    match run_chaos(&opts) {
        Ok(results) => {
            let mut failed = false;
            for r in &results {
                let replay = match r.replay_equivalent {
                    Some(true) => ", replay OK",
                    Some(false) => ", replay DIVERGED",
                    None => "",
                };
                println!(
                    "chaos `{}`: {} admitted / {} quoted / {} errored / {} rejected — \
                     panics {}, restarts {}, expired {}, shed {}, degraded {}, \
                     watchdog {}, journal retries {}, bypassed {}{replay}",
                    r.plan,
                    r.admitted,
                    r.quoted,
                    r.errored,
                    r.rejected,
                    r.stats.panics,
                    r.stats.restarts,
                    r.stats.expired,
                    r.stats.shed,
                    r.stats.degraded_quotes,
                    r.stats.watchdog_fires,
                    r.stats.journal_retries,
                    r.stats.journal_bypassed,
                );
                for violation in &r.violations {
                    failed = true;
                    eprintln!("  VIOLATION: {violation}");
                }
            }
            if failed {
                eprintln!("error: chaos invariants violated");
                std::process::exit(1);
            }
            println!("all {} plan(s) passed", results.len());
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

fn main_metrics_dump(args: &[String]) {
    let mut opts = MetricsDumpOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sessions" => {
                opts.sessions =
                    parse_count(flag_value(args, &mut i, "--sessions"), "--sessions").max(1)
            }
            "--rounds" => {
                opts.rounds = parse_count(flag_value(args, &mut i, "--rounds"), "--rounds").max(1)
            }
            "--sample-every" => {
                opts.sample_every =
                    parse_count(flag_value(args, &mut i, "--sample-every"), "--sample-every").max(1)
                        as u64
            }
            "--seed" => {
                opts.seed = parse_count(flag_value(args, &mut i, "--seed"), "--seed") as u64
            }
            "--no-save" => opts.save = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown metrics-dump argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    match run_metrics_dump(&opts) {
        Ok(result) => {
            print!("{}", result.stage_report);
            println!(
                "windowed delta: {} of {} completions in the second half",
                result.window_completed, result.completed
            );
            print!("{}", result.text);
            for path in &result.saved {
                println!("(saved to {})", path.display());
            }
            if !result.identity_ok {
                eprintln!("error: stage decomposition identity violated");
                std::process::exit(1);
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

fn main_slo_check(args: &[String]) {
    let mut opts = SloOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => opts
                .benches
                .push(flag_value(args, &mut i, "--bench").to_string()),
            "--current" => opts.current_dir = flag_value(args, &mut i, "--current").into(),
            "--baselines" => opts.baseline_dir = flag_value(args, &mut i, "--baselines").into(),
            "--qps-band" => {
                let value = flag_value(args, &mut i, "--qps-band");
                opts.qps_band = match value.parse::<f64>() {
                    Ok(f) if (0.0..1.0).contains(&f) => f,
                    _ => {
                        eprintln!("error: --qps-band expects a fraction in [0, 1), got `{value}`");
                        usage();
                    }
                }
            }
            "--warn-only" => opts.warn_only = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown slo-check argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    match run_slo_check(&opts) {
        Ok(report) => {
            for f in &report.findings {
                let status = match f.status {
                    SloStatus::Ok => "ok  ",
                    SloStatus::Warn => "WARN",
                    SloStatus::Fail => "FAIL",
                };
                println!(
                    "{status} {}/{:<16} baseline {:>10.1}  current {:>10.1}  ({:+.1}%)",
                    f.bench,
                    f.metric,
                    f.baseline,
                    f.current,
                    (f.ratio - 1.0) * 100.0
                );
            }
            if report.passed() {
                println!("slo-check: all enforced metrics within the noise band");
            } else if opts.warn_only {
                println!("slo-check: regressions found (warn-only mode, not failing)");
            } else {
                eprintln!("error: slo-check found throughput regressions beyond the band");
                std::process::exit(1);
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Lifecycle subcommands take over the whole argument list.
    match args.first().map(String::as_str) {
        Some("train") => return main_train(&args[1..]),
        Some("serve-bench") => return main_serve_bench(&args[1..]),
        Some("gateway-bench") => return main_gateway_bench(&args[1..]),
        Some("fabric-bench") => return main_fabric_bench(&args[1..]),
        Some("journal-demo") => return main_journal_demo(&args[1..]),
        Some("replay") => return main_replay(&args[1..]),
        Some("chaos") => return main_chaos(&args[1..]),
        Some("metrics-dump") => return main_metrics_dump(&args[1..]),
        Some("slo-check") => return main_slo_check(&args[1..]),
        _ => {}
    }

    let ctx = ExperimentCtx::from_args(&args);
    let mut selected: Vec<&'static str> = Vec::new();

    let mut iter = args.iter().map(String::as_str);
    let mut listed = false;
    while let Some(arg) = iter.next() {
        match arg {
            "--list" => {
                for spec in manifest() {
                    println!("{:<28} {}", spec.name, spec.description);
                }
                listed = true;
            }
            "--all" => {
                for spec in manifest() {
                    select(&mut selected, spec.name);
                }
            }
            "--scenario" => match iter.next() {
                Some("all") => {
                    for kind in ScenarioKind::ALL {
                        select(&mut selected, &format!("scenario-{}", kind.name()));
                    }
                }
                Some(name) => select(&mut selected, &format!("scenario-{name}")),
                None => usage(),
            },
            "--figure" => match iter.next() {
                Some("all") => {
                    for spec in manifest() {
                        if spec.name.starts_with("fig") {
                            select(&mut selected, spec.name);
                        }
                    }
                }
                Some(name) => select(&mut selected, name),
                None => usage(),
            },
            "--run" => match iter.next() {
                Some(name) => select(&mut selected, name),
                None => usage(),
            },
            "--episodes" => {
                // The value itself is consumed by ExperimentCtx::from_args;
                // here we only validate it.
                if iter.next().and_then(|v| v.parse::<usize>().ok()).is_none() {
                    eprintln!("error: --episodes needs a positive count");
                    usage();
                }
            }
            "--full" => {}
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }

    if selected.is_empty() {
        if listed {
            return;
        }
        usage();
    }

    let total = selected.len();
    for (i, name) in selected.iter().enumerate() {
        let spec = find(name).expect("selected names come from the manifest");
        println!("=== [{}/{}] {} ===", i + 1, total, spec.name);
        let report = (spec.run)(&ctx);
        report.emit();
        println!();
    }
}
