//! Thin wrapper over the manifest-driven runner: the supplementary
//! end-to-end AoTM-by-allocator experiment. Equivalent to
//! `experiments -- --run sim-aotm`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin exp_simulator_aotm
//! ```

fn main() {
    vtm_bench::experiments::main_single("sim-aotm");
}
