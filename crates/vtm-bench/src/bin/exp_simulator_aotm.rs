//! Supplementary experiment: end-to-end Age of Twin Migration achieved in the
//! vehicular-metaverse simulator under different bandwidth allocators.
//!
//! Not a figure of the paper, but the packet-level counterpart of Eq. (1):
//! vehicles drive along a highway corridor, migrations are triggered at
//! coverage boundaries, and each allocator decides how much bandwidth a
//! migration receives. The table reports the resulting AoTM distribution.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin exp_simulator_aotm
//! ```

use vtm_bench::ResultsTable;
use vtm_core::allocator::{PricingRule, StackelbergAllocator};
use vtm_core::config::MarketConfig;
use vtm_sim::metaverse::{
    BandwidthAllocator, EqualShareAllocator, FixedAllocator, MetaverseConfig, MetaverseSim,
};
use vtm_sim::radio::LinkBudget;
use vtm_sim::trace::{Trace, TraceConfig};

fn run_with<A: BandwidthAllocator>(allocator: &mut A, seed: u64) -> (f64, f64, f64, usize, usize) {
    let config = MetaverseConfig {
        rsu_count: 8,
        duration_s: 600.0,
        seed,
        ..MetaverseConfig::default()
    };
    let trace = Trace::generate(&TraceConfig {
        trips: 6,
        seed,
        ..TraceConfig::default()
    });
    let mut sim = MetaverseSim::new(
        config,
        vtm_sim::mobility::PerturbedHighway::default(),
        trace.to_vmu_entries(),
    );
    let report = sim.run(allocator);
    (
        report.aotm_summary.mean,
        report.aotm_summary.p95,
        report.downtime_summary.mean,
        report.migrations.len(),
        report.failed_migrations,
    )
}

/// One allocator scenario: returns (mean AoTM, p95 AoTM, mean downtime,
/// migration count, failure count).
type AllocatorRun = Box<dyn FnMut() -> (f64, f64, f64, usize, usize)>;

fn main() {
    println!("Supplementary — end-to-end AoTM by bandwidth allocator (6 VMUs, 8 RSUs, 600 s)\n");
    let mut table = ResultsTable::new([
        "allocator",
        "mean_aotm_s",
        "p95_aotm_s",
        "mean_downtime_s",
        "migrations",
        "failed",
    ]);

    let allocators: Vec<(f64, AllocatorRun)> = vec![
        (0.0, {
            Box::new(move || {
                let mut a = StackelbergAllocator::new(
                    MarketConfig::default(),
                    LinkBudget::default(),
                    PricingRule::StackelbergPerMigration,
                )
                .with_min_bandwidth_mhz(2.0);
                run_with(&mut a, 1)
            })
        }),
        (1.0, {
            Box::new(move || {
                let mut a = FixedAllocator { bandwidth_hz: 5e6 };
                run_with(&mut a, 1)
            })
        }),
        (2.0, {
            Box::new(move || {
                let mut a = EqualShareAllocator {
                    expected_concurrent: 6,
                };
                run_with(&mut a, 1)
            })
        }),
    ];

    let names = ["stackelberg-priced", "fixed-5MHz", "equal-share"];
    for (idx, (code, mut run)) in allocators.into_iter().enumerate() {
        let (mean_aotm, p95, downtime, migrations, failed) = run();
        println!(
            "{:<20} mean AoTM {:.3} s, p95 {:.3} s, downtime {:.4} s, {} migrations ({} failed)",
            names[idx], mean_aotm, p95, downtime, migrations, failed
        );
        table.push_row([
            code,
            mean_aotm,
            p95,
            downtime,
            migrations as f64,
            failed as f64,
        ]);
    }

    println!();
    table.print_and_save("exp_simulator_aotm");
    println!("(allocator codes: 0 = stackelberg-priced, 1 = fixed-5MHz, 2 = equal-share)");
}
