//! Machine-readable performance snapshot of the DRL hot paths.
//!
//! Writes `results/BENCH_ppo.json` with median timings of the PPO update
//! path (fused vs reference) at the paper's training shapes and of rollout
//! collection (serial vs vectorized), together with the shape metadata needed
//! to compare runs, so future PRs can track the performance trajectory:
//!
//! ```text
//! cargo run -p vtm-bench --bin bench_json --release
//! ```
//!
//! Iteration counts can be scaled with `VTM_BENCH_JSON_ITERS` (default 15).

use std::time::Instant;

use vtm_bench::{
    results_dir, rollout_bench_agent, update_bench_agent, update_bench_samples, FixedHorizonEnv,
};
use vtm_rl::buffer::RolloutBuffer;
use vtm_rl::vec_env::{CollectorConfig, ParallelCollector, VecEnv};

/// Samples fed to each `update` call (10 minibatches of 20 per epoch).
const UPDATE_SAMPLES: usize = 200;
/// Rollout benchmark scale: 64 episodes of 25 steps.
const ROLLOUT_EPISODES: usize = 64;
const ROLLOUT_HORIZON: usize = 25;

fn iters_from_env() -> usize {
    std::env::var("VTM_BENCH_JSON_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(15)
        .max(3)
}

/// Median wall-clock milliseconds of `f` over `iters` runs after 2 warm-ups.
fn median_ms<F: FnMut()>(mut f: F, iters: usize) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    times[times.len() / 2]
}

fn main() {
    let iters = iters_from_env();

    // ---- PPO update path: fused vs reference at the paper's shapes ----
    // The two paths are timed *interleaved*, one call of each per round, and
    // the speedup is the ratio of the paired medians: CPU frequency drift on
    // shared containers would otherwise dominate back-to-back medians.
    let mut fused_agent = update_bench_agent(3);
    let samples = update_bench_samples(&fused_agent, UPDATE_SAMPLES, 42);
    let mut reference_agent = fused_agent.clone();
    for _ in 0..2 {
        fused_agent.update(&samples);
        reference_agent.update_reference(&samples);
    }
    let mut fused_times = Vec::with_capacity(iters);
    let mut reference_times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        fused_agent.update(&samples);
        fused_times.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        reference_agent.update_reference(&samples);
        reference_times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let median = |times: &mut Vec<f64>| {
        times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        times[times.len() / 2]
    };
    let update_fused_ms = median(&mut fused_times);
    let update_reference_ms = median(&mut reference_times);
    let update_speedup = update_reference_ms / update_fused_ms;
    let cfg = fused_agent.config();
    let gradient_steps = cfg.update_epochs * UPDATE_SAMPLES.div_ceil(cfg.minibatch_size);

    // ---- Rollout collection: serial vs vectorized ----
    // Agent / env / collector construction stays outside the timed closures
    // so the recorded trajectory numbers measure collection only.
    let mut serial_agent = rollout_bench_agent();
    let mut serial_env = FixedHorizonEnv::new(ROLLOUT_HORIZON);
    let mut serial_buffer = RolloutBuffer::new();
    let rollout_serial_ms = median_ms(
        || {
            serial_buffer.clear();
            serial_agent.collect_episodes(
                &mut serial_env,
                ROLLOUT_EPISODES,
                ROLLOUT_HORIZON,
                &mut serial_buffer,
            );
        },
        iters,
    );
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let vectorized_agent = rollout_bench_agent();
    let mut venv = VecEnv::from_fn(ROLLOUT_EPISODES, |_| FixedHorizonEnv::new(ROLLOUT_HORIZON));
    let collector = ParallelCollector::new(
        CollectorConfig::new(1, ROLLOUT_HORIZON)
            .with_seed(7)
            .with_threads(0),
    );
    let rollout_vectorized_ms = median_ms(
        || {
            collector.collect(&vectorized_agent, &mut venv);
        },
        iters,
    );

    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let hidden = cfg
        .hidden
        .iter()
        .map(|h| h.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"ppo\",\n  \"generated_unix\": {generated_unix},\n  \"iters_per_measurement\": {iters},\n  \"shapes\": {{\n    \"obs_dim\": {obs},\n    \"action_dim\": {act},\n    \"hidden\": [{hidden}],\n    \"minibatch_size\": {mb},\n    \"update_epochs\": {epochs},\n    \"update_samples\": {samples_n},\n    \"rollout_episodes\": {rep},\n    \"rollout_horizon\": {rh}\n  }},\n  \"update\": {{\n    \"fused_ms\": {update_fused_ms:.4},\n    \"reference_ms\": {update_reference_ms:.4},\n    \"speedup\": {update_speedup:.3},\n    \"gradient_steps_per_call\": {gradient_steps}\n  }},\n  \"rollout\": {{\n    \"serial_ms\": {rollout_serial_ms:.4},\n    \"vectorized_ms\": {rollout_vectorized_ms:.4},\n    \"speedup\": {rollout_speedup:.3}\n  }},\n  \"host\": {{\n    \"cores\": {cores}\n  }}\n}}\n",
        obs = cfg.obs_dim,
        act = cfg.action_dim,
        mb = cfg.minibatch_size,
        epochs = cfg.update_epochs,
        samples_n = UPDATE_SAMPLES,
        rep = ROLLOUT_EPISODES,
        rh = ROLLOUT_HORIZON,
        rollout_speedup = rollout_serial_ms / rollout_vectorized_ms,
    );

    println!("{json}");
    println!(
        "update path: fused {update_fused_ms:.3} ms vs reference {update_reference_ms:.3} ms \
         ({update_speedup:.2}x) over {gradient_steps} gradient steps"
    );
    let path = results_dir().join("BENCH_ppo.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(saved to {})", path.display()),
        Err(err) => {
            eprintln!("error: could not write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}
