//! Thin wrapper over the manifest-driven runner: Fig. 2(a), the return of
//! every training episode. Equivalent to `experiments -- --figure fig2a`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig2a_convergence            # fast
//! cargo run -p vtm-bench --release --bin fig2a_convergence -- --full  # E = 500, K = 100
//! ```

fn main() {
    vtm_bench::experiments::main_single("fig2a");
}
