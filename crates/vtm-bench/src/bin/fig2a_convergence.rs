//! Figure 2(a): convergence of the DRL-based incentive mechanism — the return
//! (sum of Eq. (12) rewards) of every training episode.
//!
//! Paper setting: two VMUs with α₁ = α₂ = 5, D₁ = 200 MB, D₂ = 100 MB, C = 5.
//! The return converges towards the maximum number of rounds per episode as
//! the MSP learns to post (near-)optimal prices in every round.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig2a_convergence            # fast
//! cargo run -p vtm-bench --release --bin fig2a_convergence -- --full  # E = 500, K = 100
//! ```

use vtm_bench::{full_scale_requested, harness_drl_config, train_mechanism, ResultsTable};
use vtm_core::config::ExperimentConfig;
use vtm_core::env::RewardMode;

fn main() {
    let full = full_scale_requested();
    let mut config = ExperimentConfig::paper_two_vmus();
    config.drl = harness_drl_config(full, 0);
    let rounds = config.drl.rounds_per_episode as f64;

    println!(
        "Fig. 2(a) — return per episode (K = {} rounds, E = {} episodes, reward = Eq. (12))\n",
        config.drl.rounds_per_episode, config.drl.episodes
    );
    let (_, history) = train_mechanism(config, RewardMode::Improvement);

    let mut table = ResultsTable::new(["episode", "return", "max_return"]);
    for log in &history.episodes {
        table.push_row([log.episode as f64, log.episode_return, rounds]);
    }
    table.print_and_save("fig2a_convergence");

    let tail = history.tail_mean(20, |e| e.episode_return);
    println!(
        "tail-20 mean return = {:.1} of a maximum {rounds:.0} ({:.0}% of the max round count)",
        tail,
        100.0 * tail / rounds
    );
}
