//! Thin wrapper over the manifest-driven runner: Fig. 3(d), average VMU
//! utility and bandwidth vs the number of VMUs. Equivalent to
//! `experiments -- --figure fig3d`.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig3d_vmus_vmu            # fast
//! cargo run -p vtm-bench --release --bin fig3d_vmus_vmu -- --full  # paper-scale DRL training
//! ```

fn main() {
    vtm_bench::experiments::main_single("fig3d");
}
