//! Figure 3(d): the VMUs' average utility and average purchased bandwidth
//! versus the number of VMUs.
//!
//! Paper setting: N ∈ [2, 6] identical VMUs with 100 MB twins and α = 5.
//! Expected shape: with plentiful bandwidth both averages are flat (identical
//! VMUs face the same price); once bandwidth competition matters (tight cap)
//! the average bandwidth and the average utility decline with N — the paper
//! reports a 12.8 % drop in average VMU utility from N = 2 to N = 6.
//!
//! ```text
//! cargo run -p vtm-bench --release --bin fig3d_vmus_vmu            # fast
//! cargo run -p vtm-bench --release --bin fig3d_vmus_vmu -- --full  # paper-scale DRL training
//! ```

use vtm_bench::{full_scale_requested, harness_drl_config, train_mechanism, ResultsTable};
use vtm_core::config::ExperimentConfig;
use vtm_core::env::RewardMode;
use vtm_core::stackelberg::AotmStackelbergGame;

/// Tight aggregate bandwidth cap (MHz) reproducing the competition regime.
const TIGHT_CAP_MHZ: f64 = 0.45;

fn main() {
    let full = full_scale_requested();
    println!("Fig. 3(d) — average VMU utility and bandwidth vs number of VMUs\n");

    let mut table = ResultsTable::new([
        "n_vmus",
        "eq_avg_vmu_utility",
        "eq_avg_bandwidth_mhz",
        "drl_avg_vmu_utility",
        "drl_avg_bandwidth_mhz",
        "tightcap_avg_vmu_utility",
        "tightcap_avg_bandwidth_mhz",
    ]);

    let mut tight_first = None;
    let mut tight_last = None;
    for n in 2..=6usize {
        let mut config = ExperimentConfig::paper_n_vmus(n);
        config.drl = harness_drl_config(full, 400 + n as u64);
        let game = AotmStackelbergGame::from_config(&config);
        let eq = game.closed_form_equilibrium();

        let (mut mechanism, _) = train_mechanism(config, RewardMode::Improvement);
        let eval = mechanism.evaluate(100);
        let n_f = n as f64;

        let mut tight = ExperimentConfig::paper_n_vmus(n);
        tight.market.max_bandwidth_mhz = TIGHT_CAP_MHZ;
        let tight_eq = AotmStackelbergGame::from_config(&tight).closed_form_equilibrium();
        if n == 2 {
            tight_first = Some(tight_eq.average_vmu_utility());
        }
        if n == 6 {
            tight_last = Some(tight_eq.average_vmu_utility());
        }

        table.push_row([
            n_f,
            eq.average_vmu_utility(),
            eq.average_bandwidth_mhz(),
            eval.mean_total_vmu_utility / n_f,
            eval.mean_total_bandwidth_mhz / n_f,
            tight_eq.average_vmu_utility(),
            tight_eq.average_bandwidth_mhz(),
        ]);
    }

    table.print_and_save("fig3d_vmus_vmu");
    if let (Some(first), Some(last)) = (tight_first, tight_last) {
        println!(
            "tight-cap average VMU utility declines by {:.1}% from N = 2 to N = 6 (paper reports 12.8%)",
            100.0 * (first - last) / first.max(1e-12)
        );
    }
}
