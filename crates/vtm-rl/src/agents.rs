//! Simple non-neural agents: uniform-random, fixed-action and a tabular
//! epsilon-greedy bandit over a discretised action grid.
//!
//! These serve two purposes: they are cheap baselines for any
//! [`Environment`], and the epsilon-greedy bandit is the learning-theoretic
//! counterpart of the paper's "greedy" pricing scheme (remember the best
//! action seen, explore with decaying probability).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{ActionSpace, Environment};

/// A minimal agent interface for the simple baselines: pick an action for an
/// observation, then learn from the received reward.
pub trait SimpleAgent {
    /// Chooses an action for the observation.
    fn act(&mut self, observation: &[f64]) -> Vec<f64>;

    /// Informs the agent of the reward obtained by its last action.
    fn learn(&mut self, reward: f64);

    /// Resets any internal state (exploration schedules, statistics).
    fn reset(&mut self);
}

/// Samples every action uniformly from the action space.
#[derive(Debug, Clone)]
pub struct RandomAgent {
    space: ActionSpace,
    rng: StdRng,
    seed: u64,
}

impl RandomAgent {
    /// Creates a random agent for the given action space.
    pub fn new(space: ActionSpace, seed: u64) -> Self {
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl SimpleAgent for RandomAgent {
    fn act(&mut self, _observation: &[f64]) -> Vec<f64> {
        self.space
            .low
            .iter()
            .zip(self.space.high.iter())
            .map(|(&lo, &hi)| self.rng.gen_range(lo..=hi))
            .collect()
    }

    fn learn(&mut self, _reward: f64) {}

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Always plays the same action.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedAgent {
    action: Vec<f64>,
}

impl FixedAgent {
    /// Creates a fixed agent.
    pub fn new(action: Vec<f64>) -> Self {
        Self { action }
    }
}

impl SimpleAgent for FixedAgent {
    fn act(&mut self, _observation: &[f64]) -> Vec<f64> {
        self.action.clone()
    }

    fn learn(&mut self, _reward: f64) {}

    fn reset(&mut self) {}
}

/// Tabular epsilon-greedy bandit over a uniform discretisation of a
/// one-dimensional action space. Ignores the observation (a pure bandit),
/// which is sufficient for stationary pricing problems.
#[derive(Debug, Clone)]
pub struct EpsilonGreedyBandit {
    space: ActionSpace,
    arms: usize,
    epsilon: f64,
    epsilon_decay: f64,
    counts: Vec<u64>,
    values: Vec<f64>,
    last_arm: Option<usize>,
    rng: StdRng,
    seed: u64,
}

impl EpsilonGreedyBandit {
    /// Creates a bandit with `arms` discrete actions spread uniformly over the
    /// (one-dimensional) action space.
    ///
    /// # Panics
    ///
    /// Panics if the action space is not one-dimensional, `arms < 2`, or the
    /// exploration parameters are out of range.
    pub fn new(
        space: ActionSpace,
        arms: usize,
        epsilon: f64,
        epsilon_decay: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(space.dim(), 1, "the bandit supports scalar actions only");
        assert!(arms >= 2, "the bandit needs at least two arms");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&epsilon_decay),
            "epsilon decay must be in [0, 1]"
        );
        Self {
            space,
            arms,
            epsilon,
            epsilon_decay,
            counts: vec![0; arms],
            values: vec![0.0; arms],
            last_arm: None,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The action value of arm `i`.
    pub fn arm_action(&self, i: usize) -> f64 {
        let lo = self.space.low[0];
        let hi = self.space.high[0];
        lo + (hi - lo) * i as f64 / (self.arms - 1) as f64
    }

    /// The arm with the highest estimated value (ties to the lowest index).
    pub fn best_arm(&self) -> usize {
        let mut best = 0;
        for i in 1..self.arms {
            if self.values[i] > self.values[best] {
                best = i;
            }
        }
        best
    }

    /// Current exploration probability.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl SimpleAgent for EpsilonGreedyBandit {
    fn act(&mut self, _observation: &[f64]) -> Vec<f64> {
        let arm = if self.rng.gen::<f64>() < self.epsilon {
            self.rng.gen_range(0..self.arms)
        } else {
            self.best_arm()
        };
        self.last_arm = Some(arm);
        vec![self.arm_action(arm)]
    }

    fn learn(&mut self, reward: f64) {
        if let Some(arm) = self.last_arm.take() {
            self.counts[arm] += 1;
            let n = self.counts[arm] as f64;
            // Incremental sample-average update.
            self.values[arm] += (reward - self.values[arm]) / n;
            self.epsilon *= self.epsilon_decay;
        }
    }

    fn reset(&mut self) {
        self.counts = vec![0; self.arms];
        self.values = vec![0.0; self.arms];
        self.last_arm = None;
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Runs a [`SimpleAgent`] on an environment for `episodes` episodes of at most
/// `max_steps` steps and returns the per-episode returns.
pub fn run_simple_agent<A: SimpleAgent, E: Environment>(
    agent: &mut A,
    env: &mut E,
    episodes: usize,
    max_steps: usize,
) -> Vec<f64> {
    let mut returns = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        let mut obs = env.reset();
        let mut total = 0.0;
        for _ in 0..max_steps {
            let action = agent.act(&obs);
            let step = env.step(&action);
            agent.learn(step.reward);
            total += step.reward;
            obs = step.observation;
            if step.done {
                break;
            }
        }
        returns.push(total);
    }
    returns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Step;

    struct PeakBandit {
        target: f64,
    }

    impl Environment for PeakBandit {
        fn observation_dim(&self) -> usize {
            1
        }
        fn action_space(&self) -> ActionSpace {
            ActionSpace::scalar(0.0, 10.0)
        }
        fn reset(&mut self) -> Vec<f64> {
            vec![0.0]
        }
        fn step(&mut self, action: &[f64]) -> Step {
            Step {
                observation: vec![0.0],
                reward: 1.0 - ((action[0] - self.target) / 10.0).powi(2),
                done: true,
            }
        }
    }

    #[test]
    fn random_agent_stays_in_bounds_and_is_reproducible() {
        let space = ActionSpace::scalar(2.0, 8.0);
        let mut a = RandomAgent::new(space.clone(), 3);
        let mut b = RandomAgent::new(space.clone(), 3);
        for _ in 0..30 {
            let x = a.act(&[0.0]);
            assert_eq!(x, b.act(&[0.0]));
            assert!(space.contains(&x));
        }
        a.learn(1.0);
        a.reset();
        let mut fresh = RandomAgent::new(space, 3);
        assert_eq!(a.act(&[0.0]), fresh.act(&[0.0]));
    }

    #[test]
    fn fixed_agent_always_plays_its_action() {
        let mut agent = FixedAgent::new(vec![4.2]);
        for _ in 0..5 {
            assert_eq!(agent.act(&[1.0]), vec![4.2]);
        }
        agent.learn(0.0);
        agent.reset();
        assert_eq!(agent.act(&[0.0]), vec![4.2]);
    }

    #[test]
    fn bandit_arm_grid_spans_the_space() {
        let bandit = EpsilonGreedyBandit::new(ActionSpace::scalar(5.0, 50.0), 10, 0.5, 0.99, 0);
        assert_eq!(bandit.arm_action(0), 5.0);
        assert_eq!(bandit.arm_action(9), 50.0);
        assert!(bandit.arm_action(4) < bandit.arm_action(5));
    }

    #[test]
    fn bandit_learns_the_best_arm() {
        let mut env = PeakBandit { target: 7.0 };
        let mut bandit = EpsilonGreedyBandit::new(env.action_space(), 21, 1.0, 0.995, 11);
        run_simple_agent(&mut bandit, &mut env, 2000, 1);
        let best_action = bandit.arm_action(bandit.best_arm());
        assert!(
            (best_action - 7.0).abs() <= 1.0,
            "bandit converged to {best_action}, expected near 7"
        );
        assert!(bandit.epsilon() < 0.1, "exploration should have decayed");
    }

    #[test]
    fn bandit_reset_clears_estimates() {
        let mut env = PeakBandit { target: 3.0 };
        let mut bandit = EpsilonGreedyBandit::new(env.action_space(), 5, 0.5, 0.9, 0);
        run_simple_agent(&mut bandit, &mut env, 10, 1);
        bandit.reset();
        assert!(bandit.values.iter().all(|&v| v == 0.0));
        assert!(bandit.counts.iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "scalar actions only")]
    fn bandit_rejects_multidimensional_spaces() {
        let space = ActionSpace {
            low: vec![0.0, 0.0],
            high: vec![1.0, 1.0],
        };
        let _ = EpsilonGreedyBandit::new(space, 5, 0.1, 0.99, 0);
    }

    #[test]
    fn run_simple_agent_returns_one_value_per_episode() {
        let mut env = PeakBandit { target: 5.0 };
        let mut agent = FixedAgent::new(vec![5.0]);
        let returns = run_simple_agent(&mut agent, &mut env, 7, 3);
        assert_eq!(returns.len(), 7);
        assert!(returns.iter().all(|&r| (r - 1.0).abs() < 1e-12));
    }
}
