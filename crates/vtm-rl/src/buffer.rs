//! Rollout storage for on-policy learning.
//!
//! The paper's Algorithm 1 stores transitions `(o_k, p_k, R_k, o_{k+1})` into
//! a buffer `BF` and periodically samples mini-batches from it to update the
//! actor and critic. [`RolloutBuffer`] implements that storage together with
//! the advantage/return post-processing performed at the end of each episode.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::gae::{gae_advantages, normalize_advantages};

/// A single stored transition, including the quantities needed by PPO
/// (the behaviour policy's log-probability and the critic's value estimate).
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Observation the agent acted on.
    pub observation: Vec<f64>,
    /// Action taken (raw, unsquashed policy output).
    pub action: Vec<f64>,
    /// Log-probability of the action under the behaviour policy.
    pub log_prob: f64,
    /// Critic value estimate of `observation` at collection time.
    pub value: f64,
    /// Reward received.
    pub reward: f64,
    /// Whether the episode ended after this transition.
    pub done: bool,
}

/// A processed sample ready for a PPO update.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessedSample {
    /// Observation the agent acted on.
    pub observation: Vec<f64>,
    /// Action taken.
    pub action: Vec<f64>,
    /// Behaviour-policy log-probability of the action.
    pub old_log_prob: f64,
    /// Advantage estimate (normalised if requested).
    pub advantage: f64,
    /// Value-function regression target (`V^targ` in Eq. (16)).
    pub value_target: f64,
}

/// On-policy rollout buffer that accumulates whole episodes and converts them
/// into PPO-ready samples with GAE.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
    episode_starts: Vec<usize>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Stores a transition. The first transition of each episode is detected
    /// automatically from the previous transition's `done` flag.
    pub fn push(&mut self, transition: Transition) {
        let starts_new_episode = self.transitions.last().is_none_or(|prev| prev.done);
        if starts_new_episode {
            self.episode_starts.push(self.transitions.len());
        }
        self.transitions.push(transition);
    }

    /// Removes all stored data.
    pub fn clear(&mut self) {
        self.transitions.clear();
        self.episode_starts.clear();
    }

    /// Total reward of every stored episode, in collection order.
    pub fn episode_returns(&self) -> Vec<f64> {
        self.episode_slices()
            .into_iter()
            .map(|ep| ep.iter().map(|t| t.reward).sum())
            .collect()
    }

    fn episode_slices(&self) -> Vec<&[Transition]> {
        let mut out = Vec::with_capacity(self.episode_starts.len());
        for (idx, &start) in self.episode_starts.iter().enumerate() {
            let end = self
                .episode_starts
                .get(idx + 1)
                .copied()
                .unwrap_or(self.transitions.len());
            if start < end {
                out.push(&self.transitions[start..end]);
            }
        }
        out
    }

    /// Converts the stored episodes into PPO samples.
    ///
    /// `terminal_value` supplies the bootstrap value `V(S_K)` used for an
    /// episode whose final transition is *not* marked `done` (a truncated
    /// episode, as in the paper's fixed-length game of `K` rounds); episodes
    /// that terminate naturally bootstrap from zero.
    pub fn process(
        &self,
        gamma: f64,
        lambda: f64,
        terminal_value: f64,
        normalize: bool,
    ) -> Vec<ProcessedSample> {
        let mut samples = Vec::with_capacity(self.transitions.len());
        let mut advantages = Vec::with_capacity(self.transitions.len());
        for episode in self.episode_slices() {
            let rewards: Vec<f64> = episode.iter().map(|t| t.reward).collect();
            let values: Vec<f64> = episode.iter().map(|t| t.value).collect();
            let bootstrap = if episode.last().is_none_or(|t| t.done) {
                0.0
            } else {
                terminal_value
            };
            let (adv, targets) = gae_advantages(&rewards, &values, bootstrap, gamma, lambda);
            for (i, t) in episode.iter().enumerate() {
                advantages.push(adv[i]);
                samples.push(ProcessedSample {
                    observation: t.observation.clone(),
                    action: t.action.clone(),
                    old_log_prob: t.log_prob,
                    advantage: adv[i],
                    value_target: targets[i],
                });
            }
        }
        if normalize {
            let normalized = normalize_advantages(&advantages);
            for (sample, adv) in samples.iter_mut().zip(normalized) {
                sample.advantage = adv;
            }
        }
        samples
    }

    /// Splits `samples` into shuffled mini-batches of (at most) `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn minibatches<'a, R: Rng + ?Sized>(
        samples: &'a [ProcessedSample],
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<Vec<&'a ProcessedSample>> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut indices: Vec<usize> = (0..samples.len()).collect();
        indices.shuffle(rng);
        indices
            .chunks(batch_size)
            .map(|chunk| chunk.iter().map(|&i| &samples[i]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn transition(reward: f64, value: f64, done: bool) -> Transition {
        Transition {
            observation: vec![0.0, 1.0],
            action: vec![0.5],
            log_prob: -1.0,
            value,
            reward,
            done,
        }
    }

    #[test]
    fn push_tracks_episode_boundaries() {
        let mut buf = RolloutBuffer::new();
        assert!(buf.is_empty());
        buf.push(transition(1.0, 0.0, false));
        buf.push(transition(2.0, 0.0, true));
        buf.push(transition(3.0, 0.0, true));
        buf.push(transition(4.0, 0.0, false));
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.episode_returns(), vec![3.0, 3.0, 4.0]);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.0, true));
        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.episode_returns().is_empty());
    }

    #[test]
    fn process_computes_monte_carlo_targets_for_terminated_episode() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.25, false));
        buf.push(transition(1.0, 0.5, true));
        let samples = buf.process(1.0, 1.0, 99.0, false);
        // Terminal episode: bootstrap is zero, so targets are plain returns.
        assert_eq!(samples.len(), 2);
        assert!((samples[0].value_target - 2.0).abs() < 1e-12);
        assert!((samples[1].value_target - 1.0).abs() < 1e-12);
        assert!((samples[0].advantage - (2.0 - 0.25)).abs() < 1e-12);
    }

    #[test]
    fn process_bootstraps_truncated_episode() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(0.0, 0.0, false));
        let samples = buf.process(0.9, 1.0, 10.0, false);
        assert!((samples[0].value_target - 9.0).abs() < 1e-12);
    }

    #[test]
    fn normalised_advantages_have_zero_mean() {
        let mut buf = RolloutBuffer::new();
        for i in 0..8 {
            buf.push(transition(i as f64, 0.0, i == 7));
        }
        let samples = buf.process(0.99, 0.95, 0.0, true);
        let mean: f64 = samples.iter().map(|s| s.advantage).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn minibatches_cover_all_samples_exactly_once() {
        let mut buf = RolloutBuffer::new();
        for i in 0..10 {
            buf.push(transition(i as f64, 0.0, i == 9));
        }
        let samples = buf.process(0.99, 0.95, 0.0, false);
        let mut rng = StdRng::seed_from_u64(5);
        let batches = RolloutBuffer::minibatches(&samples, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        let mut seen: Vec<f64> = batches
            .iter()
            .flat_map(|b| b.iter().map(|s| s.value_target))
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // All distinct targets present → every sample appears exactly once.
        for w in seen.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RolloutBuffer::minibatches(&[], 0, &mut rng);
    }

    #[test]
    fn clone_roundtrip() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.5, true));
        let back = buf.clone();
        assert_eq!(buf, back);
    }
}
