//! # vtm-rl — deep-reinforcement-learning substrate
//!
//! The learning machinery used by the paper's incentive mechanism (§IV):
//! a partially observable environment abstraction, rollout storage,
//! Generalized Advantage Estimation, a diagonal-Gaussian policy, a PPO
//! actor-critic agent built on the [`vtm_nn`] network substrate, and a
//! vectorized rollout engine ([`vec_env`]) that collects episodes from many
//! environment replicas with batched forward passes and chunk-level thread
//! parallelism — deterministically for a fixed seed.
//!
//! The crate is deliberately domain-agnostic: the Stackelberg pricing
//! environment itself lives in `vtm-core`, which plugs into the
//! [`env::Environment`] trait defined here.
//!
//! # Example
//!
//! ```
//! use vtm_rl::prelude::*;
//!
//! // A one-step environment: reward is highest when the action is 0.25.
//! struct Toy;
//! impl Environment for Toy {
//!     fn observation_dim(&self) -> usize { 1 }
//!     fn action_space(&self) -> ActionSpace { ActionSpace::scalar(0.0, 1.0) }
//!     fn reset(&mut self) -> Vec<f64> { vec![0.0] }
//!     fn step(&mut self, action: &[f64]) -> Step {
//!         Step { observation: vec![0.0], reward: -(action[0] - 0.25).powi(2), done: true }
//!     }
//! }
//!
//! let mut env = Toy;
//! let config = PpoConfig::new(1, 1).with_seed(1);
//! let mut agent = PpoAgent::new(config, env.action_space());
//! // One tiny training iteration (a real run uses many more).
//! let history = agent.train(&mut env, 1, 4, 1);
//! assert_eq!(history.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod buffer;
pub mod distribution;
pub mod env;
pub mod gae;
pub mod ppo;
pub mod running_stat;
pub mod snapshot;
pub mod trainer;
pub mod vec_env;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::agents::{
        run_simple_agent, EpsilonGreedyBandit, FixedAgent, RandomAgent, SimpleAgent,
    };
    pub use crate::buffer::{ProcessedSample, RolloutBuffer, Transition};
    pub use crate::distribution::DiagGaussian;
    pub use crate::env::{ActionSpace, Environment, Step};
    pub use crate::gae::{discounted_returns, gae_advantages, normalize_advantages};
    pub use crate::ppo::{ActionSample, PpoAgent, PpoConfig, PpoUpdateStats};
    pub use crate::running_stat::{LinearSchedule, RunningMeanStd};
    pub use crate::snapshot::{PolicySnapshot, SnapshotError};
    pub use crate::trainer::{EpisodeEvent, Trainer, TrainerReport};
    pub use crate::vec_env::{
        CollectedRollouts, CollectorConfig, EnvRollout, ParallelCollector, VecEnv,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let space = ActionSpace::scalar(0.0, 1.0);
        assert_eq!(space.dim(), 1);
    }
}
