//! Versioned policy checkpoints: the durable form of a trained agent.
//!
//! A [`PolicySnapshot`] captures *everything* that determines a
//! [`PpoAgent`](crate::ppo::PpoAgent)'s future behaviour — actor and critic networks, the policy
//! log-std, both Adam moment sets, the log-std optimizer, the agent's RNG
//! position and the optional observation normalizer — so that
//!
//! * `snapshot → restore` reproduces the agent bit-for-bit,
//! * `save_to → load_from` survives a process boundary with the same
//!   guarantee (the on-disk format stores exact `f64` bit patterns), and
//! * training `k` episodes, checkpointing, and resuming for `n − k` episodes
//!   is indistinguishable from training `n` episodes in one run.
//!
//! Files use the [`vtm_nn::codec`] container (magic, version, kind,
//! checksum), so corrupt or truncated checkpoints fail with a typed
//! [`SnapshotError`] — never a panic — and a bare network file cannot be
//! loaded as a policy by mistake.

use std::fmt;
use std::path::Path;

use vtm_nn::codec::{CodecError, PayloadReader, PayloadWriter, WeightCodec, KIND_POLICY};
use vtm_nn::mlp::Mlp;
use vtm_nn::optimizer::{Adam, VectorAdam};

use crate::env::ActionSpace;
use crate::ppo::PpoConfig;
use crate::running_stat::RunningMeanStd;

/// Typed failure modes of snapshot persistence.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying container or payload was unreadable (i/o, bad magic,
    /// unsupported version, checksum mismatch, truncation, wrong kind).
    Codec(CodecError),
    /// The file decoded but describes an inconsistent policy (e.g. a network
    /// whose shape disagrees with the stored configuration).
    Incompatible(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Codec(err) => write!(f, "snapshot codec error: {err}"),
            SnapshotError::Incompatible(msg) => write!(f, "incompatible snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Codec(err) => Some(err),
            SnapshotError::Incompatible(_) => None,
        }
    }
}

impl From<CodecError> for SnapshotError {
    fn from(err: CodecError) -> Self {
        SnapshotError::Codec(err)
    }
}

/// The complete persisted state of a PPO policy. Produced by
/// [`PpoAgent::snapshot`](crate::ppo::PpoAgent::snapshot), consumed by
/// [`PpoAgent::restore`](crate::ppo::PpoAgent::restore) and by the serving
/// layer (which only reads the frozen actor side).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySnapshot {
    /// The agent's hyper-parameters (also pins obs/action dimensions).
    pub config: PpoConfig,
    /// The environment action space the policy was trained for.
    pub action_space: ActionSpace,
    /// Actor network (observation → Gaussian mean).
    pub actor: Mlp,
    /// Critic network (observation → value).
    pub critic: Mlp,
    /// Trainable log standard deviation of the Gaussian policy.
    pub log_std: Vec<f64>,
    /// Actor optimizer state (moments + step counter).
    pub actor_optimizer: Adam,
    /// Critic optimizer state.
    pub critic_optimizer: Adam,
    /// Log-std optimizer state.
    pub log_std_optimizer: VectorAdam,
    /// How many internal RNG streams the agent has consumed; restoring it
    /// keeps the exploration-noise sequence aligned across a checkpoint.
    pub rng_draws: u64,
    /// Optional frozen observation normalizer.
    pub obs_normalizer: Option<RunningMeanStd>,
    /// Training rounds completed when the snapshot was taken. The agent
    /// itself does not consume this; the [`Trainer`](crate::trainer::Trainer)
    /// stores and reads it so a resumed run continues the per-round
    /// environment and collector seed schedule exactly where it stopped.
    pub trained_rounds: u64,
    /// Environment replicas per collection round of the run that produced
    /// the snapshot (`0` = unrecorded). The `(seed, round, replica)` seed
    /// schedule is parameterized by this count, so a resumed run must reuse
    /// it to stay bit-identical to an uninterrupted run; resume tooling
    /// defaults to this value when the caller does not override it.
    pub trained_collectors: u64,
}

impl PolicySnapshot {
    /// Overrides the recorded training-round counter (builder style).
    pub fn with_trained_rounds(mut self, rounds: u64) -> Self {
        self.trained_rounds = rounds;
        self
    }

    /// Overrides the recorded collector count (builder style).
    pub fn with_trained_collectors(mut self, collectors: u64) -> Self {
        self.trained_collectors = collectors;
        self
    }

    /// Checks the snapshot's internal consistency: hyper-parameter ranges,
    /// network shapes against the configuration, optimizer moment shapes
    /// against their networks, log-std length against the action dimension,
    /// and the normalizer dimension against the observation dimension — so a
    /// well-framed but corrupt file is rejected with a typed error here
    /// instead of panicking inside
    /// [`PpoAgent::restore`](crate::ppo::PpoAgent::restore) or a later
    /// update step.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Incompatible`] naming the first mismatch.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let err = |msg: String| Err(SnapshotError::Incompatible(msg));
        self.config
            .check()
            .map_err(|msg| SnapshotError::Incompatible(format!("config: {msg}")))?;
        if self.actor.input_dim() != self.config.obs_dim {
            return err(format!(
                "actor input {} != obs_dim {}",
                self.actor.input_dim(),
                self.config.obs_dim
            ));
        }
        if self.actor.output_dim() != self.config.action_dim {
            return err(format!(
                "actor output {} != action_dim {}",
                self.actor.output_dim(),
                self.config.action_dim
            ));
        }
        if self.critic.input_dim() != self.config.obs_dim || self.critic.output_dim() != 1 {
            return err(format!(
                "critic shape {}x{} != {}x1",
                self.critic.input_dim(),
                self.critic.output_dim(),
                self.config.obs_dim
            ));
        }
        if self.log_std.len() != self.config.action_dim {
            return err(format!(
                "log-std length {} != action_dim {}",
                self.log_std.len(),
                self.config.action_dim
            ));
        }
        if self.action_space.dim() != self.config.action_dim {
            return err(format!(
                "action space dimension {} != action_dim {}",
                self.action_space.dim(),
                self.config.action_dim
            ));
        }
        for (d, (lo, hi)) in self
            .action_space
            .low
            .iter()
            .zip(self.action_space.high.iter())
            .enumerate()
        {
            if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                return err(format!(
                    "action space bounds [{lo}, {hi}] of dimension {d} are not finite low < high"
                ));
            }
        }
        if self.log_std.iter().any(|v| !v.is_finite()) {
            return err("log-std contains non-finite values".to_string());
        }
        // The hidden-layer chain must match the stored networks, or a
        // restored agent would carry (and re-serialize) wrong architecture
        // metadata.
        for (name, net, out_dim) in [
            ("actor", &self.actor, self.config.action_dim),
            ("critic", &self.critic, 1),
        ] {
            let widths: Vec<usize> = net.layers().iter().map(|l| l.fan_out()).collect();
            let mut expected = self.config.hidden.clone();
            expected.push(out_dim);
            if widths != expected {
                return err(format!(
                    "{name} layer widths {widths:?} != configured hidden {:?} + output {out_dim}",
                    self.config.hidden
                ));
            }
        }
        if !self.actor_optimizer.state_matches(&self.actor) {
            return err("actor optimizer moments do not match the actor network".to_string());
        }
        if !self.critic_optimizer.state_matches(&self.critic) {
            return err("critic optimizer moments do not match the critic network".to_string());
        }
        if self.log_std_optimizer.dim() != self.config.action_dim {
            return err(format!(
                "log-std optimizer dimension {} != action_dim {}",
                self.log_std_optimizer.dim(),
                self.config.action_dim
            ));
        }
        if let Some(rms) = &self.obs_normalizer {
            if rms.dim() != self.config.obs_dim {
                return err(format!(
                    "normalizer dimension {} != obs_dim {}",
                    rms.dim(),
                    self.config.obs_dim
                ));
            }
        }
        Ok(())
    }

    /// Serializes the snapshot into a payload writer.
    fn write_into(&self, w: &mut PayloadWriter) {
        let c = &self.config;
        w.write_usize(c.obs_dim);
        w.write_usize(c.action_dim);
        w.write_usize_vec(&c.hidden);
        w.write_f64(c.actor_lr);
        w.write_f64(c.critic_lr);
        w.write_f64(c.gamma);
        w.write_f64(c.gae_lambda);
        w.write_f64(c.clip_epsilon);
        w.write_f64(c.value_loss_coef);
        w.write_f64(c.entropy_coef);
        w.write_usize(c.update_epochs);
        w.write_usize(c.minibatch_size);
        w.write_f64(c.initial_log_std);
        w.write_f64(c.min_log_std);
        w.write_f64(c.max_grad_norm);
        w.write_bool(c.normalize_advantages);
        w.write_u64(c.seed);
        w.write_f64_vec(&self.action_space.low);
        w.write_f64_vec(&self.action_space.high);
        self.actor.write_into(w);
        self.critic.write_into(w);
        w.write_f64_vec(&self.log_std);
        self.actor_optimizer.write_into(w);
        self.critic_optimizer.write_into(w);
        self.log_std_optimizer.write_into(w);
        w.write_u64(self.rng_draws);
        match &self.obs_normalizer {
            Some(rms) => {
                w.write_bool(true);
                let (count, mean, m2) = rms.state();
                w.write_f64(count);
                w.write_f64_vec(mean);
                w.write_f64_vec(m2);
            }
            None => w.write_bool(false),
        }
        w.write_u64(self.trained_rounds);
        w.write_u64(self.trained_collectors);
    }

    /// Deserializes a snapshot from a payload reader.
    fn read_from(r: &mut PayloadReader<'_>) -> Result<Self, SnapshotError> {
        let obs_dim = r.read_usize()?;
        let action_dim = r.read_usize()?;
        if obs_dim == 0 || action_dim == 0 {
            return Err(SnapshotError::Incompatible(
                "observation and action dimensions must be positive".to_string(),
            ));
        }
        let mut config = PpoConfig::new(obs_dim, action_dim);
        config.hidden = r.read_usize_vec()?;
        config.actor_lr = r.read_f64()?;
        config.critic_lr = r.read_f64()?;
        config.gamma = r.read_f64()?;
        config.gae_lambda = r.read_f64()?;
        config.clip_epsilon = r.read_f64()?;
        config.value_loss_coef = r.read_f64()?;
        config.entropy_coef = r.read_f64()?;
        config.update_epochs = r.read_usize()?;
        config.minibatch_size = r.read_usize()?;
        config.initial_log_std = r.read_f64()?;
        config.min_log_std = r.read_f64()?;
        config.max_grad_norm = r.read_f64()?;
        config.normalize_advantages = r.read_bool()?;
        config.seed = r.read_u64()?;
        let low = r.read_f64_vec()?;
        let high = r.read_f64_vec()?;
        if low.len() != high.len() || low.is_empty() {
            return Err(SnapshotError::Incompatible(
                "action space bounds disagree in length".to_string(),
            ));
        }
        let action_space = ActionSpace { low, high };
        let actor = Mlp::read_from(r)?;
        let critic = Mlp::read_from(r)?;
        let log_std = r.read_f64_vec()?;
        let actor_optimizer = Adam::read_from(r)?;
        let critic_optimizer = Adam::read_from(r)?;
        let log_std_optimizer = VectorAdam::read_from(r)?;
        let rng_draws = r.read_u64()?;
        let obs_normalizer = if r.read_bool()? {
            let count = r.read_f64()?;
            let mean = r.read_f64_vec()?;
            let m2 = r.read_f64_vec()?;
            if mean.is_empty() || mean.len() != m2.len() || !count.is_finite() || count < 0.0 {
                return Err(SnapshotError::Incompatible(
                    "normalizer state is inconsistent".to_string(),
                ));
            }
            Some(RunningMeanStd::from_state(count, mean, m2))
        } else {
            None
        };
        let trained_rounds = r.read_u64()?;
        let trained_collectors = r.read_u64()?;
        let snapshot = Self {
            config,
            action_space,
            actor,
            critic,
            log_std,
            actor_optimizer,
            critic_optimizer,
            log_std_optimizer,
            rng_draws,
            obs_normalizer,
            trained_rounds,
            trained_collectors,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Serializes the snapshot into framed container bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        self.write_into(&mut w);
        WeightCodec::encode(KIND_POLICY, w.as_bytes())
    }

    /// Decodes a snapshot from framed container bytes.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapshotError`] for every form of corruption —
    /// wrong magic, unsupported version, wrong payload kind, checksum
    /// mismatch, truncation or inconsistent contents.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let payload = WeightCodec::decode(bytes, KIND_POLICY)?;
        let mut r = PayloadReader::new(payload);
        let snapshot = Self::read_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Incompatible(format!(
                "{} trailing bytes after the snapshot",
                r.remaining()
            )));
        }
        Ok(snapshot)
    }

    /// Writes the snapshot to `path` in the versioned checkpoint format.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Codec`] when the file cannot be written.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| SnapshotError::Codec(CodecError::Io(e)))
    }

    /// Reads a snapshot written by [`PolicySnapshot::save_to`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapshotError`]; corrupt or truncated files never
    /// panic.
    pub fn load_from(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let bytes =
            std::fs::read(path.as_ref()).map_err(|e| SnapshotError::Codec(CodecError::Io(e)))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ActionSpace, Environment, Step};
    use crate::ppo::PpoAgent;

    struct Line;
    impl Environment for Line {
        fn observation_dim(&self) -> usize {
            2
        }
        fn action_space(&self) -> ActionSpace {
            ActionSpace::scalar(0.0, 1.0)
        }
        fn reset(&mut self) -> Vec<f64> {
            vec![0.5, -0.5]
        }
        fn step(&mut self, action: &[f64]) -> Step {
            Step {
                observation: vec![0.5, -0.5],
                reward: -(action[0] - 0.3).powi(2),
                done: true,
            }
        }
    }

    fn trained_agent(seed: u64) -> PpoAgent {
        let mut env = Line;
        let mut agent = PpoAgent::new(
            PpoConfig::new(2, 1).with_seed(seed),
            ActionSpace::scalar(0.0, 1.0),
        );
        agent.train(&mut env, 3, 8, 1);
        agent
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vtm_snapshot_{tag}_{}.vtm", std::process::id()))
    }

    #[test]
    fn snapshot_restore_is_bit_identical_in_memory() {
        let agent = trained_agent(3);
        let restored = PpoAgent::restore(&agent.snapshot());
        assert_eq!(agent, restored);
        // Deterministic actions agree exactly.
        let obs = [0.5, -0.5];
        assert_eq!(
            agent.act_deterministic(&obs),
            restored.act_deterministic(&obs)
        );
        assert_eq!(agent.value(&obs).to_bits(), restored.value(&obs).to_bits());
    }

    #[test]
    fn snapshot_survives_a_file_round_trip_bit_exactly() {
        let mut agent = trained_agent(5);
        let mut rms = RunningMeanStd::new(2);
        rms.update(&[0.1, 0.2]);
        rms.update(&[0.3, -0.4]);
        rms.update(&[0.0, 0.9]);
        agent.set_obs_normalizer(Some(rms));
        let snapshot = agent.snapshot().with_trained_rounds(7);
        let path = temp_path("roundtrip");
        snapshot.save_to(&path).unwrap();
        let loaded = PolicySnapshot::load_from(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(snapshot, loaded);
        assert_eq!(loaded.trained_rounds, 7);
        let restored = PpoAgent::restore(&loaded);
        assert_eq!(agent, restored);
    }

    #[test]
    fn restored_agent_continues_training_identically() {
        let mut original = trained_agent(11);
        let mut resumed = PpoAgent::restore(&original.snapshot());
        let mut env_a = Line;
        let mut env_b = Line;
        let ha = original.train(&mut env_a, 2, 8, 1);
        let hb = resumed.train(&mut env_b, 2, 8, 1);
        assert_eq!(ha, hb);
        assert_eq!(original, resumed);
    }

    #[test]
    fn corrupt_snapshot_files_yield_typed_errors() {
        let agent = trained_agent(13);
        let snapshot = agent.snapshot();
        let path = temp_path("corrupt");
        snapshot.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(matches!(
            PolicySnapshot::from_bytes(&bad),
            Err(SnapshotError::Codec(CodecError::BadMagic { .. }))
        ));
        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 200;
        assert!(matches!(
            PolicySnapshot::from_bytes(&bad),
            Err(SnapshotError::Codec(CodecError::UnsupportedVersion { .. }))
        ));
        // Checksum mismatch.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(matches!(
            PolicySnapshot::from_bytes(&bad),
            Err(SnapshotError::Codec(CodecError::ChecksumMismatch { .. }))
        ));
        // Truncation.
        bytes.truncate(bytes.len() - 24);
        assert!(matches!(
            PolicySnapshot::from_bytes(&bytes),
            Err(SnapshotError::Codec(CodecError::Truncated { .. }))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn network_files_cannot_be_loaded_as_policies() {
        let agent = trained_agent(17);
        let path = temp_path("wrong_kind");
        agent.actor().save_to(&path).unwrap();
        assert!(matches!(
            PolicySnapshot::load_from(&path),
            Err(SnapshotError::Codec(CodecError::WrongKind { .. }))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn well_framed_but_invalid_contents_are_typed_errors_not_panics() {
        let agent = trained_agent(23);

        // Out-of-range hyper-parameters survive the checksum (it is not
        // tamper-proof) but must be rejected at decode, before restore.
        let mut snapshot = agent.snapshot();
        snapshot.config.minibatch_size = 0;
        match PolicySnapshot::from_bytes(&snapshot.to_bytes()) {
            Err(SnapshotError::Incompatible(msg)) => assert!(msg.contains("minibatch_size")),
            other => panic!("expected Incompatible, got {other:?}"),
        }

        let mut snapshot = agent.snapshot();
        snapshot.config.gamma = f64::NAN;
        assert!(matches!(
            PolicySnapshot::from_bytes(&snapshot.to_bytes()),
            Err(SnapshotError::Incompatible(_))
        ));

        // Inverted or non-finite action bounds would quote garbage prices.
        let mut snapshot = agent.snapshot();
        snapshot.action_space = ActionSpace {
            low: vec![50.0],
            high: vec![5.0],
        };
        match PolicySnapshot::from_bytes(&snapshot.to_bytes()) {
            Err(SnapshotError::Incompatible(msg)) => {
                assert!(msg.contains("bounds"), "got: {msg}")
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
        let mut snapshot = agent.snapshot();
        snapshot.log_std = vec![f64::INFINITY];
        assert!(matches!(
            PolicySnapshot::from_bytes(&snapshot.to_bytes()),
            Err(SnapshotError::Incompatible(_))
        ));

        // Optimizer moments that disagree with their network are caught too:
        // train an agent with a different architecture and graft its
        // optimizer into the snapshot.
        let mut other_cfg = PpoConfig::new(2, 1).with_seed(1);
        other_cfg.hidden = vec![8];
        let mut trained_other = PpoAgent::new(other_cfg, ActionSpace::scalar(0.0, 1.0));
        let mut env = Line;
        trained_other.train(&mut env, 1, 4, 1);
        let mut snapshot = agent.snapshot();
        snapshot.actor_optimizer = trained_other.snapshot().actor_optimizer;
        match PolicySnapshot::from_bytes(&snapshot.to_bytes()) {
            Err(SnapshotError::Incompatible(msg)) => {
                assert!(msg.contains("actor optimizer"), "got: {msg}")
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_snapshots_fail_validation() {
        let a = trained_agent(19);
        let b = PpoAgent::new(
            PpoConfig::new(3, 1).with_seed(0),
            ActionSpace::scalar(0.0, 1.0),
        );
        let mut snapshot = a.snapshot();
        snapshot.actor = b.actor().clone();
        assert!(matches!(
            snapshot.validate(),
            Err(SnapshotError::Incompatible(_))
        ));
        let display = snapshot.validate().unwrap_err().to_string();
        assert!(display.contains("actor input"));
    }
}
