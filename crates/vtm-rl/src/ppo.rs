//! Proximal Policy Optimization with a Gaussian policy and an MLP actor-critic.
//!
//! This is the learning algorithm of the paper's §IV: an actor network maps
//! the MSP's observation to the mean of a Gaussian over the pricing action,
//! a critic network estimates the state value, and both are updated with the
//! clipped surrogate objective (Eqs. 14–19) on mini-batches sampled from the
//! rollout buffer, with advantages computed by Generalized Advantage
//! Estimation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rand::seq::SliceRandom;
use vtm_nn::matrix::Matrix;
use vtm_nn::mlp::{Mlp, MlpConfig, MlpGrads, TrainWorkspace};
use vtm_nn::optimizer::{Adam, Optimizer, VectorAdam};

use crate::buffer::{ProcessedSample, RolloutBuffer, Transition};
use crate::distribution::DiagGaussian;
use crate::env::{ActionSpace, Environment};
use crate::running_stat::RunningMeanStd;
use crate::snapshot::PolicySnapshot;

/// Hyper-parameters of the PPO agent.
///
/// The defaults follow the paper's §V-A experimental settings where stated
/// (two hidden layers of 64 units, learning rate `1e-5`, `M = 10` update
/// epochs, mini-batch size `|I| = 20`) and standard PPO practice elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct PpoConfig {
    /// Observation dimensionality.
    pub obs_dim: usize,
    /// Action dimensionality.
    pub action_dim: usize,
    /// Hidden layer widths shared by actor and critic.
    pub hidden: Vec<usize>,
    /// Learning rate of the actor (and the policy log-std).
    pub actor_lr: f64,
    /// Learning rate of the critic.
    pub critic_lr: f64,
    /// Reward discount factor γ.
    pub gamma: f64,
    /// GAE smoothing factor λ (λ = 1 reproduces the paper's Eq. (18)).
    pub gae_lambda: f64,
    /// PPO clipping parameter ε of Eq. (19).
    pub clip_epsilon: f64,
    /// Coefficient `c` of the value-function loss in Eq. (14).
    pub value_loss_coef: f64,
    /// Entropy-bonus coefficient encouraging exploration.
    pub entropy_coef: f64,
    /// Number of optimisation epochs per update (`M` in Algorithm 1).
    pub update_epochs: usize,
    /// Mini-batch size (`|I|` in Algorithm 1).
    pub minibatch_size: usize,
    /// Initial log standard deviation of the Gaussian policy.
    pub initial_log_std: f64,
    /// Lower bound applied to the log standard deviation during training.
    pub min_log_std: f64,
    /// Global gradient-norm clip applied to actor and critic gradients.
    pub max_grad_norm: f64,
    /// Whether advantages are normalised per update.
    pub normalize_advantages: bool,
    /// Seed for network initialisation and sampling.
    pub seed: u64,
}

impl PpoConfig {
    /// Creates a configuration with the paper's defaults for the given
    /// observation and action dimensions.
    pub fn new(obs_dim: usize, action_dim: usize) -> Self {
        Self {
            obs_dim,
            action_dim,
            hidden: vec![64, 64],
            actor_lr: 3e-4,
            critic_lr: 1e-3,
            gamma: 0.95,
            gae_lambda: 0.95,
            clip_epsilon: 0.2,
            value_loss_coef: 0.5,
            entropy_coef: 0.01,
            update_epochs: 10,
            minibatch_size: 20,
            initial_log_std: -0.5,
            min_log_std: -4.0,
            max_grad_norm: 0.5,
            normalize_advantages: true,
            seed: 0,
        }
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks every hyper-parameter range, returning a description of the
    /// first problem. Used both by [`PpoAgent::new`] (which panics on `Err`)
    /// and by the snapshot loader, which must reject a well-framed but
    /// corrupt checkpoint with a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending parameter.
    pub fn check(&self) -> Result<(), String> {
        if self.obs_dim == 0 {
            return Err("obs_dim must be positive".to_string());
        }
        if self.action_dim == 0 {
            return Err("action_dim must be positive".to_string());
        }
        let positive_finite = |v: f64| v.is_finite() && v > 0.0;
        if !positive_finite(self.actor_lr) || !positive_finite(self.critic_lr) {
            return Err("learning rates must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err("gamma must be in [0,1]".to_string());
        }
        if !(0.0..=1.0).contains(&self.gae_lambda) {
            return Err("lambda must be in [0,1]".to_string());
        }
        if !positive_finite(self.clip_epsilon) {
            return Err("clip epsilon must be positive".to_string());
        }
        if self.update_epochs == 0 {
            return Err("update_epochs must be positive".to_string());
        }
        if self.minibatch_size == 0 {
            return Err("minibatch_size must be positive".to_string());
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }
}

/// Statistics of one PPO update, useful for monitoring convergence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PpoUpdateStats {
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f64,
    /// Mean value-function loss (before the `c` coefficient).
    pub value_loss: f64,
    /// Mean policy entropy.
    pub entropy: f64,
    /// Mean approximate KL divergence between old and new policy.
    pub approx_kl: f64,
    /// Fraction of samples whose importance ratio was clipped.
    pub clip_fraction: f64,
    /// Number of gradient steps performed.
    pub gradient_steps: usize,
}

/// An action sampled from the policy together with the quantities PPO must store.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionSample {
    /// Raw (unsquashed) policy output; this is what the buffer must store.
    pub raw_action: Vec<f64>,
    /// Action mapped into the environment's action space.
    pub env_action: Vec<f64>,
    /// Log-probability of `raw_action` under the current policy.
    pub log_prob: f64,
    /// Critic value estimate of the observation.
    pub value: f64,
}

/// Reusable buffers for the fused, allocation-free PPO update path.
///
/// The agent owns one workspace for its whole lifetime: minibatch gathers,
/// forward/backward caches ([`TrainWorkspace`]), gradient scratch
/// ([`MlpGrads`]) and the batched-Gaussian intermediates are all resized in
/// place, so steady-state updates perform zero heap allocation.
#[derive(Debug, Clone, PartialEq, Default)]
struct UpdateWorkspace {
    /// Shuffled sample indices, re-dealt each epoch.
    indices: Vec<usize>,
    /// Gathered minibatch observations (`batch x obs_dim`).
    obs: Matrix,
    /// Gathered minibatch actions (`batch x action_dim`).
    actions: Matrix,
    /// Gathered behaviour-policy log-probabilities.
    old_log_probs: Vec<f64>,
    /// Gathered advantages.
    advantages: Vec<f64>,
    /// Gathered value targets.
    value_targets: Vec<f64>,
    /// New-policy log-probabilities (batched Gaussian output).
    new_log_probs: Vec<f64>,
    /// Batched `d log_prob / d mean` rows.
    grad_mean_rows: Matrix,
    /// Batched `d log_prob / d log_std` rows.
    grad_log_std_rows: Matrix,
    /// Loss gradient w.r.t. the actor output (means).
    grad_mean: Matrix,
    /// Loss gradient w.r.t. the critic output (values).
    grad_values: Matrix,
    /// Accumulated log-std gradient.
    grad_log_std: Vec<f64>,
    /// Actor forward/backward caches.
    actor_ws: TrainWorkspace,
    /// Critic forward/backward caches.
    critic_ws: TrainWorkspace,
    /// Actor parameter-gradient scratch.
    actor_grads: MlpGrads,
    /// Critic parameter-gradient scratch.
    critic_grads: MlpGrads,
    /// One Gaussian reused across all minibatches (mean/log-std are copied
    /// in place, never reallocated).
    dist: Option<DiagGaussian>,
}

/// The PPO agent: Gaussian actor, value critic and their optimizers.
#[derive(Debug, Clone)]
pub struct PpoAgent {
    config: PpoConfig,
    action_space: ActionSpace,
    actor: Mlp,
    critic: Mlp,
    log_std: Vec<f64>,
    actor_optimizer: Adam,
    critic_optimizer: Adam,
    log_std_optimizer: VectorAdam,
    rng: StdRngState,
    /// Optional frozen observation normalizer applied before every actor and
    /// critic forward pass. `None` (the default) leaves observations
    /// untouched; a serving deployment typically loads one from a
    /// [`PolicySnapshot`].
    obs_normalizer: Option<RunningMeanStd>,
    /// Scratch for the fused update path; excluded from [`PartialEq`] because
    /// it is pure cache (its contents never influence future results).
    update_ws: UpdateWorkspace,
}

impl PartialEq for PpoAgent {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.action_space == other.action_space
            && self.actor == other.actor
            && self.critic == other.critic
            && self.log_std == other.log_std
            && self.actor_optimizer == other.actor_optimizer
            && self.critic_optimizer == other.critic_optimizer
            && self.log_std_optimizer == other.log_std_optimizer
            && self.rng == other.rng
            && self.obs_normalizer == other.obs_normalizer
    }
}

/// Serializable wrapper around the RNG seed/state. The RNG itself is rebuilt
/// from the stored seed and a draw counter so that agents can be serialised.
#[derive(Debug, Clone, PartialEq)]
struct StdRngState {
    seed: u64,
    draws: u64,
}

impl PpoAgent {
    /// Builds a new agent for the given action space.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the action-space dimension
    /// does not match `config.action_dim`.
    pub fn new(config: PpoConfig, action_space: ActionSpace) -> Self {
        config.validate();
        assert_eq!(
            action_space.dim(),
            config.action_dim,
            "action space dimension must match config.action_dim"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let actor =
            MlpConfig::new(config.obs_dim, &config.hidden, config.action_dim).build(&mut rng);
        let critic = MlpConfig::new(config.obs_dim, &config.hidden, 1).build(&mut rng);
        let log_std = vec![config.initial_log_std; config.action_dim];
        Self {
            actor_optimizer: Adam::new(config.actor_lr),
            critic_optimizer: Adam::new(config.critic_lr),
            log_std_optimizer: VectorAdam::new(config.actor_lr, config.action_dim),
            rng: StdRngState {
                seed: config.seed,
                draws: 0,
            },
            config,
            action_space,
            actor,
            critic,
            log_std,
            obs_normalizer: None,
            update_ws: UpdateWorkspace::default(),
        }
    }

    /// Captures the agent's complete mutable state — networks, policy
    /// log-std, optimizer moments, RNG position and the optional observation
    /// normalizer — as a [`PolicySnapshot`].
    ///
    /// Restoring the snapshot (in this process or after a save/load round
    /// trip through [`PolicySnapshot::save_to`]) yields an agent that is
    /// bit-identical for every future `act`/`update` call, which is what
    /// makes checkpoint-and-resume training exactly equivalent to an
    /// uninterrupted run.
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot {
            config: self.config.clone(),
            action_space: self.action_space.clone(),
            actor: self.actor.clone(),
            critic: self.critic.clone(),
            log_std: self.log_std.clone(),
            actor_optimizer: self.actor_optimizer.clone(),
            critic_optimizer: self.critic_optimizer.clone(),
            log_std_optimizer: self.log_std_optimizer.clone(),
            rng_draws: self.rng.draws,
            obs_normalizer: self.obs_normalizer.clone(),
            trained_rounds: 0,
            trained_collectors: 0,
        }
    }

    /// Rebuilds an agent from a [`PolicySnapshot`] (the inverse of
    /// [`PpoAgent::snapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is internally inconsistent (network shapes
    /// disagreeing with the configuration). Snapshots loaded through
    /// [`PolicySnapshot::load_from`] are validated before this point, so a
    /// corrupt file surfaces as a typed error there, never as a panic here.
    pub fn restore(snapshot: &PolicySnapshot) -> Self {
        snapshot
            .validate()
            .expect("snapshot must be internally consistent");
        let mut agent = PpoAgent::new(snapshot.config.clone(), snapshot.action_space.clone());
        agent.actor = snapshot.actor.clone();
        agent.critic = snapshot.critic.clone();
        agent.log_std = snapshot.log_std.clone();
        agent.actor_optimizer = snapshot.actor_optimizer.clone();
        agent.critic_optimizer = snapshot.critic_optimizer.clone();
        agent.log_std_optimizer = snapshot.log_std_optimizer.clone();
        agent.rng.draws = snapshot.rng_draws;
        agent.obs_normalizer = snapshot.obs_normalizer.clone();
        agent
    }

    /// The frozen observation normalizer, if one is installed.
    pub fn obs_normalizer(&self) -> Option<&RunningMeanStd> {
        self.obs_normalizer.as_ref()
    }

    /// Installs (or removes) a frozen observation normalizer. When present,
    /// every actor and critic forward pass normalizes the observation first.
    ///
    /// This is an *inference-time* feature: install it on a policy that was
    /// trained on normalized features (or for serving). The PPO update path
    /// consumes raw buffered observations, so [`PpoAgent::update`] refuses
    /// (panics) while a normalizer is installed — remove it before training.
    ///
    /// # Panics
    ///
    /// Panics if the normalizer dimension does not match the observation
    /// dimension.
    pub fn set_obs_normalizer(&mut self, normalizer: Option<RunningMeanStd>) {
        if let Some(rms) = &normalizer {
            assert_eq!(
                rms.dim(),
                self.config.obs_dim,
                "normalizer dimension must match the observation dimension"
            );
        }
        self.obs_normalizer = normalizer;
    }

    /// Immutable view of the actor network (used by equivalence tests).
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// Immutable view of the critic network (used by equivalence tests).
    pub fn critic(&self) -> &Mlp {
        &self.critic
    }

    /// The agent's configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// The action space the agent was built for.
    pub fn action_space(&self) -> &ActionSpace {
        &self.action_space
    }

    /// Current log standard deviation of the policy.
    pub fn log_std(&self) -> &[f64] {
        &self.log_std
    }

    /// Total number of trainable parameters (actor + critic + log-std).
    pub fn parameter_count(&self) -> usize {
        self.actor.parameter_count() + self.critic.parameter_count() + self.log_std.len()
    }

    fn next_rng(&mut self) -> StdRng {
        self.rng.draws += 1;
        StdRng::seed_from_u64(
            self.rng
                .seed
                .wrapping_add(self.rng.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    fn policy_mean(&self, observation: &[f64]) -> Vec<f64> {
        match &self.obs_normalizer {
            Some(rms) => self.actor.forward_vec(&rms.normalize(observation)),
            None => self.actor.forward_vec(observation),
        }
        .expect("observation dimension mismatch with actor network")
    }

    /// Critic value estimate for an observation.
    pub fn value(&self, observation: &[f64]) -> f64 {
        match &self.obs_normalizer {
            Some(rms) => self.critic.forward_vec(&rms.normalize(observation)),
            None => self.critic.forward_vec(observation),
        }
        .expect("observation dimension mismatch with critic network")[0]
    }

    /// Samples a stochastic action (used during training).
    pub fn act(&mut self, observation: &[f64]) -> ActionSample {
        let mut rng = self.next_rng();
        self.act_with_rng(observation, &mut rng)
    }

    /// Samples a stochastic action from an external RNG stream, leaving the
    /// agent's internal stream untouched.
    ///
    /// This is the building block of the vectorized rollout collector: each
    /// parallel environment owns one deterministic stream, so the trajectory
    /// of an environment depends only on its own stream and the (frozen)
    /// policy parameters — never on scheduling.
    pub fn act_with_rng<R: Rng + ?Sized>(&self, observation: &[f64], rng: &mut R) -> ActionSample {
        let mean = self.policy_mean(observation);
        let dist = DiagGaussian::new(mean, self.log_std.clone());
        let raw = dist.sample(rng);
        let log_prob = dist.log_prob(&raw);
        ActionSample {
            env_action: self.action_space.squash(&raw),
            log_prob,
            value: self.value(observation),
            raw_action: raw,
        }
    }

    /// Batched policy/value evaluation: one actor and one critic forward pass
    /// for the whole batch, then one Gaussian draw per row from its matching
    /// RNG stream.
    ///
    /// A batch of `B` observations costs one matrix product per layer instead
    /// of `2B` row-vector forward passes, which is the dominant cost of
    /// rollout collection. The result is bit-identical to calling
    /// [`PpoAgent::act_with_rng`] row by row with the same streams (see
    /// [`vtm_nn::mlp::Mlp::forward_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if `observations` and `rngs` have different lengths, or if an
    /// observation does not match the configured observation dimension.
    pub fn act_batch<R: Rng>(&self, observations: &[&[f64]], rngs: &mut [R]) -> Vec<ActionSample> {
        assert_eq!(
            observations.len(),
            rngs.len(),
            "one RNG stream per observation"
        );
        if observations.is_empty() {
            return Vec::new();
        }
        // With a normalizer installed, normalize the batch once and feed the
        // same rows to both networks (values_batch would re-normalize).
        let (means, values) = match &self.obs_normalizer {
            Some(rms) => {
                let rows: Vec<Vec<f64>> = observations.iter().map(|o| rms.normalize(o)).collect();
                let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
                (
                    self.actor
                        .forward_rows(&refs)
                        .expect("observation dimension mismatch with actor network"),
                    self.critic
                        .forward_rows(&refs)
                        .expect("observation dimension mismatch with critic network")
                        .into_vec(),
                )
            }
            None => (
                self.actor
                    .forward_rows(observations)
                    .expect("observation dimension mismatch with actor network"),
                self.values_batch(observations),
            ),
        };
        // One distribution reused across rows: only the mean changes, so the
        // hot path allocates one log-std clone per batch instead of per row.
        let mut dist = DiagGaussian::new(means.row(0).to_vec(), self.log_std.clone());
        rngs.iter_mut()
            .enumerate()
            .map(|(i, rng)| {
                dist.replace_mean(means.row(i).to_vec());
                let raw = dist.sample(rng);
                let log_prob = dist.log_prob(&raw);
                ActionSample {
                    env_action: self.action_space.squash(&raw),
                    log_prob,
                    value: values[i],
                    raw_action: raw,
                }
            })
            .collect()
    }

    /// Batched critic evaluation: one forward pass for all observations.
    ///
    /// # Panics
    ///
    /// Panics if an observation does not match the configured dimension.
    pub fn values_batch(&self, observations: &[&[f64]]) -> Vec<f64> {
        if observations.is_empty() {
            return Vec::new();
        }
        match &self.obs_normalizer {
            Some(rms) => {
                let rows: Vec<Vec<f64>> = observations.iter().map(|o| rms.normalize(o)).collect();
                let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
                self.critic.forward_rows(&refs)
            }
            None => self.critic.forward_rows(observations),
        }
        .expect("observation dimension mismatch with critic network")
        .into_vec()
    }

    /// Returns the deterministic (mean) action for evaluation.
    pub fn act_deterministic(&self, observation: &[f64]) -> Vec<f64> {
        let mean = self.policy_mean(observation);
        self.action_space.squash(&mean)
    }

    /// Performs a PPO update on a set of processed samples.
    ///
    /// Returns per-update statistics. The samples are typically produced by
    /// [`RolloutBuffer::process`] with this agent's `gamma`/`lambda`.
    ///
    /// This is the fused, fully batched update path: minibatches are gathered
    /// into the agent's persistent update workspace, forward/backward
    /// passes run through [`Mlp::forward_train_ws`] / [`Mlp::backward_ws`]
    /// and the Gaussian surrogate terms are evaluated with the batched
    /// [`DiagGaussian`] row ops, so steady-state updates perform zero heap
    /// allocation. Results are bit-identical to
    /// [`PpoAgent::update_reference`] (asserted by
    /// `vtm-bench/tests/update_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if a frozen observation normalizer is installed: the buffered
    /// samples hold *raw* observations, so updating through the normalizer
    /// would compute importance ratios against a different policy than the
    /// one that acted. Remove it (`set_obs_normalizer(None)`) before
    /// training; it is an inference-time feature.
    pub fn update(&mut self, samples: &[ProcessedSample]) -> PpoUpdateStats {
        assert!(
            self.obs_normalizer.is_none(),
            "cannot train with a frozen observation normalizer installed; \
             remove it with set_obs_normalizer(None) first"
        );
        if samples.is_empty() {
            return PpoUpdateStats::default();
        }
        // The workspace is moved out so minibatch updates can borrow the
        // agent mutably alongside it; moving a struct allocates nothing.
        let mut ws = std::mem::take(&mut self.update_ws);
        let mut stats = PpoUpdateStats::default();
        let mut total_batches = 0usize;
        let mut rng = self.next_rng();
        let minibatch = self.config.minibatch_size;
        for _ in 0..self.config.update_epochs {
            // Same deal as `RolloutBuffer::minibatches` (identical RNG
            // consumption), without allocating the per-batch vectors.
            ws.indices.clear();
            ws.indices.extend(0..samples.len());
            ws.indices.shuffle(&mut rng);
            let mut start = 0;
            while start < samples.len() {
                let end = (start + minibatch).min(samples.len());
                let batch_stats = self.update_minibatch_fused(&mut ws, samples, start, end);
                stats.policy_loss += batch_stats.policy_loss;
                stats.value_loss += batch_stats.value_loss;
                stats.entropy += batch_stats.entropy;
                stats.approx_kl += batch_stats.approx_kl;
                stats.clip_fraction += batch_stats.clip_fraction;
                total_batches += 1;
                start = end;
            }
        }
        self.update_ws = ws;
        if total_batches > 0 {
            let n = total_batches as f64;
            stats.policy_loss /= n;
            stats.value_loss /= n;
            stats.entropy /= n;
            stats.approx_kl /= n;
            stats.clip_fraction /= n;
        }
        stats.gradient_steps = total_batches;
        stats
    }

    /// The pre-fusion PPO update, kept as the reference implementation: it
    /// allocates fresh matrices for every step and evaluates the Gaussian
    /// per sample. `vtm-bench` pins [`PpoAgent::update`] bit-identical to
    /// this path and benchmarks the speedup between the two.
    ///
    /// # Panics
    ///
    /// Panics if a frozen observation normalizer is installed (same contract
    /// as [`PpoAgent::update`]).
    pub fn update_reference(&mut self, samples: &[ProcessedSample]) -> PpoUpdateStats {
        assert!(
            self.obs_normalizer.is_none(),
            "cannot train with a frozen observation normalizer installed; \
             remove it with set_obs_normalizer(None) first"
        );
        if samples.is_empty() {
            return PpoUpdateStats::default();
        }
        let mut stats = PpoUpdateStats::default();
        let mut total_batches = 0usize;
        let mut rng = self.next_rng();
        for _ in 0..self.config.update_epochs {
            let batches = RolloutBuffer::minibatches(samples, self.config.minibatch_size, &mut rng);
            for batch in batches {
                let batch_stats = self.update_minibatch_reference(&batch);
                stats.policy_loss += batch_stats.policy_loss;
                stats.value_loss += batch_stats.value_loss;
                stats.entropy += batch_stats.entropy;
                stats.approx_kl += batch_stats.approx_kl;
                stats.clip_fraction += batch_stats.clip_fraction;
                total_batches += 1;
            }
        }
        if total_batches > 0 {
            let n = total_batches as f64;
            stats.policy_loss /= n;
            stats.value_loss /= n;
            stats.entropy /= n;
            stats.approx_kl /= n;
            stats.clip_fraction /= n;
        }
        stats.gradient_steps = total_batches;
        stats
    }

    /// One fused minibatch step over `samples[ws.indices[start..end]]`.
    ///
    /// Mirrors [`PpoAgent::update_minibatch_reference`] operation for
    /// operation — every sum accumulates in the same order — so the two paths
    /// stay bit-identical while this one reuses `ws` instead of allocating.
    fn update_minibatch_fused(
        &mut self,
        ws: &mut UpdateWorkspace,
        samples: &[ProcessedSample],
        start: usize,
        end: usize,
    ) -> PpoUpdateStats {
        let batch_size = end - start;
        let inv_n = 1.0 / batch_size as f64;
        let obs_dim = self.config.obs_dim;
        let action_dim = self.config.action_dim;

        // ---------------- Gather ----------------
        ws.obs.resize(batch_size, obs_dim);
        ws.actions.resize(batch_size, action_dim);
        ws.old_log_probs.clear();
        ws.advantages.clear();
        ws.value_targets.clear();
        for (r, &idx) in ws.indices[start..end].iter().enumerate() {
            let s = &samples[idx];
            ws.obs.row_mut(r).copy_from_slice(&s.observation);
            ws.actions.row_mut(r).copy_from_slice(&s.action);
            ws.old_log_probs.push(s.old_log_prob);
            ws.advantages.push(s.advantage);
            ws.value_targets.push(s.value_target);
        }

        // ---------------- Actor ----------------
        self.actor
            .forward_train_ws(&ws.obs, &mut ws.actor_ws)
            .expect("actor forward failed");
        let dist = ws
            .dist
            .get_or_insert_with(|| DiagGaussian::new(vec![0.0; action_dim], vec![0.0; action_dim]));
        dist.set_log_std(&self.log_std);
        let means = ws.actor_ws.output();
        dist.log_prob_rows(means, &ws.actions, &mut ws.new_log_probs);
        dist.grad_mean_rows(means, &ws.actions, &mut ws.grad_mean_rows);
        dist.grad_log_std_rows(means, &ws.actions, &mut ws.grad_log_std_rows);
        let entropy_each = dist.entropy();

        ws.grad_mean.resize(batch_size, action_dim);
        ws.grad_log_std.clear();
        ws.grad_log_std.resize(action_dim, 0.0);
        let mut policy_loss = 0.0;
        let mut entropy_total = 0.0;
        let mut approx_kl = 0.0;
        let mut clipped = 0usize;
        let eps = self.config.clip_epsilon;

        for i in 0..batch_size {
            let new_log_prob = ws.new_log_probs[i];
            let ratio = (new_log_prob - ws.old_log_probs[i]).exp();
            let advantage = ws.advantages[i];
            let surr1 = ratio * advantage;
            let clipped_ratio = ratio.clamp(1.0 - eps, 1.0 + eps);
            let surr2 = clipped_ratio * advantage;
            policy_loss += -surr1.min(surr2) * inv_n;
            entropy_total += entropy_each * inv_n;
            approx_kl += (ws.old_log_probs[i] - new_log_prob) * inv_n;
            if (ratio - clipped_ratio).abs() > 1e-12 {
                clipped += 1;
            }

            // d(-min(surr1, surr2))/d(log pi): -A * ratio when the unclipped
            // branch is active, 0 otherwise (the clipped branch is constant in
            // the parameters).
            let dloss_dlogp = if surr1 <= surr2 {
                -advantage * ratio
            } else {
                0.0
            } * inv_n;
            if dloss_dlogp != 0.0 {
                for j in 0..action_dim {
                    ws.grad_mean[(i, j)] = dloss_dlogp * ws.grad_mean_rows[(i, j)];
                    ws.grad_log_std[j] += dloss_dlogp * ws.grad_log_std_rows[(i, j)];
                }
            } else {
                ws.grad_mean.row_mut(i).fill(0.0);
            }
            // Entropy bonus: loss -= entropy_coef * H, dH/dlog_std_j = 1.
            for g in ws.grad_log_std.iter_mut() {
                *g -= self.config.entropy_coef * inv_n;
            }
        }

        self.actor
            .backward_ws(
                &ws.obs,
                &mut ws.actor_ws,
                &ws.grad_mean,
                &mut ws.actor_grads,
            )
            .expect("actor backward failed");
        ws.actor_grads.clip_global_norm(self.config.max_grad_norm);
        self.actor_optimizer.step(&mut self.actor, &ws.actor_grads);
        self.log_std_optimizer
            .step(&mut self.log_std, &ws.grad_log_std);
        for ls in &mut self.log_std {
            *ls = ls.max(self.config.min_log_std);
        }

        // ---------------- Critic ----------------
        self.critic
            .forward_train_ws(&ws.obs, &mut ws.critic_ws)
            .expect("critic forward failed");
        ws.grad_values.resize(batch_size, 1);
        let mut value_loss = 0.0;
        {
            let values = ws.critic_ws.output();
            for i in 0..batch_size {
                let v = values[(i, 0)];
                let err = v - ws.value_targets[i];
                value_loss += err * err * inv_n;
                ws.grad_values[(i, 0)] = self.config.value_loss_coef * 2.0 * err * inv_n;
            }
        }
        self.critic
            .backward_ws(
                &ws.obs,
                &mut ws.critic_ws,
                &ws.grad_values,
                &mut ws.critic_grads,
            )
            .expect("critic backward failed");
        ws.critic_grads.clip_global_norm(self.config.max_grad_norm);
        self.critic_optimizer
            .step(&mut self.critic, &ws.critic_grads);

        PpoUpdateStats {
            policy_loss,
            value_loss,
            entropy: entropy_total,
            approx_kl,
            clip_fraction: clipped as f64 / batch_size as f64,
            gradient_steps: 1,
        }
    }

    fn update_minibatch_reference(&mut self, batch: &[&ProcessedSample]) -> PpoUpdateStats {
        let batch_size = batch.len();
        let inv_n = 1.0 / batch_size as f64;
        let obs_rows: Vec<&[f64]> = batch.iter().map(|s| s.observation.as_slice()).collect();
        let obs = Matrix::from_rows(&obs_rows).expect("ragged observation batch");

        // ---------------- Actor ----------------
        let (means, actor_caches) = self
            .actor
            .forward_train(&obs)
            .expect("actor forward failed");
        let mut grad_mean = Matrix::zeros(batch_size, self.config.action_dim);
        let mut grad_log_std = vec![0.0; self.config.action_dim];
        let mut policy_loss = 0.0;
        let mut entropy_total = 0.0;
        let mut approx_kl = 0.0;
        let mut clipped = 0usize;
        let eps = self.config.clip_epsilon;

        for (i, sample) in batch.iter().enumerate() {
            let mean_i: Vec<f64> = means.row(i).to_vec();
            let dist = DiagGaussian::new(mean_i, self.log_std.clone());
            let new_log_prob = dist.log_prob(&sample.action);
            let ratio = (new_log_prob - sample.old_log_prob).exp();
            let advantage = sample.advantage;
            let surr1 = ratio * advantage;
            let clipped_ratio = ratio.clamp(1.0 - eps, 1.0 + eps);
            let surr2 = clipped_ratio * advantage;
            policy_loss += -surr1.min(surr2) * inv_n;
            entropy_total += dist.entropy() * inv_n;
            approx_kl += (sample.old_log_prob - new_log_prob) * inv_n;
            if (ratio - clipped_ratio).abs() > 1e-12 {
                clipped += 1;
            }

            // d(-min(surr1, surr2))/d(log pi): -A * ratio when the unclipped
            // branch is active, 0 otherwise (the clipped branch is constant in
            // the parameters).
            let dloss_dlogp = if surr1 <= surr2 {
                -advantage * ratio
            } else {
                0.0
            } * inv_n;
            if dloss_dlogp != 0.0 {
                let gm = dist.log_prob_grad_mean(&sample.action);
                let gs = dist.log_prob_grad_log_std(&sample.action);
                for j in 0..self.config.action_dim {
                    grad_mean[(i, j)] += dloss_dlogp * gm[j];
                    grad_log_std[j] += dloss_dlogp * gs[j];
                }
            }
            // Entropy bonus: loss -= entropy_coef * H, dH/dlog_std_j = 1.
            for g in grad_log_std.iter_mut() {
                *g -= self.config.entropy_coef * inv_n;
            }
        }

        let (_, mut actor_grads) = self
            .actor
            .backward(&actor_caches, &grad_mean)
            .expect("actor backward failed");
        actor_grads.clip_global_norm(self.config.max_grad_norm);
        self.actor_optimizer.step(&mut self.actor, &actor_grads);
        self.log_std_optimizer
            .step(&mut self.log_std, &grad_log_std);
        for ls in &mut self.log_std {
            *ls = ls.max(self.config.min_log_std);
        }

        // ---------------- Critic ----------------
        let (values, critic_caches) = self
            .critic
            .forward_train(&obs)
            .expect("critic forward failed");
        let mut grad_values = Matrix::zeros(batch_size, 1);
        let mut value_loss = 0.0;
        for (i, sample) in batch.iter().enumerate() {
            let v = values[(i, 0)];
            let err = v - sample.value_target;
            value_loss += err * err * inv_n;
            grad_values[(i, 0)] = self.config.value_loss_coef * 2.0 * err * inv_n;
        }
        let (_, mut critic_grads) = self
            .critic
            .backward(&critic_caches, &grad_values)
            .expect("critic backward failed");
        critic_grads.clip_global_norm(self.config.max_grad_norm);
        self.critic_optimizer.step(&mut self.critic, &critic_grads);

        PpoUpdateStats {
            policy_loss,
            value_loss,
            entropy: entropy_total,
            approx_kl,
            clip_fraction: clipped as f64 / batch_size as f64,
            gradient_steps: 1,
        }
    }

    /// Collects `episodes` complete episodes from `env` into `buffer`,
    /// returning the undiscounted return of each episode.
    ///
    /// `max_steps` bounds the episode length for environments that never set
    /// `done` (the paper's pricing game runs a fixed `K` rounds per episode).
    pub fn collect_episodes<E: Environment>(
        &mut self,
        env: &mut E,
        episodes: usize,
        max_steps: usize,
        buffer: &mut RolloutBuffer,
    ) -> Vec<f64> {
        let mut returns = Vec::with_capacity(episodes);
        for _ in 0..episodes {
            let mut obs = env.reset();
            let mut total = 0.0;
            for step_idx in 0..max_steps {
                let sample = self.act(&obs);
                let step = env.step(&sample.env_action);
                total += step.reward;
                let done = step.done || step_idx + 1 == max_steps;
                buffer.push(Transition {
                    observation: obs.clone(),
                    action: sample.raw_action,
                    log_prob: sample.log_prob,
                    value: sample.value,
                    reward: step.reward,
                    done,
                });
                obs = step.observation;
                if step.done {
                    break;
                }
            }
            returns.push(total);
        }
        returns
    }

    /// Convenience training loop: repeatedly collects `episodes_per_iteration`
    /// episodes, updates the agent and records the mean episode return.
    ///
    /// Returns the mean return of every iteration, in order. This generic loop
    /// backs the crate-level tests; the paper's Algorithm 1 loop (with its
    /// best-utility tracking) lives in `vtm-core`.
    pub fn train<E: Environment>(
        &mut self,
        env: &mut E,
        iterations: usize,
        episodes_per_iteration: usize,
        max_steps: usize,
    ) -> Vec<f64> {
        let mut history = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let mut buffer = RolloutBuffer::new();
            let returns =
                self.collect_episodes(env, episodes_per_iteration, max_steps, &mut buffer);
            let terminal_value = 0.0;
            let samples = buffer.process(
                self.config.gamma,
                self.config.gae_lambda,
                terminal_value,
                self.config.normalize_advantages,
            );
            self.update(&samples);
            let mean_return = returns.iter().sum::<f64>() / returns.len().max(1) as f64;
            history.push(mean_return);
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Step;

    /// A stateless continuous bandit: reward peaks when the action hits `target`.
    struct Bandit {
        target: f64,
        space: ActionSpace,
    }

    impl Environment for Bandit {
        fn observation_dim(&self) -> usize {
            2
        }
        fn action_space(&self) -> ActionSpace {
            self.space.clone()
        }
        fn reset(&mut self) -> Vec<f64> {
            vec![1.0, 0.0]
        }
        fn step(&mut self, action: &[f64]) -> Step {
            let a = action[0];
            let reward = 1.0 - ((a - self.target) / 10.0).powi(2);
            Step {
                observation: vec![1.0, 0.0],
                reward,
                done: true,
            }
        }
    }

    #[test]
    fn agent_construction_and_shapes() {
        let cfg = PpoConfig::new(4, 1).with_seed(3);
        let agent = PpoAgent::new(cfg, ActionSpace::scalar(0.0, 1.0));
        assert_eq!(agent.log_std().len(), 1);
        assert!(agent.parameter_count() > 0);
        let v = agent.value(&[0.0; 4]);
        assert!(v.is_finite());
        let a = agent.act_deterministic(&[0.0; 4]);
        assert!(agent.action_space().contains(&a));
    }

    #[test]
    #[should_panic(expected = "action space dimension")]
    fn mismatched_action_space_panics() {
        let cfg = PpoConfig::new(4, 2);
        let _ = PpoAgent::new(cfg, ActionSpace::scalar(0.0, 1.0));
    }

    #[test]
    fn sampled_actions_are_in_bounds_and_reproducible() {
        let cfg = PpoConfig::new(3, 1).with_seed(11);
        let mut a1 = PpoAgent::new(cfg.clone(), ActionSpace::scalar(5.0, 50.0));
        let mut a2 = PpoAgent::new(cfg, ActionSpace::scalar(5.0, 50.0));
        for _ in 0..20 {
            let s1 = a1.act(&[0.1, 0.2, 0.3]);
            let s2 = a2.act(&[0.1, 0.2, 0.3]);
            assert_eq!(s1.env_action, s2.env_action);
            assert!(a1.action_space().contains(&s1.env_action));
            assert!(s1.log_prob.is_finite());
        }
    }

    #[test]
    fn act_batch_matches_per_sample_path() {
        let cfg = PpoConfig::new(3, 1).with_seed(21);
        let agent = PpoAgent::new(cfg, ActionSpace::scalar(5.0, 50.0));
        let observations: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 * 0.1, -0.3, 0.7]).collect();
        let obs_refs: Vec<&[f64]> = observations.iter().map(Vec::as_slice).collect();
        let mut batch_rngs: Vec<StdRng> = (0..9).map(|i| StdRng::seed_from_u64(1000 + i)).collect();
        let mut single_rngs = batch_rngs.clone();
        let batch = agent.act_batch(&obs_refs, &mut batch_rngs);
        assert_eq!(batch.len(), 9);
        for (i, sample) in batch.iter().enumerate() {
            let single = agent.act_with_rng(&observations[i], &mut single_rngs[i]);
            assert_eq!(sample.raw_action, single.raw_action, "row {i} raw action");
            assert_eq!(sample.env_action, single.env_action, "row {i} env action");
            assert!((sample.log_prob - single.log_prob).abs() <= 1e-12);
            assert!((sample.value - single.value).abs() <= 1e-12);
        }
        // The consumed noise must also match, so subsequent draws agree.
        assert_eq!(batch_rngs, single_rngs);
    }

    #[test]
    fn values_batch_matches_scalar_value() {
        let cfg = PpoConfig::new(2, 1).with_seed(8);
        let agent = PpoAgent::new(cfg, ActionSpace::scalar(0.0, 1.0));
        let observations = [vec![0.2, -0.4], vec![1.5, 0.0], vec![-2.0, 2.0]];
        let refs: Vec<&[f64]> = observations.iter().map(Vec::as_slice).collect();
        let batched = agent.values_batch(&refs);
        for (obs, v) in observations.iter().zip(batched.iter()) {
            assert!((agent.value(obs) - v).abs() <= 1e-12);
        }
        assert!(agent.values_batch(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "frozen observation normalizer")]
    fn update_refuses_a_frozen_normalizer() {
        use crate::running_stat::RunningMeanStd;
        let cfg = PpoConfig::new(2, 1).with_seed(31);
        let mut agent = PpoAgent::new(cfg, ActionSpace::scalar(0.0, 1.0));
        let mut env = Bandit {
            target: 4.0,
            space: ActionSpace::scalar(0.0, 10.0),
        };
        let mut buffer = RolloutBuffer::new();
        agent.collect_episodes(&mut env, 4, 1, &mut buffer);
        let samples = buffer.process(0.95, 0.95, 0.0, true);
        let mut rms = RunningMeanStd::new(2);
        rms.update(&[0.0, 0.0]);
        rms.update(&[1.0, 1.0]);
        agent.set_obs_normalizer(Some(rms));
        let _ = agent.update(&samples);
    }

    #[test]
    fn normalized_batch_paths_agree_with_scalar_paths() {
        use crate::running_stat::RunningMeanStd;
        let cfg = PpoConfig::new(2, 1).with_seed(33);
        let mut agent = PpoAgent::new(cfg, ActionSpace::scalar(0.0, 1.0));
        let mut rms = RunningMeanStd::new(2);
        for i in 0..10 {
            rms.update(&[i as f64, -0.5 * i as f64]);
        }
        agent.set_obs_normalizer(Some(rms));
        let observations = [vec![0.2, -0.4], vec![1.5, 0.0], vec![-2.0, 2.0]];
        let refs: Vec<&[f64]> = observations.iter().map(Vec::as_slice).collect();
        // values_batch applies the normalizer exactly like the scalar path.
        for (obs, v) in observations.iter().zip(agent.values_batch(&refs)) {
            assert_eq!(agent.value(obs).to_bits(), v.to_bits());
        }
        // act_batch (single normalization pass) matches act_with_rng per row.
        let mut batch_rngs: Vec<StdRng> = (0..3).map(|i| StdRng::seed_from_u64(50 + i)).collect();
        let mut single_rngs = batch_rngs.clone();
        let batch = agent.act_batch(&refs, &mut batch_rngs);
        for (i, sample) in batch.iter().enumerate() {
            let single = agent.act_with_rng(&observations[i], &mut single_rngs[i]);
            assert_eq!(sample.raw_action, single.raw_action);
            assert_eq!(sample.value.to_bits(), single.value.to_bits());
        }
    }

    #[test]
    fn update_on_empty_samples_is_a_noop() {
        let cfg = PpoConfig::new(2, 1);
        let mut agent = PpoAgent::new(cfg, ActionSpace::scalar(0.0, 1.0));
        let stats = agent.update(&[]);
        assert_eq!(stats.gradient_steps, 0);
    }

    #[test]
    fn ppo_improves_on_continuous_bandit() {
        let mut env = Bandit {
            target: 7.0,
            space: ActionSpace::scalar(0.0, 10.0),
        };
        let mut cfg = PpoConfig::new(2, 1).with_seed(7);
        cfg.actor_lr = 3e-3;
        cfg.critic_lr = 3e-3;
        cfg.minibatch_size = 32;
        cfg.update_epochs = 5;
        cfg.entropy_coef = 0.0;
        let mut agent = PpoAgent::new(cfg, env.action_space());

        // Baseline performance before training.
        let before: f64 = {
            let a = agent.act_deterministic(&[1.0, 0.0]);
            1.0 - ((a[0] - 7.0) / 10.0).powi(2)
        };
        let history = agent.train(&mut env, 60, 16, 1);
        let after: f64 = {
            let a = agent.act_deterministic(&[1.0, 0.0]);
            1.0 - ((a[0] - 7.0) / 10.0).powi(2)
        };
        assert!(
            after > before || after > 0.995,
            "PPO did not improve: before {before}, after {after}, history tail {:?}",
            &history[history.len().saturating_sub(5)..]
        );
        // The policy mean should have moved towards the target.
        let final_action = agent.act_deterministic(&[1.0, 0.0])[0];
        assert!(
            (final_action - 7.0).abs() < 2.0,
            "final deterministic action {final_action} too far from target"
        );
    }

    #[test]
    fn fused_update_is_bit_identical_to_reference_path() {
        let mut env = Bandit {
            target: 6.0,
            space: ActionSpace::scalar(0.0, 10.0),
        };
        let cfg = PpoConfig::new(2, 1).with_seed(17);
        let mut fused = PpoAgent::new(cfg.clone(), env.action_space());
        let mut reference = PpoAgent::new(cfg, env.action_space());
        let mut buffer = RolloutBuffer::new();
        fused.collect_episodes(&mut env, 50, 1, &mut buffer);
        // Keep both agents' internal RNG streams aligned.
        let mut scratch = RolloutBuffer::new();
        reference.collect_episodes(&mut env, 50, 1, &mut scratch);
        let samples = buffer.process(0.95, 0.95, 0.0, true);
        for round in 0..3 {
            let sf = fused.update(&samples);
            let sr = reference.update_reference(&samples);
            assert_eq!(sf, sr, "stats diverged at round {round}");
            assert_eq!(
                fused.actor(),
                reference.actor(),
                "actor diverged at round {round}"
            );
            assert_eq!(
                fused.critic(),
                reference.critic(),
                "critic diverged at round {round}"
            );
            assert_eq!(
                fused.log_std(),
                reference.log_std(),
                "log_std diverged at round {round}"
            );
        }
        assert_eq!(fused, reference);
    }

    #[test]
    fn update_stats_are_finite() {
        let mut env = Bandit {
            target: 2.0,
            space: ActionSpace::scalar(0.0, 10.0),
        };
        let cfg = PpoConfig::new(2, 1).with_seed(13);
        let mut agent = PpoAgent::new(cfg, env.action_space());
        let mut buffer = RolloutBuffer::new();
        agent.collect_episodes(&mut env, 8, 1, &mut buffer);
        let samples = buffer.process(0.95, 0.95, 0.0, true);
        let stats = agent.update(&samples);
        assert!(stats.policy_loss.is_finite());
        assert!(stats.value_loss.is_finite());
        assert!(stats.entropy.is_finite());
        assert!(stats.clip_fraction >= 0.0 && stats.clip_fraction <= 1.0);
        assert!(stats.gradient_steps > 0);
    }
}
