//! Builder-style training loop: the single entry point of the policy
//! lifecycle's *learn* phase.
//!
//! Historically every caller wired its own loop around
//! [`ParallelCollector`] (serial episode loops, vectorized loops, scenario
//! loops), which meant three divergent code paths with three different
//! seed schedules. [`Trainer`] replaces them with one configurable path:
//!
//! ```text
//! Trainer::for_env(env)
//!     .episodes(200)
//!     .collectors(4)          // environment replicas per collection round
//!     .threads(0)             // 0 = one worker per core
//!     .max_steps(100)
//!     .checkpoint_every(50, "checkpoints/")
//!     .on_episode(|e| println!("ep {} return {}", e.episode, e.episode_return))
//!     .run(&mut agent)
//! ```
//!
//! # Round-addressed determinism
//!
//! Every collection round `r` reseeds each environment replica `i` with a
//! seed derived *only* from `(base seed, r, i)` and draws collector noise
//! from [`CollectorConfig::for_round`]`(r)`. Training is therefore a pure
//! function of `(agent state, base seed, round range)` — independent of
//! thread count *and* of how the round range is split across calls. Combined
//! with [`PolicySnapshot`] capturing the agent's complete mutable state,
//! this makes `train(k) → checkpoint → resume(n − k)` bit-identical to
//! `train(n)`, which the checkpoint test suite asserts.
//!
//! # Example
//!
//! ```
//! use vtm_rl::prelude::*;
//!
//! #[derive(Clone)]
//! struct Toy { t: usize }
//! impl Environment for Toy {
//!     fn observation_dim(&self) -> usize { 1 }
//!     fn action_space(&self) -> ActionSpace { ActionSpace::scalar(0.0, 1.0) }
//!     fn reset(&mut self) -> Vec<f64> { self.t = 0; vec![0.0] }
//!     fn step(&mut self, action: &[f64]) -> Step {
//!         self.t += 1;
//!         Step { observation: vec![self.t as f64], reward: action[0], done: self.t >= 4 }
//!     }
//! }
//!
//! let mut agent = PpoAgent::new(PpoConfig::new(1, 1).with_seed(1), ActionSpace::scalar(0.0, 1.0));
//! let report = Trainer::for_env(Toy { t: 0 })
//!     .episodes(4)
//!     .collectors(2)
//!     .max_steps(4)
//!     .run(&mut agent)
//!     .unwrap();
//! assert_eq!(report.episode_returns.len(), 4);
//! ```

use std::path::PathBuf;

use crate::buffer::RolloutBuffer;
use crate::env::Environment;
use crate::ppo::PpoAgent;
use crate::snapshot::{PolicySnapshot, SnapshotError};
use crate::vec_env::{CollectorConfig, ParallelCollector, VecEnv};

/// Golden-ratio constant decorrelating per-replica seed streams (shared with
/// the rollout collector).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Constant decorrelating per-round environment reseeds from the replica
/// streams.
const ROUND_MIX: u64 = 0xA076_1D64_78BD_642F;

/// Everything the per-episode hook can observe about a just-finished episode.
#[derive(Debug)]
pub struct EpisodeEvent<'a, E> {
    /// Global episode index within this `run` call (0-based).
    pub episode: usize,
    /// Global training round the episode belongs to (monotone across
    /// resumed runs).
    pub round: u64,
    /// Which environment replica played the episode.
    pub replica: usize,
    /// Undiscounted episode return.
    pub episode_return: f64,
    /// The replica's environment right after the episode, for domain-side
    /// statistics (e.g. the pricing environment's per-episode aggregates).
    pub env: &'a E,
}

/// Summary of one [`Trainer::run`] call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainerReport {
    /// Undiscounted return of every episode, in order.
    pub episode_returns: Vec<f64>,
    /// Collection rounds executed by this call.
    pub rounds: u64,
    /// First global round index of this call (0 unless resumed).
    pub start_round: u64,
    /// Checkpoint files written, in order.
    pub checkpoints: Vec<PathBuf>,
}

impl TrainerReport {
    /// The global round counter after this call: pass it (or a checkpoint's
    /// `trained_rounds`) to [`Trainer::start_round`] to continue seamlessly.
    pub fn next_round(&self) -> u64 {
        self.start_round + self.rounds
    }
}

/// Builder-style training loop over a cloneable environment. See the module
/// docs for the determinism contract.
pub struct Trainer<'h, E> {
    env: E,
    episodes: usize,
    collectors: usize,
    threads: usize,
    max_steps: usize,
    seed: Option<u64>,
    start_round: u64,
    checkpoint: Option<(usize, PathBuf)>,
    #[allow(clippy::type_complexity)] // the hook type is the API
    on_episode: Option<Box<dyn FnMut(&EpisodeEvent<'_, E>) + 'h>>,
}

impl<'h, E: Environment + Clone + Send> Trainer<'h, E> {
    /// Starts a trainer for (replicas of) `env`.
    ///
    /// Defaults: 1 episode, 1 collector, 1 thread, `max_steps` 10 000 (a
    /// truncation backstop — environments with a natural horizon terminate
    /// sooner), seed taken from the agent's configuration, round counter 0,
    /// no checkpoints, no hook.
    pub fn for_env(env: E) -> Self {
        Self {
            env,
            episodes: 1,
            collectors: 1,
            threads: 1,
            max_steps: 10_000,
            seed: None,
            start_round: 0,
            checkpoint: None,
            on_episode: None,
        }
    }

    /// Total episodes to train in this call (rounded up to a whole number of
    /// collection rounds of `collectors` episodes each).
    pub fn episodes(mut self, episodes: usize) -> Self {
        self.episodes = episodes;
        self
    }

    /// Number of environment replicas collected per round. Every round
    /// contributes `collectors` episodes to a single PPO update, so this also
    /// scales the effective batch per update.
    ///
    /// # Panics
    ///
    /// Panics if `collectors` is zero.
    pub fn collectors(mut self, collectors: usize) -> Self {
        assert!(collectors > 0, "need at least one collector replica");
        self.collectors = collectors;
        self
    }

    /// Worker threads for collection (`0` = one per core). The result is
    /// bit-identical for every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Upper bound on episode length; episodes reaching it are truncated with
    /// `done = true`.
    ///
    /// # Panics
    ///
    /// Panics if `max_steps` is zero.
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        assert!(max_steps > 0, "max_steps must be positive");
        self.max_steps = max_steps;
        self
    }

    /// Base seed of the round/replica seed schedule. Defaults to the agent's
    /// configured seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Starts the global round counter at `round` instead of 0. Pass a
    /// checkpoint's `trained_rounds` (or [`TrainerReport::next_round`]) to
    /// resume a run: the remaining rounds replay exactly the seed schedule
    /// the uninterrupted run would have used.
    pub fn start_round(mut self, round: u64) -> Self {
        self.start_round = round;
        self
    }

    /// Writes a [`PolicySnapshot`] checkpoint into `dir` every `every`
    /// completed episodes (and always after the final round). The directory
    /// is created if needed; files are named `policy_ep<episodes>.vtm` where
    /// `<episodes>` counts *globally* (from round 0, across resumed runs
    /// with the same collector count), so a resumed run extends the schedule
    /// instead of overwriting the earlier run's checkpoints. Each file
    /// records the global round counter for seamless resumption.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn checkpoint_every(mut self, every: usize, dir: impl Into<PathBuf>) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint = Some((every, dir.into()));
        self
    }

    /// Installs a hook invoked once per completed episode, in episode order.
    pub fn on_episode(mut self, hook: impl FnMut(&EpisodeEvent<'_, E>) + 'h) -> Self {
        self.on_episode = Some(Box::new(hook));
        self
    }

    /// Runs the configured training loop, mutating `agent` in place.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the agent carries a frozen
    /// observation normalizer (training would compute importance ratios
    /// against a different policy than the one that acted — the check runs
    /// up front, before any rollout work) or when a checkpoint cannot be
    /// written; the agent keeps all progress made up to that point.
    pub fn run(mut self, agent: &mut PpoAgent) -> Result<TrainerReport, SnapshotError> {
        if agent.obs_normalizer().is_some() {
            return Err(SnapshotError::Incompatible(
                "cannot train an agent with a frozen observation normalizer installed; \
                 remove it with set_obs_normalizer(None) first"
                    .to_string(),
            ));
        }
        let seed = self.seed.unwrap_or(agent.config().seed);
        let num_envs = self.collectors;
        let mut venv = VecEnv::from_fn(num_envs, |_| self.env.clone());
        let base_config = CollectorConfig::new(1, self.max_steps)
            .with_seed(seed)
            .with_threads(self.threads);
        let iterations = self.episodes.div_ceil(num_envs);
        let mut report = TrainerReport {
            start_round: self.start_round,
            ..TrainerReport::default()
        };
        let (gamma, lambda, normalize) = {
            let c = agent.config();
            (c.gamma, c.gae_lambda, c.normalize_advantages)
        };
        for iter in 0..iterations {
            let round = self.start_round + iter as u64;
            // Pin every replica's environment stream to (seed, round, i): the
            // trajectory of round r is then independent of which call of a
            // split run executes it. The collector applies the seed as the
            // replica's initial reset, so each round performs exactly one
            // (seeded) reset per replica.
            let reset_seeds: Vec<u64> = (0..num_envs)
                .map(|i| {
                    seed ^ (i as u64 + 1).wrapping_mul(GOLDEN) ^ (round + 1).wrapping_mul(ROUND_MIX)
                })
                .collect();
            let collector = ParallelCollector::new(base_config.for_round(round));
            let rollouts = collector.collect_seeded(agent, &mut venv, &reset_seeds);
            for (i, (rollout, env)) in rollouts.per_env.iter().zip(venv.envs()).enumerate() {
                let episode_return = rollout.returns.first().copied().unwrap_or(0.0);
                let episode = iter * num_envs + i;
                if let Some(hook) = self.on_episode.as_mut() {
                    hook(&EpisodeEvent {
                        episode,
                        round,
                        replica: i,
                        episode_return,
                        env,
                    });
                }
                report.episode_returns.push(episode_return);
            }
            let mut buffer = RolloutBuffer::new();
            rollouts.drain_into(&mut buffer);
            let samples = buffer.process(gamma, lambda, 0.0, normalize);
            agent.update(&samples);
            report.rounds += 1;

            if let Some((every, dir)) = &self.checkpoint {
                // Cadence and filenames use *global* episode counts (rounds
                // since round 0, not since this call), so a resumed run
                // continues the schedule instead of overwriting the earlier
                // run's checkpoints with globally-older policies.
                let episodes_done = (round + 1) as usize * num_envs;
                let prev_done = round as usize * num_envs;
                let last = iter + 1 == iterations;
                if episodes_done / every > prev_done / every || last {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| SnapshotError::Codec(vtm_nn::codec::CodecError::Io(e)))?;
                    let path = dir.join(format!("policy_ep{episodes_done:06}.vtm"));
                    agent
                        .snapshot()
                        .with_trained_rounds(round + 1)
                        .with_trained_collectors(num_envs as u64)
                        .save_to(&path)?;
                    report.checkpoints.push(path);
                }
            }
        }
        Ok(report)
    }
}

/// Convenience: build a trainer that resumes a checkpoint's recorded
/// schedule — round counter, base seed, and (when recorded) collector
/// count, all three of which parameterize the `(seed, round, replica)`
/// reset schedule and must be reused for the resumed run to stay
/// bit-identical to an uninterrupted one. The caller still restores the
/// agent itself with [`PpoAgent::restore`] (kept separate so one snapshot
/// can seed several runs) and may override any builder setting afterwards.
pub fn resume_from<'h, E: Environment + Clone + Send>(
    env: E,
    snapshot: &PolicySnapshot,
) -> Trainer<'h, E> {
    let trainer = Trainer::for_env(env)
        .start_round(snapshot.trained_rounds)
        .seed(snapshot.config.seed);
    match snapshot.trained_collectors {
        0 => trainer,
        k => trainer.collectors(k as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ActionSpace, Step};
    use crate::ppo::PpoConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A seed-honouring stochastic environment: observations depend on an
    /// internal RNG stream, so resume tests exercise the reseed schedule.
    #[derive(Clone)]
    struct Noisy {
        t: usize,
        horizon: usize,
        rng: StdRng,
    }

    impl Noisy {
        fn new(horizon: usize) -> Self {
            Self {
                t: 0,
                horizon,
                rng: StdRng::seed_from_u64(0),
            }
        }
    }

    impl Environment for Noisy {
        fn observation_dim(&self) -> usize {
            2
        }
        fn action_space(&self) -> ActionSpace {
            ActionSpace::scalar(0.0, 1.0)
        }
        fn reset(&mut self) -> Vec<f64> {
            self.t = 0;
            vec![self.rng.gen_range(-1.0..1.0), 0.0]
        }
        fn reset_with_seed(&mut self, seed: u64) -> Vec<f64> {
            self.rng = StdRng::seed_from_u64(seed);
            self.reset()
        }
        fn step(&mut self, action: &[f64]) -> Step {
            self.t += 1;
            Step {
                observation: vec![self.rng.gen_range(-1.0..1.0), self.t as f64],
                reward: action[0],
                done: self.t >= self.horizon,
            }
        }
    }

    fn agent(seed: u64) -> PpoAgent {
        PpoAgent::new(
            PpoConfig::new(2, 1).with_seed(seed),
            ActionSpace::scalar(0.0, 1.0),
        )
    }

    #[test]
    fn trainer_runs_requested_episodes_and_reports() {
        let mut a = agent(1);
        let mut seen = Vec::new();
        let report = Trainer::for_env(Noisy::new(3))
            .episodes(6)
            .collectors(3)
            .max_steps(3)
            .on_episode(|e| seen.push((e.episode, e.replica)))
            .run(&mut a)
            .unwrap();
        assert_eq!(report.episode_returns.len(), 6);
        assert_eq!(report.rounds, 2);
        assert_eq!(report.next_round(), 2);
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2), (3, 0), (4, 1), (5, 2)]);
    }

    #[test]
    fn trainer_is_thread_count_invariant() {
        let mut a = agent(2);
        let mut b = agent(2);
        let ra = Trainer::for_env(Noisy::new(4))
            .episodes(8)
            .collectors(4)
            .threads(1)
            .max_steps(4)
            .run(&mut a)
            .unwrap();
        let rb = Trainer::for_env(Noisy::new(4))
            .episodes(8)
            .collectors(4)
            .threads(4)
            .max_steps(4)
            .run(&mut b)
            .unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn split_runs_match_a_single_run_bit_exactly() {
        // train(5) in one call vs train(2) + resume train(3).
        let mut whole = agent(3);
        let report = Trainer::for_env(Noisy::new(3))
            .episodes(5)
            .max_steps(3)
            .run(&mut whole)
            .unwrap();

        let mut split = agent(3);
        let first = Trainer::for_env(Noisy::new(3))
            .episodes(2)
            .max_steps(3)
            .run(&mut split)
            .unwrap();
        let snapshot = split.snapshot().with_trained_rounds(first.next_round());
        let mut resumed = PpoAgent::restore(&snapshot);
        let second = resume_from(Noisy::new(3), &snapshot)
            .episodes(3)
            .max_steps(3)
            .run(&mut resumed)
            .unwrap();

        assert_eq!(whole, resumed);
        let mut combined = first.episode_returns.clone();
        combined.extend_from_slice(&second.episode_returns);
        assert_eq!(report.episode_returns, combined);
    }

    #[test]
    fn resume_from_inherits_seed_and_collector_count() {
        // A 4-collector run split in half via resume_from (which must pick
        // up the recorded collector count, not the builder default of 1)
        // matches the uninterrupted run bit-exactly.
        let mut whole = agent(8);
        Trainer::for_env(Noisy::new(3))
            .episodes(8)
            .collectors(4)
            .max_steps(3)
            .run(&mut whole)
            .unwrap();

        let mut split = agent(8);
        let first = Trainer::for_env(Noisy::new(3))
            .episodes(4)
            .collectors(4)
            .max_steps(3)
            .run(&mut split)
            .unwrap();
        let snapshot = split
            .snapshot()
            .with_trained_rounds(first.next_round())
            .with_trained_collectors(4);
        let mut resumed = PpoAgent::restore(&snapshot);
        resume_from(Noisy::new(3), &snapshot)
            .episodes(4)
            .max_steps(3)
            .run(&mut resumed)
            .unwrap();
        assert_eq!(whole, resumed);
    }

    #[test]
    fn checkpoints_are_written_on_schedule() {
        let dir = std::env::temp_dir().join(format!("vtm_trainer_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut a = agent(4);
        let report = Trainer::for_env(Noisy::new(2))
            .episodes(4)
            .collectors(2)
            .max_steps(2)
            .checkpoint_every(2, &dir)
            .run(&mut a)
            .unwrap();
        assert_eq!(report.checkpoints.len(), 2);
        for path in &report.checkpoints {
            let snapshot = PolicySnapshot::load_from(path).unwrap();
            assert!(snapshot.trained_rounds > 0);
            assert_eq!(snapshot.trained_collectors, 2);
        }
        // The last checkpoint equals the live agent.
        let last = PolicySnapshot::load_from(report.checkpoints.last().unwrap()).unwrap();
        assert_eq!(PpoAgent::restore(&last), a);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resumed_checkpoints_extend_instead_of_overwriting() {
        let dir = std::env::temp_dir().join(format!("vtm_trainer_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut a = agent(6);
        let first = Trainer::for_env(Noisy::new(2))
            .episodes(2)
            .max_steps(2)
            .checkpoint_every(1, &dir)
            .run(&mut a)
            .unwrap();
        let second = Trainer::for_env(Noisy::new(2))
            .episodes(2)
            .max_steps(2)
            .start_round(first.next_round())
            .checkpoint_every(1, &dir)
            .run(&mut a)
            .unwrap();
        // Globally-numbered filenames: the resumed run writes ep 3 and 4,
        // never clobbering the first run's ep 1 and 2.
        let names = |r: &TrainerReport| -> Vec<String> {
            r.checkpoints
                .iter()
                .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
                .collect()
        };
        assert_eq!(
            names(&first),
            ["policy_ep000001.vtm", "policy_ep000002.vtm"]
        );
        assert_eq!(
            names(&second),
            ["policy_ep000003.vtm", "policy_ep000004.vtm"]
        );
        for path in first.checkpoints.iter().chain(second.checkpoints.iter()) {
            assert!(path.exists(), "{} missing", path.display());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trainer_rejects_a_frozen_normalizer_up_front() {
        use crate::running_stat::RunningMeanStd;
        let mut a = agent(7);
        let mut rms = RunningMeanStd::new(2);
        rms.update(&[0.0, 1.0]);
        rms.update(&[1.0, 0.0]);
        a.set_obs_normalizer(Some(rms));
        let err = Trainer::for_env(Noisy::new(2))
            .episodes(2)
            .max_steps(2)
            .run(&mut a)
            .unwrap_err();
        assert!(
            err.to_string().contains("observation normalizer"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn zero_episodes_is_a_noop() {
        let mut a = agent(5);
        let before = a.clone();
        let report = Trainer::for_env(Noisy::new(2))
            .episodes(0)
            .max_steps(2)
            .run(&mut a)
            .unwrap();
        assert_eq!(report.rounds, 0);
        assert!(report.episode_returns.is_empty());
        assert_eq!(a, before);
    }
}
