//! Stochastic policy distributions.
//!
//! PPO requires sampling actions, evaluating their log-probability under the
//! current policy and differentiating that log-probability with respect to
//! the policy parameters. The diagonal Gaussian here supplies all three.

use rand::Rng;
use rand_distr_free::draw_standard_normal;
use vtm_nn::matrix::Matrix;

/// Natural logarithm of `2π`.
const LN_2PI: f64 = 1.8378770664093453;

/// A diagonal Gaussian over `R^d` parameterised by a mean vector and the
/// logarithm of the per-dimension standard deviation.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagGaussian {
    mean: Vec<f64>,
    log_std: Vec<f64>,
}

impl DiagGaussian {
    /// Creates a diagonal Gaussian.
    ///
    /// # Panics
    ///
    /// Panics if `mean` and `log_std` have different lengths or are empty.
    pub fn new(mean: Vec<f64>, log_std: Vec<f64>) -> Self {
        assert_eq!(
            mean.len(),
            log_std.len(),
            "mean and log_std must have the same dimension"
        );
        assert!(!mean.is_empty(), "distribution dimension must be positive");
        Self { mean, log_std }
    }

    /// Mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Replaces the mean vector in place, keeping the `log_std`.
    ///
    /// Used by the batched sampling hot path to reuse one distribution
    /// across a batch of per-row means instead of re-allocating the log-std
    /// for every row.
    ///
    /// # Panics
    ///
    /// Panics if the new mean's dimension differs from the distribution's.
    pub fn replace_mean(&mut self, mean: Vec<f64>) {
        assert_eq!(
            mean.len(),
            self.log_std.len(),
            "mean and log_std must have the same dimension"
        );
        self.mean = mean;
    }

    /// Copies a new mean in place without allocating (unlike
    /// [`DiagGaussian::replace_mean`], which takes ownership of a vector).
    ///
    /// # Panics
    ///
    /// Panics if the new mean's dimension differs from the distribution's.
    pub fn set_mean(&mut self, mean: &[f64]) {
        assert_eq!(
            mean.len(),
            self.log_std.len(),
            "mean and log_std must have the same dimension"
        );
        self.mean.copy_from_slice(mean);
    }

    /// Copies a new log-std in place without allocating. The batched PPO
    /// update reuses one distribution across minibatches while the trainable
    /// log-std evolves underneath it.
    ///
    /// # Panics
    ///
    /// Panics if the new log-std's dimension differs from the distribution's.
    pub fn set_log_std(&mut self, log_std: &[f64]) {
        assert_eq!(
            log_std.len(),
            self.mean.len(),
            "mean and log_std must have the same dimension"
        );
        self.log_std.copy_from_slice(log_std);
    }

    /// Per-dimension log standard deviation.
    pub fn log_std(&self) -> &[f64] {
        &self.log_std
    }

    /// Per-dimension standard deviation.
    pub fn std(&self) -> Vec<f64> {
        self.log_std.iter().map(|s| s.exp()).collect()
    }

    /// Dimensionality of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.mean
            .iter()
            .zip(self.log_std.iter())
            .map(|(&m, &ls)| m + ls.exp() * draw_standard_normal(rng))
            .collect()
    }

    /// Log-density of `x` under the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn log_prob(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "sample dimension mismatch");
        self.mean
            .iter()
            .zip(self.log_std.iter())
            .zip(x.iter())
            .map(|((&m, &ls), &xi)| {
                let var = (2.0 * ls).exp();
                -0.5 * ((xi - m) * (xi - m) / var + 2.0 * ls + LN_2PI)
            })
            .sum()
    }

    /// Differential entropy of the distribution.
    pub fn entropy(&self) -> f64 {
        self.log_std
            .iter()
            .map(|&ls| ls + 0.5 * (LN_2PI + 1.0))
            .sum()
    }

    /// Gradient of [`DiagGaussian::log_prob`] with respect to the mean vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn log_prob_grad_mean(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "sample dimension mismatch");
        self.mean
            .iter()
            .zip(self.log_std.iter())
            .zip(x.iter())
            .map(|((&m, &ls), &xi)| (xi - m) / (2.0 * ls).exp())
            .collect()
    }

    /// Batched [`DiagGaussian::log_prob`]: row `i` of `out` is the log-density
    /// of `actions.row(i)` under a Gaussian with mean `means.row(i)` and this
    /// distribution's log-std (the stored mean is ignored).
    ///
    /// Each row sums its per-dimension terms in the same order as the scalar
    /// path, so results are bit-identical to constructing one distribution
    /// per row. `out` is cleared and refilled; with retained capacity the
    /// call does not allocate.
    ///
    /// # Panics
    ///
    /// Panics if `means` and `actions` shapes differ or their width is not
    /// the distribution's dimension.
    pub fn log_prob_rows(&self, means: &Matrix, actions: &Matrix, out: &mut Vec<f64>) {
        self.check_rows(means, actions);
        out.clear();
        for i in 0..means.rows() {
            let lp: f64 = means
                .row(i)
                .iter()
                .zip(self.log_std.iter())
                .zip(actions.row(i).iter())
                .map(|((&m, &ls), &xi)| {
                    let var = (2.0 * ls).exp();
                    -0.5 * ((xi - m) * (xi - m) / var + 2.0 * ls + LN_2PI)
                })
                .sum();
            out.push(lp);
        }
    }

    /// Batched [`DiagGaussian::log_prob_grad_mean`]: row `i` of `out` is the
    /// gradient of `log_prob(actions.row(i))` with respect to the mean, for a
    /// Gaussian with mean `means.row(i)` and this distribution's log-std.
    /// Bit-identical to the scalar path per row; `out` is resized in place.
    ///
    /// # Panics
    ///
    /// Panics if `means` and `actions` shapes differ or their width is not
    /// the distribution's dimension.
    pub fn grad_mean_rows(&self, means: &Matrix, actions: &Matrix, out: &mut Matrix) {
        self.check_rows(means, actions);
        out.resize(means.rows(), self.dim());
        for i in 0..means.rows() {
            for (((o, &m), &ls), &xi) in out
                .row_mut(i)
                .iter_mut()
                .zip(means.row(i).iter())
                .zip(self.log_std.iter())
                .zip(actions.row(i).iter())
            {
                *o = (xi - m) / (2.0 * ls).exp();
            }
        }
    }

    /// Batched [`DiagGaussian::log_prob_grad_log_std`]: row `i` of `out` is
    /// the gradient of `log_prob(actions.row(i))` with respect to the log-std
    /// vector. Bit-identical to the scalar path per row; `out` is resized in
    /// place.
    ///
    /// # Panics
    ///
    /// Panics if `means` and `actions` shapes differ or their width is not
    /// the distribution's dimension.
    pub fn grad_log_std_rows(&self, means: &Matrix, actions: &Matrix, out: &mut Matrix) {
        self.check_rows(means, actions);
        out.resize(means.rows(), self.dim());
        for i in 0..means.rows() {
            for (((o, &m), &ls), &xi) in out
                .row_mut(i)
                .iter_mut()
                .zip(means.row(i).iter())
                .zip(self.log_std.iter())
                .zip(actions.row(i).iter())
            {
                *o = (xi - m) * (xi - m) / (2.0 * ls).exp() - 1.0;
            }
        }
    }

    fn check_rows(&self, means: &Matrix, actions: &Matrix) {
        assert_eq!(
            means.shape(),
            actions.shape(),
            "means and actions must have the same shape"
        );
        assert_eq!(means.cols(), self.dim(), "sample dimension mismatch");
    }

    /// Gradient of [`DiagGaussian::log_prob`] with respect to the log-std vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn log_prob_grad_log_std(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "sample dimension mismatch");
        self.mean
            .iter()
            .zip(self.log_std.iter())
            .zip(x.iter())
            .map(|((&m, &ls), &xi)| {
                let z2 = (xi - m) * (xi - m) / (2.0 * ls).exp();
                z2 - 1.0
            })
            .collect()
    }
}

/// Free-standing standard-normal sampling so that the crate does not depend on
/// `rand_distr` (kept internal; exposed only for testing determinism).
mod rand_distr_free {
    use rand::Rng;

    /// Draws a standard normal variate with the Box–Muller transform.
    pub fn draw_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_prob_matches_univariate_formula() {
        let d = DiagGaussian::new(vec![1.0], vec![0.5_f64.ln()]);
        // N(1, 0.25): log pdf at x = 1 is -0.5*ln(2*pi*0.25)
        let expected = -0.5 * (2.0 * std::f64::consts::PI * 0.25).ln();
        assert!((d.log_prob(&[1.0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn log_prob_decreases_away_from_mean() {
        let d = DiagGaussian::new(vec![0.0, 0.0], vec![0.0, 0.0]);
        assert!(d.log_prob(&[0.0, 0.0]) > d.log_prob(&[1.0, 1.0]));
        assert!(d.log_prob(&[1.0, 1.0]) > d.log_prob(&[3.0, -3.0]));
    }

    #[test]
    fn entropy_of_standard_normal() {
        let d = DiagGaussian::new(vec![0.0], vec![0.0]);
        let expected = 0.5 * (LN_2PI + 1.0);
        assert!((d.entropy() - expected).abs() < 1e-12);
        // Entropy grows with std.
        let wide = DiagGaussian::new(vec![0.0], vec![1.0]);
        assert!(wide.entropy() > d.entropy());
    }

    #[test]
    fn sample_mean_and_std_are_close_to_parameters() {
        let d = DiagGaussian::new(vec![2.0], vec![0.0]);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)[0]).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "sample mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "sample var {var}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mean = vec![0.3, -1.2];
        let log_std = vec![-0.4, 0.2];
        let x = vec![0.9, -0.5];
        let d = DiagGaussian::new(mean.clone(), log_std.clone());
        let gm = d.log_prob_grad_mean(&x);
        let gs = d.log_prob_grad_log_std(&x);
        let h = 1e-6;
        for i in 0..2 {
            let mut mp = mean.clone();
            mp[i] += h;
            let mut mm = mean.clone();
            mm[i] -= h;
            let numeric = (DiagGaussian::new(mp, log_std.clone()).log_prob(&x)
                - DiagGaussian::new(mm, log_std.clone()).log_prob(&x))
                / (2.0 * h);
            assert!((numeric - gm[i]).abs() < 1e-6, "mean grad {i}");

            let mut sp = log_std.clone();
            sp[i] += h;
            let mut sm = log_std.clone();
            sm[i] -= h;
            let numeric = (DiagGaussian::new(mean.clone(), sp).log_prob(&x)
                - DiagGaussian::new(mean.clone(), sm).log_prob(&x))
                / (2.0 * h);
            assert!((numeric - gs[i]).abs() < 1e-6, "log_std grad {i}");
        }
    }

    #[test]
    fn batched_row_ops_match_scalar_path_on_random_batches() {
        use rand::Rng;
        // Fixed-seed property test: for many random (mean, log_std, action)
        // batches, the batched row ops must agree bit-for-bit with one
        // scalar-path distribution per row.
        let mut rng = StdRng::seed_from_u64(1234);
        for case in 0..50 {
            let dim = 1 + (case % 4);
            let rows = 1 + (case % 7);
            let log_std: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..0.5)).collect();
            let mean_data: Vec<f64> = (0..rows * dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let act_data: Vec<f64> = (0..rows * dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let means = Matrix::from_vec(rows, dim, mean_data).unwrap();
            let actions = Matrix::from_vec(rows, dim, act_data).unwrap();
            let d = DiagGaussian::new(vec![0.0; dim], log_std.clone());

            let mut lps = Vec::new();
            let mut gm = Matrix::zeros(0, 0);
            let mut gs = Matrix::zeros(0, 0);
            d.log_prob_rows(&means, &actions, &mut lps);
            d.grad_mean_rows(&means, &actions, &mut gm);
            d.grad_log_std_rows(&means, &actions, &mut gs);
            assert_eq!(lps.len(), rows);
            for (i, &lp) in lps.iter().enumerate() {
                let scalar = DiagGaussian::new(means.row(i).to_vec(), log_std.clone());
                assert_eq!(lp, scalar.log_prob(actions.row(i)), "case {case} row {i}");
                assert_eq!(
                    gm.row(i),
                    scalar.log_prob_grad_mean(actions.row(i)).as_slice(),
                    "case {case} row {i} grad_mean"
                );
                assert_eq!(
                    gs.row(i),
                    scalar.log_prob_grad_log_std(actions.row(i)).as_slice(),
                    "case {case} row {i} grad_log_std"
                );
            }
        }
    }

    #[test]
    fn set_mean_and_set_log_std_update_in_place() {
        let mut d = DiagGaussian::new(vec![0.0, 0.0], vec![0.0, 0.0]);
        d.set_mean(&[1.0, -2.0]);
        d.set_log_std(&[-0.5, 0.25]);
        assert_eq!(d.mean(), &[1.0, -2.0]);
        assert_eq!(d.log_std(), &[-0.5, 0.25]);
        let reference = DiagGaussian::new(vec![1.0, -2.0], vec![-0.5, 0.25]);
        assert_eq!(d.log_prob(&[0.3, 0.7]), reference.log_prob(&[0.3, 0.7]));
    }

    #[test]
    #[should_panic(expected = "sample dimension mismatch")]
    fn batched_ops_reject_wrong_width() {
        let d = DiagGaussian::new(vec![0.0], vec![0.0]);
        let means = Matrix::zeros(2, 2);
        let actions = Matrix::zeros(2, 2);
        let mut out = Vec::new();
        d.log_prob_rows(&means, &actions, &mut out);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn mismatched_parameter_lengths_panic() {
        let _ = DiagGaussian::new(vec![0.0], vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "sample dimension mismatch")]
    fn log_prob_rejects_wrong_dim() {
        let d = DiagGaussian::new(vec![0.0], vec![0.0]);
        let _ = d.log_prob(&[0.0, 1.0]);
    }

    #[test]
    fn clone_roundtrip() {
        let d = DiagGaussian::new(vec![1.0, 2.0], vec![0.1, 0.2]);
        let back = d.clone();
        assert_eq!(d, back);
    }
}
