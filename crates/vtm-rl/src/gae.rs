//! Generalized Advantage Estimation (Schulman et al., 2016).
//!
//! The paper's Eq. (18) uses the episodic advantage estimator
//! `A(S_k, p_k) = -V(S_k) + Σ_{l=k}^{K-1} γ^{l-k} R_l + γ^{K-k} V(S_K)`,
//! which is the λ = 1 special case of GAE. The general `(γ, λ)` estimator is
//! provided because the ablation experiments sweep λ.

/// Computes discounted returns `G_k = Σ_{l>=k} γ^{l-k} r_l` for a single
/// episode, optionally bootstrapping from `terminal_value` when the episode
/// was truncated rather than terminated.
pub fn discounted_returns(rewards: &[f64], gamma: f64, terminal_value: f64) -> Vec<f64> {
    let mut returns = vec![0.0; rewards.len()];
    let mut acc = terminal_value;
    for (i, &r) in rewards.iter().enumerate().rev() {
        acc = r + gamma * acc;
        returns[i] = acc;
    }
    returns
}

/// Computes GAE advantages for a single episode.
///
/// * `rewards[k]` — reward received after acting at step `k`,
/// * `values[k]` — critic value estimate of the state at step `k`,
/// * `terminal_value` — value estimate of the state after the final step
///   (zero for a true terminal state, `V(S_K)` for a truncated episode, as in
///   the paper's Eq. (18)),
/// * `gamma` — discount factor, `lambda` — GAE smoothing factor.
///
/// Returns `(advantages, value_targets)` where `value_targets[k] =
/// advantages[k] + values[k]` is the regression target for the critic.
///
/// # Panics
///
/// Panics if `rewards.len() != values.len()` or either factor is outside `[0, 1]`.
pub fn gae_advantages(
    rewards: &[f64],
    values: &[f64],
    terminal_value: f64,
    gamma: f64,
    lambda: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        rewards.len(),
        values.len(),
        "rewards and values must have equal length"
    );
    assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    let n = rewards.len();
    let mut advantages = vec![0.0; n];
    let mut gae = 0.0;
    for k in (0..n).rev() {
        let next_value = if k + 1 < n {
            values[k + 1]
        } else {
            terminal_value
        };
        let delta = rewards[k] + gamma * next_value - values[k];
        gae = delta + gamma * lambda * gae;
        advantages[k] = gae;
    }
    let targets = advantages
        .iter()
        .zip(values.iter())
        .map(|(a, v)| a + v)
        .collect();
    (advantages, targets)
}

/// Normalises advantages to zero mean and unit standard deviation, a common
/// PPO variance-reduction step. Returns the input untouched when it has fewer
/// than two elements or zero variance.
pub fn normalize_advantages(advantages: &[f64]) -> Vec<f64> {
    if advantages.len() < 2 {
        return advantages.to_vec();
    }
    let n = advantages.len() as f64;
    let mean = advantages.iter().sum::<f64>() / n;
    let var = advantages
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum::<f64>()
        / n;
    let std = var.sqrt();
    if std < 1e-12 {
        return advantages.to_vec();
    }
    advantages.iter().map(|a| (a - mean) / std).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_with_zero_discount_equal_rewards() {
        let r = [1.0, 2.0, 3.0];
        assert_eq!(discounted_returns(&r, 0.0, 10.0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn returns_with_unit_discount_are_suffix_sums() {
        let r = [1.0, 2.0, 3.0];
        assert_eq!(discounted_returns(&r, 1.0, 0.0), vec![6.0, 5.0, 3.0]);
    }

    #[test]
    fn returns_bootstrap_terminal_value() {
        let r = [0.0];
        let out = discounted_returns(&r, 0.9, 10.0);
        assert!((out[0] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn gae_with_lambda_one_matches_paper_estimator() {
        // Eq. (18): A_k = -V_k + sum_{l=k}^{K-1} gamma^{l-k} R_l + gamma^{K-k} V_K.
        let rewards = [1.0, 0.0, 1.0, 1.0];
        let values = [0.5, 0.2, 0.3, 0.1];
        let terminal = 0.4;
        let gamma = 0.9;
        let (adv, targets) = gae_advantages(&rewards, &values, terminal, gamma, 1.0);
        for k in 0..rewards.len() {
            let mut ret = 0.0;
            for (l, &reward) in rewards.iter().enumerate().skip(k) {
                ret += gamma.powi((l - k) as i32) * reward;
            }
            ret += gamma.powi((rewards.len() - k) as i32) * terminal;
            let expected = ret - values[k];
            assert!(
                (adv[k] - expected).abs() < 1e-12,
                "k={k}: {} vs {expected}",
                adv[k]
            );
            assert!((targets[k] - (expected + values[k])).abs() < 1e-12);
        }
    }

    #[test]
    fn gae_with_lambda_zero_is_one_step_td() {
        let rewards = [1.0, 2.0];
        let values = [0.5, 1.5];
        let gamma = 0.9;
        let (adv, _) = gae_advantages(&rewards, &values, 0.0, gamma, 0.0);
        assert!((adv[0] - (1.0 + 0.9 * 1.5 - 0.5)).abs() < 1e-12);
        assert!((adv[1] - (2.0 + 0.0 - 1.5)).abs() < 1e-12);
    }

    #[test]
    fn telescoping_identity_holds() {
        // With lambda = 1, advantage + value == discounted return with bootstrap.
        let rewards = [0.3, -0.2, 0.7, 0.0, 1.0];
        let values = [0.1, 0.2, 0.3, 0.4, 0.5];
        let gamma = 0.95;
        let terminal = 0.25;
        let (_, targets) = gae_advantages(&rewards, &values, terminal, gamma, 1.0);
        let returns = discounted_returns(&rewards, gamma, terminal);
        for (t, r) in targets.iter().zip(returns.iter()) {
            assert!((t - r).abs() < 1e-12);
        }
    }

    #[test]
    fn normalisation_gives_zero_mean_unit_std() {
        let adv = [1.0, 2.0, 3.0, 4.0];
        let norm = normalize_advantages(&adv);
        let mean: f64 = norm.iter().sum::<f64>() / norm.len() as f64;
        let var: f64 =
            norm.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / norm.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalisation_handles_degenerate_input() {
        assert_eq!(normalize_advantages(&[5.0]), vec![5.0]);
        assert_eq!(normalize_advantages(&[2.0, 2.0, 2.0]), vec![2.0, 2.0, 2.0]);
        assert!(normalize_advantages(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = gae_advantages(&[1.0], &[1.0, 2.0], 0.0, 0.9, 0.95);
    }
}
