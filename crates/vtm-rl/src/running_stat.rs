//! Streaming statistics and simple hyper-parameter schedules.

/// Numerically stable streaming mean / variance (Welford's algorithm) over
/// vectors, used for optional observation normalisation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningMeanStd {
    count: f64,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl RunningMeanStd {
    /// Creates a tracker for `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            count: 0.0,
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
        }
    }

    /// Dimensionality of tracked vectors.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of observed vectors.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Current mean estimate.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Current (population) variance estimate; all zeros before two samples.
    pub fn variance(&self) -> Vec<f64> {
        if self.count < 2.0 {
            vec![0.0; self.mean.len()]
        } else {
            self.m2.iter().map(|m| m / self.count).collect()
        }
    }

    /// The raw accumulator state `(count, mean, m2)`, used by the policy
    /// snapshot codec to persist a normalizer exactly.
    pub fn state(&self) -> (f64, &[f64], &[f64]) {
        (self.count, &self.mean, &self.m2)
    }

    /// Rebuilds a tracker from a state captured by [`RunningMeanStd::state`].
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or disagree in length, or the count is
    /// negative / non-finite.
    pub fn from_state(count: f64, mean: Vec<f64>, m2: Vec<f64>) -> Self {
        assert!(!mean.is_empty(), "dimension must be positive");
        assert_eq!(mean.len(), m2.len(), "state vectors must agree in length");
        assert!(
            count.is_finite() && count >= 0.0,
            "count must be a non-negative finite number"
        );
        Self { count, mean, m2 }
    }

    /// Updates the statistics with one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn update(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.dim(), "observation dimension mismatch");
        self.count += 1.0;
        for (i, &xi) in x.iter().enumerate() {
            let delta = xi - self.mean[i];
            self.mean[i] += delta / self.count;
            let delta2 = xi - self.mean[i];
            self.m2[i] += delta * delta2;
        }
    }

    /// Normalises an observation to approximately zero mean / unit variance
    /// using the running statistics. Returns the input unchanged before any
    /// update has been recorded.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "observation dimension mismatch");
        if self.count < 2.0 {
            return x.to_vec();
        }
        let var = self.variance();
        x.iter()
            .enumerate()
            .map(|(i, &v)| (v - self.mean[i]) / (var[i].sqrt() + 1e-8))
            .collect()
    }
}

/// A linear schedule interpolating from `start` to `end` over `steps` calls,
/// used for learning-rate and exploration annealing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSchedule {
    start: f64,
    end: f64,
    steps: usize,
}

impl LinearSchedule {
    /// Creates a schedule. A `steps` of zero yields a constant `end` value.
    pub fn new(start: f64, end: f64, steps: usize) -> Self {
        Self { start, end, steps }
    }

    /// Creates a constant schedule.
    pub fn constant(value: f64) -> Self {
        Self::new(value, value, 0)
    }

    /// Value at step `t` (clamped to the end value after `steps`).
    pub fn value_at(&self, t: usize) -> f64 {
        if self.steps == 0 || t >= self.steps {
            self.end
        } else {
            let frac = t as f64 / self.steps as f64;
            self.start + (self.end - self.start) * frac
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_match_batch_statistics() {
        let data = [
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        let mut rs = RunningMeanStd::new(2);
        for x in &data {
            rs.update(x);
        }
        assert_eq!(rs.count(), 4.0);
        assert!((rs.mean()[0] - 2.5).abs() < 1e-12);
        assert!((rs.mean()[1] - 25.0).abs() < 1e-12);
        let var = rs.variance();
        assert!((var[0] - 1.25).abs() < 1e-12);
        assert!((var[1] - 125.0).abs() < 1e-12);
    }

    #[test]
    fn normalisation_centres_data() {
        let mut rs = RunningMeanStd::new(1);
        for i in 0..100 {
            rs.update(&[i as f64]);
        }
        let z = rs.normalize(&[49.5]);
        assert!(z[0].abs() < 1e-9);
    }

    #[test]
    fn normalisation_is_identity_before_updates() {
        let rs = RunningMeanStd::new(2);
        assert_eq!(rs.normalize(&[3.0, -4.0]), vec![3.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = RunningMeanStd::new(0);
    }

    #[test]
    fn state_round_trips_exactly() {
        let mut rs = RunningMeanStd::new(2);
        for i in 0..7 {
            rs.update(&[i as f64, -2.0 * i as f64]);
        }
        let (count, mean, m2) = rs.state();
        let back = RunningMeanStd::from_state(count, mean.to_vec(), m2.to_vec());
        assert_eq!(rs, back);
        assert_eq!(rs.normalize(&[3.0, 1.0]), back.normalize(&[3.0, 1.0]));
    }

    #[test]
    fn linear_schedule_interpolates() {
        let s = LinearSchedule::new(1.0, 0.0, 10);
        assert_eq!(s.value_at(0), 1.0);
        assert!((s.value_at(5) - 0.5).abs() < 1e-12);
        assert_eq!(s.value_at(10), 0.0);
        assert_eq!(s.value_at(100), 0.0);
    }

    #[test]
    fn constant_schedule_is_flat() {
        let s = LinearSchedule::constant(0.3);
        assert_eq!(s.value_at(0), 0.3);
        assert_eq!(s.value_at(1000), 0.3);
    }
}
