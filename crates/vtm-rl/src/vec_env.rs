//! Vectorized environments and deterministic parallel rollout collection.
//!
//! Rollout collection is the dominant cost of every DRL experiment in this
//! workspace: the serial loop in [`PpoAgent::collect_episodes`] runs two
//! row-vector network forward passes (actor + critic) per environment step.
//! This module removes that bottleneck twice over:
//!
//! 1. **Batching** — [`VecEnv`] steps `N` environment replicas in lockstep,
//!    so each collection step costs one actor and one critic *matrix* forward
//!    pass over all active replicas ([`PpoAgent::act_batch`]) instead of `2N`
//!    row-vector passes.
//! 2. **Parallelism** — [`ParallelCollector`] splits the replicas into
//!    contiguous chunks and collects each chunk on its own OS thread
//!    (`std::thread::scope`; the build environment has no crates.io access,
//!    so no rayon — plain scoped threads do the job for chunk-level
//!    fan-out).
//!
//! # Determinism
//!
//! Every environment replica owns a dedicated RNG stream derived from
//! [`CollectorConfig::seed`] and the replica index. A replica's trajectory
//! therefore depends only on its own stream, its own environment state and
//! the (frozen) policy parameters — never on thread scheduling or on how
//! replicas are grouped into batches. Combined with the bit-stable batched
//! forward pass ([`vtm_nn::mlp::Mlp::forward_rows`]), this makes
//! [`ParallelCollector::collect`] and [`ParallelCollector::collect_serial`]
//! produce *identical* transitions for the same seed, which the test suite
//! asserts.
//!
//! # Example
//!
//! ```
//! use vtm_rl::prelude::*;
//!
//! // A fixed-horizon toy environment.
//! struct Toy { t: usize }
//! impl Environment for Toy {
//!     fn observation_dim(&self) -> usize { 1 }
//!     fn action_space(&self) -> ActionSpace { ActionSpace::scalar(0.0, 1.0) }
//!     fn reset(&mut self) -> Vec<f64> { self.t = 0; vec![0.0] }
//!     fn step(&mut self, action: &[f64]) -> Step {
//!         self.t += 1;
//!         Step { observation: vec![self.t as f64], reward: action[0], done: self.t >= 4 }
//!     }
//! }
//!
//! let agent = PpoAgent::new(PpoConfig::new(1, 1).with_seed(3), ActionSpace::scalar(0.0, 1.0));
//! let mut venv = VecEnv::from_fn(8, |_| Toy { t: 0 });
//! let collector = ParallelCollector::new(CollectorConfig::new(2, 4).with_seed(3));
//! let rollouts = collector.collect(&agent, &mut venv);
//! assert_eq!(rollouts.total_transitions(), 8 * 2 * 4);
//! assert_eq!(rollouts.episode_returns().len(), 16);
//! ```

use std::thread;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::buffer::{RolloutBuffer, Transition};
use crate::env::{ActionSpace, Environment};
use crate::ppo::PpoAgent;

/// A fixed-size set of environment replicas stepped in lockstep.
///
/// All replicas must agree on the observation dimension and the action
/// space; [`VecEnv::new`] validates this once so the collector can batch
/// observations without re-checking shapes every step.
#[derive(Debug, Clone)]
pub struct VecEnv<E> {
    envs: Vec<E>,
}

impl<E: Environment> VecEnv<E> {
    /// Wraps a non-empty set of environment replicas.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty or the replicas disagree on observation
    /// dimension or action space.
    pub fn new(envs: Vec<E>) -> Self {
        assert!(!envs.is_empty(), "VecEnv needs at least one environment");
        let obs_dim = envs[0].observation_dim();
        let space = envs[0].action_space();
        for (i, env) in envs.iter().enumerate().skip(1) {
            assert_eq!(
                env.observation_dim(),
                obs_dim,
                "environment {i} disagrees on observation dimension"
            );
            assert_eq!(
                env.action_space(),
                space,
                "environment {i} disagrees on action space"
            );
        }
        Self { envs }
    }

    /// Builds `n` replicas from a factory closure (typically closing over a
    /// base configuration and varying the seed by index).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the factory produces inconsistent replicas.
    pub fn from_fn(n: usize, factory: impl FnMut(usize) -> E) -> Self {
        Self::new((0..n).map(factory).collect())
    }

    /// Number of environment replicas.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// Whether the set is empty (never true for a constructed `VecEnv`).
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// Observation dimensionality shared by all replicas.
    pub fn observation_dim(&self) -> usize {
        self.envs[0].observation_dim()
    }

    /// Action space shared by all replicas.
    pub fn action_space(&self) -> ActionSpace {
        self.envs[0].action_space()
    }

    /// Read access to the replicas.
    pub fn envs(&self) -> &[E] {
        &self.envs
    }

    /// Mutable access to the replicas.
    pub fn envs_mut(&mut self) -> &mut [E] {
        &mut self.envs
    }

    /// Consumes the wrapper and returns the replicas.
    pub fn into_envs(self) -> Vec<E> {
        self.envs
    }

    /// Resets every replica, returning the initial observations in order.
    pub fn reset_all(&mut self) -> Vec<Vec<f64>> {
        self.envs.iter_mut().map(Environment::reset).collect()
    }
}

/// Configuration of a [`ParallelCollector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorConfig {
    /// Complete episodes to collect from every replica.
    pub episodes_per_env: usize,
    /// Upper bound on episode length; episodes that reach it are truncated
    /// with `done = true`, mirroring [`PpoAgent::collect_episodes`].
    pub max_steps: usize,
    /// Base seed of the per-replica RNG streams.
    pub seed: u64,
    /// Worker threads for [`ParallelCollector::collect`]; `0` means one per
    /// available CPU core.
    pub num_threads: usize,
}

impl CollectorConfig {
    /// Creates a configuration collecting `episodes_per_env` episodes of at
    /// most `max_steps` steps, seeded with 0, one thread per core.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(episodes_per_env: usize, max_steps: usize) -> Self {
        assert!(episodes_per_env > 0, "episodes_per_env must be positive");
        assert!(max_steps > 0, "max_steps must be positive");
        Self {
            episodes_per_env,
            max_steps,
            seed: 0,
            num_threads: 0,
        }
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the worker-thread count (`0` = one per core).
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            thread::available_parallelism().map_or(1, usize::from)
        }
    }

    /// The RNG stream owned by replica `index`.
    ///
    /// Streams are decorrelated by multiplying the (1-based) index with a
    /// 64-bit golden-ratio constant before xor-ing into the base seed, the
    /// same construction [`PpoAgent`] uses for its internal draws.
    pub fn rng_for_env(&self, index: usize) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns a copy whose base seed is advanced for training round
    /// `round`, so that repeated collections within one training run draw
    /// fresh exploration noise while the run as a whole stays deterministic.
    ///
    /// Uses a wrapping-add advance with a constant unrelated to the xor
    /// decorrelation of [`CollectorConfig::rng_for_env`], so per-round and
    /// per-replica streams cannot collide in practice.
    pub fn for_round(&self, round: u64) -> Self {
        Self {
            seed: self
                .seed
                .wrapping_add((round + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)),
            ..*self
        }
    }
}

/// Everything collected from one environment replica.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvRollout {
    /// Transitions in collection order (episodes concatenated).
    pub transitions: Vec<Transition>,
    /// Undiscounted return of each completed episode.
    pub returns: Vec<f64>,
}

/// The result of one collection pass over a [`VecEnv`].
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedRollouts {
    /// Per-replica rollouts, in replica order.
    pub per_env: Vec<EnvRollout>,
}

impl CollectedRollouts {
    /// Total number of transitions across all replicas.
    pub fn total_transitions(&self) -> usize {
        self.per_env.iter().map(|r| r.transitions.len()).sum()
    }

    /// All episode returns, flattened in replica order.
    pub fn episode_returns(&self) -> Vec<f64> {
        self.per_env
            .iter()
            .flat_map(|r| r.returns.iter().copied())
            .collect()
    }

    /// Mean episode return (0.0 when no episode completed).
    pub fn mean_return(&self) -> f64 {
        let returns = self.episode_returns();
        if returns.is_empty() {
            0.0
        } else {
            returns.iter().sum::<f64>() / returns.len() as f64
        }
    }

    /// Moves every transition into `buffer`, replica by replica.
    pub fn drain_into(self, buffer: &mut RolloutBuffer) {
        for rollout in self.per_env {
            for transition in rollout.transitions {
                buffer.push(transition);
            }
        }
    }
}

/// Collects rollouts from a [`VecEnv`] with batched policy evaluation and
/// chunk-level thread parallelism. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelCollector {
    config: CollectorConfig,
}

impl ParallelCollector {
    /// Creates a collector.
    pub fn new(config: CollectorConfig) -> Self {
        Self { config }
    }

    /// The collector's configuration.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// Collects the configured episodes from every replica in parallel.
    ///
    /// Replicas are split into `num_threads` contiguous chunks, each chunk
    /// collected on its own scoped thread with lockstep-batched forward
    /// passes. Output order is replica order regardless of scheduling, and
    /// contents are identical to [`ParallelCollector::collect_serial`].
    pub fn collect<E: Environment + Send>(
        &self,
        agent: &PpoAgent,
        venv: &mut VecEnv<E>,
    ) -> CollectedRollouts {
        self.collect_impl(agent, venv, None)
    }

    /// Like [`ParallelCollector::collect`], but replica `i`'s *first* episode
    /// starts from `Environment::reset_with_seed(reset_seeds[i])` instead of
    /// a plain reset, pinning it to an exact environment stream (subsequent
    /// episodes of the same call, if any, continue with plain resets).
    ///
    /// This is how the round-addressed [`Trainer`](crate::trainer::Trainer)
    /// seed schedule reaches the environments without a redundant extra
    /// reset per round.
    ///
    /// # Panics
    ///
    /// Panics if `reset_seeds.len() != venv.len()`.
    pub fn collect_seeded<E: Environment + Send>(
        &self,
        agent: &PpoAgent,
        venv: &mut VecEnv<E>,
        reset_seeds: &[u64],
    ) -> CollectedRollouts {
        assert_eq!(
            reset_seeds.len(),
            venv.len(),
            "one reset seed per environment replica"
        );
        self.collect_impl(agent, venv, Some(reset_seeds))
    }

    fn collect_impl<E: Environment + Send>(
        &self,
        agent: &PpoAgent,
        venv: &mut VecEnv<E>,
        reset_seeds: Option<&[u64]>,
    ) -> CollectedRollouts {
        let n = venv.len();
        let threads = self.config.resolved_threads().min(n).max(1);
        if threads == 1 {
            return self.collect_serial_impl(agent, venv, reset_seeds);
        }
        let chunk_size = n.div_ceil(threads);
        let mut rngs: Vec<StdRng> = (0..n).map(|i| self.config.rng_for_env(i)).collect();
        let config = self.config;
        let env_chunks = venv.envs_mut().chunks_mut(chunk_size);
        let rng_chunks = rngs.chunks_mut(chunk_size);
        let per_env = thread::scope(|scope| {
            let handles: Vec<_> = env_chunks
                .zip(rng_chunks)
                .enumerate()
                .map(|(chunk_idx, (envs, rngs))| {
                    let seeds = reset_seeds
                        .map(|s| &s[chunk_idx * chunk_size..chunk_idx * chunk_size + envs.len()]);
                    scope.spawn(move || collect_chunk(agent, envs, rngs, seeds, &config))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("rollout worker thread panicked"))
                .collect()
        });
        CollectedRollouts { per_env }
    }

    /// Collects the configured episodes on the calling thread only.
    ///
    /// Still uses lockstep-batched forward passes over all replicas; the only
    /// difference from [`ParallelCollector::collect`] is the absence of
    /// worker threads, which makes this the reference implementation for the
    /// determinism tests and for single-core machines.
    pub fn collect_serial<E: Environment>(
        &self,
        agent: &PpoAgent,
        venv: &mut VecEnv<E>,
    ) -> CollectedRollouts {
        self.collect_serial_impl(agent, venv, None)
    }

    /// The single-threaded collection path shared by [`collect_serial`] and
    /// the `threads == 1` branch of the parallel entry points.
    ///
    /// [`collect_serial`]: ParallelCollector::collect_serial
    fn collect_serial_impl<E: Environment>(
        &self,
        agent: &PpoAgent,
        venv: &mut VecEnv<E>,
        reset_seeds: Option<&[u64]>,
    ) -> CollectedRollouts {
        let n = venv.len();
        let mut rngs: Vec<StdRng> = (0..n).map(|i| self.config.rng_for_env(i)).collect();
        CollectedRollouts {
            per_env: collect_chunk(agent, venv.envs_mut(), &mut rngs, reset_seeds, &self.config),
        }
    }

    /// Convenience training loop over a vectorized environment: repeatedly
    /// collects, processes with the agent's GAE settings and updates the
    /// agent, returning the mean episode return of every iteration.
    ///
    /// The vectorized counterpart of [`PpoAgent::train`]: each iteration
    /// feeds `len(venv) * episodes_per_env` episodes into one PPO update.
    pub fn train<E: Environment + Send>(
        &self,
        agent: &mut PpoAgent,
        venv: &mut VecEnv<E>,
        iterations: usize,
    ) -> Vec<f64> {
        let mut history = Vec::with_capacity(iterations);
        for iteration in 0..iterations {
            // Fresh exploration noise every round, deterministically.
            let rollouts = ParallelCollector::new(self.config.for_round(iteration as u64))
                .collect(agent, venv);
            let mean_return = rollouts.mean_return();
            let mut buffer = RolloutBuffer::new();
            rollouts.drain_into(&mut buffer);
            let samples = buffer.process(
                agent.config().gamma,
                agent.config().gae_lambda,
                0.0,
                agent.config().normalize_advantages,
            );
            agent.update(&samples);
            history.push(mean_return);
        }
        history
    }
}

/// Per-replica bookkeeping for the lockstep loop.
struct ReplicaState {
    observation: Vec<f64>,
    step_in_episode: usize,
    episodes_done: usize,
    episode_return: f64,
    rollout: EnvRollout,
}

/// Collects `config.episodes_per_env` episodes from every environment in
/// `envs`, stepping all not-yet-finished replicas in lockstep so the policy
/// and value networks run one batched forward pass per collection step.
/// When `reset_seeds` is given, replica `i`'s first episode starts from
/// `reset_with_seed(reset_seeds[i])`.
fn collect_chunk<E: Environment>(
    agent: &PpoAgent,
    envs: &mut [E],
    rngs: &mut [StdRng],
    reset_seeds: Option<&[u64]>,
    config: &CollectorConfig,
) -> Vec<EnvRollout> {
    debug_assert_eq!(envs.len(), rngs.len());
    let mut states: Vec<ReplicaState> = envs
        .iter_mut()
        .enumerate()
        .map(|(i, env)| ReplicaState {
            observation: match reset_seeds {
                Some(seeds) => env.reset_with_seed(seeds[i]),
                None => env.reset(),
            },
            step_in_episode: 0,
            episodes_done: 0,
            episode_return: 0.0,
            rollout: EnvRollout {
                transitions: Vec::new(),
                returns: Vec::with_capacity(config.episodes_per_env),
            },
        })
        .collect();

    loop {
        // Gather the active replicas' indices, observations and RNG streams
        // in one pass over the same predicate, so an (observation, stream)
        // pair can never desynchronize from its replica.
        let mut active = Vec::with_capacity(envs.len());
        let mut observations = Vec::with_capacity(envs.len());
        let mut stream_refs: Vec<&mut StdRng> = Vec::with_capacity(envs.len());
        for (i, (state, rng)) in states.iter().zip(rngs.iter_mut()).enumerate() {
            if state.episodes_done < config.episodes_per_env {
                active.push(i);
                observations.push(state.observation.as_slice());
                stream_refs.push(rng);
            }
        }
        if active.is_empty() {
            break;
        }

        // One batched actor + critic forward pass for every active replica.
        let samples = agent.act_batch(&observations, &mut stream_refs);
        drop(observations);

        for (sample, &i) in samples.into_iter().zip(active.iter()) {
            let state = &mut states[i];
            let step = envs[i].step(&sample.env_action);
            state.step_in_episode += 1;
            state.episode_return += step.reward;
            let done = step.done || state.step_in_episode == config.max_steps;
            state.rollout.transitions.push(Transition {
                observation: std::mem::take(&mut state.observation),
                action: sample.raw_action,
                log_prob: sample.log_prob,
                value: sample.value,
                reward: step.reward,
                done,
            });
            if done {
                state.rollout.returns.push(state.episode_return);
                state.episode_return = 0.0;
                state.step_in_episode = 0;
                state.episodes_done += 1;
                if state.episodes_done < config.episodes_per_env {
                    state.observation = envs[i].reset();
                }
            } else {
                state.observation = step.observation;
            }
        }
    }

    states.into_iter().map(|s| s.rollout).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Step;
    use crate::ppo::PpoConfig;

    /// A two-step environment whose rewards depend on the action, so that
    /// trajectory equality is a meaningful determinism check.
    #[derive(Debug, Clone)]
    struct Ramp {
        t: usize,
        horizon: usize,
    }

    impl Ramp {
        fn new(horizon: usize) -> Self {
            Self { t: 0, horizon }
        }
    }

    impl Environment for Ramp {
        fn observation_dim(&self) -> usize {
            2
        }
        fn action_space(&self) -> ActionSpace {
            ActionSpace::scalar(0.0, 1.0)
        }
        fn reset(&mut self) -> Vec<f64> {
            self.t = 0;
            vec![0.0, 1.0]
        }
        fn step(&mut self, action: &[f64]) -> Step {
            self.t += 1;
            Step {
                observation: vec![self.t as f64 / self.horizon as f64, 1.0],
                reward: action[0],
                done: self.t >= self.horizon,
            }
        }
    }

    fn agent() -> PpoAgent {
        PpoAgent::new(
            PpoConfig::new(2, 1).with_seed(5),
            ActionSpace::scalar(0.0, 1.0),
        )
    }

    #[test]
    fn vec_env_validates_replicas() {
        let mut venv = VecEnv::from_fn(4, |_| Ramp::new(3));
        assert_eq!(venv.len(), 4);
        assert!(!venv.is_empty());
        assert_eq!(venv.observation_dim(), 2);
        assert_eq!(venv.action_space().dim(), 1);
        assert_eq!(venv.reset_all().len(), 4);
        assert_eq!(venv.into_envs().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one environment")]
    fn empty_vec_env_rejected() {
        let _ = VecEnv::<Ramp>::new(vec![]);
    }

    #[test]
    fn collector_collects_requested_episodes() {
        let agent = agent();
        let mut venv = VecEnv::from_fn(3, |_| Ramp::new(4));
        let collector = ParallelCollector::new(CollectorConfig::new(2, 10).with_seed(1));
        let rollouts = collector.collect_serial(&agent, &mut venv);
        assert_eq!(rollouts.per_env.len(), 3);
        for rollout in &rollouts.per_env {
            assert_eq!(rollout.returns.len(), 2);
            assert_eq!(rollout.transitions.len(), 8); // 2 episodes x 4 steps
                                                      // Episode boundaries carry done flags.
            assert!(rollout.transitions[3].done);
            assert!(rollout.transitions[7].done);
        }
        assert_eq!(rollouts.total_transitions(), 24);
        assert_eq!(rollouts.episode_returns().len(), 6);
    }

    #[test]
    fn max_steps_truncates_episodes() {
        let agent = agent();
        // Horizon 100 but cap at 5 steps.
        let mut venv = VecEnv::from_fn(2, |_| Ramp::new(100));
        let collector = ParallelCollector::new(CollectorConfig::new(1, 5).with_seed(2));
        let rollouts = collector.collect_serial(&agent, &mut venv);
        for rollout in &rollouts.per_env {
            assert_eq!(rollout.transitions.len(), 5);
            assert!(rollout.transitions[4].done, "truncation must set done");
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let agent = agent();
        let config = CollectorConfig::new(3, 6).with_seed(42);
        let mut venv_a = VecEnv::from_fn(8, |_| Ramp::new(6));
        let mut venv_b = VecEnv::from_fn(8, |_| Ramp::new(6));
        let serial = ParallelCollector::new(config.with_threads(1)).collect(&agent, &mut venv_a);
        let parallel = ParallelCollector::new(config.with_threads(4)).collect(&agent, &mut venv_b);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn drain_into_preserves_episode_structure() {
        let agent = agent();
        let mut venv = VecEnv::from_fn(2, |_| Ramp::new(3));
        let collector = ParallelCollector::new(CollectorConfig::new(2, 3).with_seed(3));
        let rollouts = collector.collect_serial(&agent, &mut venv);
        let returns = rollouts.episode_returns();
        let mut buffer = RolloutBuffer::new();
        rollouts.drain_into(&mut buffer);
        assert_eq!(buffer.len(), 12);
        let buffered = buffer.episode_returns();
        assert_eq!(buffered.len(), 4);
        for (a, b) in returns.iter().zip(buffered.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn train_runs_and_reports_history() {
        let mut agent = agent();
        let mut venv = VecEnv::from_fn(4, |_| Ramp::new(3));
        let collector = ParallelCollector::new(CollectorConfig::new(1, 3).with_seed(4));
        let history = collector.train(&mut agent, &mut venv, 3);
        assert_eq!(history.len(), 3);
        assert!(history.iter().all(|r| r.is_finite()));
    }
}
