//! Environment abstractions for episodic reinforcement learning.

/// Inclusive box bounds for a continuous action space.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionSpace {
    /// Lower bound of every action dimension.
    pub low: Vec<f64>,
    /// Upper bound of every action dimension.
    pub high: Vec<f64>,
}

impl ActionSpace {
    /// Creates a one-dimensional action space `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is not finite.
    pub fn scalar(low: f64, high: f64) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "scalar action space requires finite low < high"
        );
        Self {
            low: vec![low],
            high: vec![high],
        }
    }

    /// Number of action dimensions.
    pub fn dim(&self) -> usize {
        self.low.len()
    }

    /// Clamps an action into the box, element-wise.
    pub fn clamp(&self, action: &[f64]) -> Vec<f64> {
        action
            .iter()
            .zip(self.low.iter().zip(self.high.iter()))
            .map(|(&a, (&lo, &hi))| a.clamp(lo, hi))
            .collect()
    }

    /// Maps an unconstrained vector into the box using a scaled `tanh` squash.
    pub fn squash(&self, raw: &[f64]) -> Vec<f64> {
        raw.iter()
            .zip(self.low.iter().zip(self.high.iter()))
            .map(|(&x, (&lo, &hi))| lo + (hi - lo) * 0.5 * (x.tanh() + 1.0))
            .collect()
    }

    /// Returns `true` if `action` lies inside the box (within `1e-12` slack).
    pub fn contains(&self, action: &[f64]) -> bool {
        action.len() == self.dim()
            && action
                .iter()
                .zip(self.low.iter().zip(self.high.iter()))
                .all(|(&a, (&lo, &hi))| a >= lo - 1e-12 && a <= hi + 1e-12)
    }
}

/// Result of a single environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Observation after the transition.
    pub observation: Vec<f64>,
    /// Scalar reward for the transition.
    pub reward: f64,
    /// Whether the episode terminated with this transition.
    pub done: bool,
}

/// An episodic, partially observable environment with continuous actions.
///
/// Observations and actions are plain `Vec<f64>` so that environments do not
/// depend on the network substrate.
pub trait Environment {
    /// Dimensionality of the observation vector.
    fn observation_dim(&self) -> usize;

    /// The action space.
    fn action_space(&self) -> ActionSpace;

    /// Resets the environment and returns the initial observation.
    fn reset(&mut self) -> Vec<f64>;

    /// Resets the environment after reseeding its internal randomness.
    ///
    /// Snapshot tests, the [`Trainer`](crate::trainer::Trainer)'s
    /// round-addressed seed schedule and replicated-experiment harnesses use
    /// this to pin an episode to an exact random stream regardless of how
    /// many episodes the environment has already played.
    ///
    /// **Default behaviour:** the seed is *ignored* and a plain
    /// [`Environment::reset`] runs. That is correct only for environments
    /// with no internal randomness; any stochastic environment must override
    /// this method (reseed its RNG, then reset), or checkpoint-resumed
    /// training will silently diverge from an uninterrupted run. The
    /// `reset_seed_contract` integration tests in `vtm-core` assert the
    /// override for both shipped pricing environments.
    fn reset_with_seed(&mut self, _seed: u64) -> Vec<f64> {
        self.reset()
    }

    /// Applies `action` and returns the resulting transition.
    ///
    /// Implementations may clamp the action into the action space; callers
    /// should not rely on out-of-range actions having meaningful effects.
    fn step(&mut self, action: &[f64]) -> Step;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_space_has_dim_one() {
        let space = ActionSpace::scalar(-1.0, 1.0);
        assert_eq!(space.dim(), 1);
        assert!(space.contains(&[0.0]));
        assert!(!space.contains(&[2.0]));
        assert!(!space.contains(&[0.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "finite low < high")]
    fn scalar_space_rejects_inverted_bounds() {
        let _ = ActionSpace::scalar(1.0, -1.0);
    }

    #[test]
    fn clamp_limits_each_dimension() {
        let space = ActionSpace {
            low: vec![0.0, -1.0],
            high: vec![1.0, 1.0],
        };
        assert_eq!(space.clamp(&[5.0, -7.0]), vec![1.0, -1.0]);
    }

    #[test]
    fn squash_maps_into_bounds() {
        let space = ActionSpace::scalar(5.0, 50.0);
        for raw in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let a = space.squash(&[raw]);
            assert!(space.contains(&a), "{a:?} outside bounds for raw {raw}");
        }
        // Zero maps to the midpoint.
        assert!((space.squash(&[0.0])[0] - 27.5).abs() < 1e-12);
    }

    #[test]
    fn reset_with_seed_defaults_to_plain_reset() {
        struct Counter {
            resets: usize,
        }
        impl Environment for Counter {
            fn observation_dim(&self) -> usize {
                1
            }
            fn action_space(&self) -> ActionSpace {
                ActionSpace::scalar(0.0, 1.0)
            }
            fn reset(&mut self) -> Vec<f64> {
                self.resets += 1;
                vec![self.resets as f64]
            }
            fn step(&mut self, _action: &[f64]) -> Step {
                Step {
                    observation: vec![0.0],
                    reward: 0.0,
                    done: true,
                }
            }
        }
        let mut env = Counter { resets: 0 };
        assert_eq!(env.reset_with_seed(7), vec![1.0]);
        assert_eq!(env.reset_with_seed(7), vec![2.0]);
    }

    #[test]
    fn step_is_inspectable() {
        let s = Step {
            observation: vec![1.0],
            reward: 0.5,
            done: false,
        };
        let debug = format!("{s:?}");
        assert!(debug.contains("reward"));
    }
}
