//! The pricing service: a frozen policy plus sharded session state answering
//! quote requests in batches.

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::SeedableRng;

use vtm_nn::codec::{fnv1a, CodecError, PayloadReader, PayloadWriter};
use vtm_nn::inference::InferenceModel;
use vtm_nn::matrix::ShapeError;
use vtm_nn::mlp::Mlp;
use vtm_rl::distribution::DiagGaussian;
use vtm_rl::env::ActionSpace;
use vtm_rl::running_stat::RunningMeanStd;
use vtm_rl::snapshot::{PolicySnapshot, SnapshotError};

use crate::store::{SessionStore, StoreConfig, GOLDEN};

/// Per-request observation rows plus warm-up flags and per-session draw
/// counters, produced by one locked pass over the session shards.
type GatheredObservations = (Vec<Vec<f64>>, Vec<bool>, Vec<u64>);

/// Typed failure modes of the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Loading or validating the policy snapshot failed.
    Snapshot(SnapshotError),
    /// The service configuration disagrees with the policy's input geometry.
    GeometryMismatch {
        /// `history_length * features_per_round` from the configuration.
        configured_obs_dim: usize,
        /// The actor network's input width.
        policy_obs_dim: usize,
    },
    /// A request's feature block has the wrong width.
    BadFeatureBlock {
        /// The offending session id.
        session: u64,
        /// Expected features per round.
        expected: usize,
        /// Features actually supplied.
        got: usize,
    },
    /// The batched forward pass rejected the assembled observation matrix
    /// (indicates an internal geometry bug, surfaced instead of panicking).
    Forward(ShapeError),
    /// A serialized service-state payload (journal snapshot) is corrupt,
    /// truncated or structurally incompatible with this service.
    State(CodecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Snapshot(err) => write!(f, "snapshot error: {err}"),
            ServeError::GeometryMismatch {
                configured_obs_dim,
                policy_obs_dim,
            } => write!(
                f,
                "service geometry (obs dim {configured_obs_dim}) does not match the policy \
                 (obs dim {policy_obs_dim})"
            ),
            ServeError::BadFeatureBlock {
                session,
                expected,
                got,
            } => write!(
                f,
                "session {session}: feature block has {got} features, expected {expected}"
            ),
            ServeError::Forward(err) => write!(f, "batched forward failed: {err}"),
            ServeError::State(err) => write!(f, "state payload error: {err}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Snapshot(err) => Some(err),
            ServeError::Forward(err) => Some(err),
            ServeError::State(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ServeError {
    fn from(err: SnapshotError) -> Self {
        ServeError::Snapshot(err)
    }
}

/// How the service turns the actor's Gaussian mean into a quoted action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferenceMode {
    /// Deterministic: quote the squashed mean action. Identical request
    /// streams yield identical prices — the mode production pricing uses.
    #[default]
    Greedy,
    /// Stochastic: add Gaussian exploration noise drawn from a per-session
    /// counter-based stream (reproducible, but varying across rounds).
    Sample,
}

/// Numeric precision of the frozen serving forward pass.
///
/// Training, journal replay and state digests are pinned at double
/// precision across the whole workspace; this knob only selects how the
/// *frozen* actor evaluates observation rows at serving time. The contract
/// — where each mode is allowed and how f32 correctness is verified — is
/// documented in `docs/NUMERICS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Reference double-precision path: quotes are bit-identical to the
    /// training-side actor (`Mlp::forward_vec`) and to every determinism
    /// pin from earlier PRs. The default.
    #[default]
    F64,
    /// Quantized fast path: the actor's weights are rounded once, at
    /// service construction, into a structure-of-arrays f32
    /// [`InferenceModel`] and evaluated by fused f32 kernels. Greedy
    /// decisions agree with [`Precision::F64`] within the tested error
    /// bound; observation normalization and the action-space squash stay
    /// f64.
    F32,
}

impl Precision {
    /// Human-readable name (`"f64"` / `"f32"`), used by bench JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static configuration of a [`PricingService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Observation history length `L` the policy was trained with.
    pub history_length: usize,
    /// Feature-block width per round (e.g. `1 + N` for the static market,
    /// `OBS_FEATURES` for scenario environments).
    pub features_per_round: usize,
    /// Number of session-state shards (lock granularity under concurrency).
    pub shards: usize,
    /// Maximum live sessions per shard (`0` = unbounded). Inserting into a
    /// full shard evicts that shard's least-recently-touched session, so a
    /// fleet of distinct VMU ids cannot exhaust memory.
    pub session_capacity: usize,
    /// Idle session lifetime in logical ticks — one tick per request served
    /// by the session's shard (`0` = never expire). See
    /// [`StoreConfig::ttl_quotes`].
    pub session_ttl: u64,
    /// Worker threads for the batched forward pass (`1` = inline, `0` = one
    /// per core). Chunks of the batch are evaluated on scoped threads;
    /// results are bit-identical for every thread count because
    /// [`Mlp::forward_rows`] is row-independent.
    pub inference_threads: usize,
    /// Quote mode.
    pub mode: InferenceMode,
    /// Forward-pass precision (f64 reference or quantized f32 fast path).
    pub precision: Precision,
}

impl ServiceConfig {
    /// A configuration with 16 shards and greedy inference.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(history_length: usize, features_per_round: usize) -> Self {
        assert!(history_length > 0, "history length must be positive");
        assert!(features_per_round > 0, "feature width must be positive");
        Self {
            history_length,
            features_per_round,
            shards: 16,
            session_capacity: 0,
            session_ttl: 0,
            inference_threads: 1,
            mode: InferenceMode::Greedy,
            precision: Precision::F64,
        }
    }

    /// Overrides the shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the per-shard session capacity (`0` = unbounded).
    pub fn with_session_capacity(mut self, capacity: usize) -> Self {
        self.session_capacity = capacity;
        self
    }

    /// Overrides the idle session TTL in logical ticks (`0` = never expire).
    pub fn with_session_ttl(mut self, ttl: u64) -> Self {
        self.session_ttl = ttl;
        self
    }

    /// Overrides the forward-pass worker-thread count (`0` = one per core).
    pub fn with_inference_threads(mut self, threads: usize) -> Self {
        self.inference_threads = threads;
        self
    }

    /// Overrides the inference mode.
    pub fn with_mode(mut self, mode: InferenceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the forward-pass precision.
    ///
    /// # Examples
    ///
    /// ```
    /// use vtm_serve::{Precision, ServiceConfig};
    ///
    /// let config = ServiceConfig::new(4, 2).with_precision(Precision::F32);
    /// assert_eq!(config.precision, Precision::F32);
    /// assert_eq!(config.precision.name(), "f32");
    /// ```
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// One round's pricing request for one VMU session: the session id and the
/// newest round's feature block (the service keeps the rolling history).
#[derive(Debug, Clone, PartialEq)]
pub struct QuoteRequest {
    /// Stable session identifier (e.g. the VMU/trip id).
    pub session: u64,
    /// The newest round's observation features for this session.
    pub features: Vec<f64>,
}

impl QuoteRequest {
    /// Creates a request.
    pub fn new(session: u64, features: Vec<f64>) -> Self {
        Self { session, features }
    }
}

/// A priced quote for one session.
#[derive(Debug, Clone, PartialEq)]
pub struct Quote {
    /// The session the quote belongs to.
    pub session: u64,
    /// The quoted action, mapped into the policy's action space (for the
    /// paper's market: one element, the unit migration price).
    pub action: Vec<f64>,
    /// Whether the session's history window was already full (before
    /// warm-up, the observation pads the window with the oldest block).
    pub warmed: bool,
    /// Whether this quote was answered from the session's last-quote cache
    /// instead of a fresh policy evaluation (the gateway's degraded mode).
    /// Freshly priced quotes always carry `false`.
    pub degraded: bool,
}

impl Quote {
    /// The scalar price (first action dimension).
    pub fn price(&self) -> f64 {
        self.action[0]
    }
}

/// Aggregate serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Live sessions across all shards.
    pub sessions: usize,
    /// Total quotes served since construction.
    pub quotes: u64,
    /// Sessions evicted because their shard hit capacity.
    pub evicted: u64,
    /// Sessions purged because they exceeded the idle TTL.
    pub expired: u64,
}

impl ServiceStats {
    /// Registers the counters into `registry` under the `vtm_serve_*`
    /// namespace (live sessions as a gauge — it goes down on eviction).
    pub fn register_metrics(
        &self,
        registry: &mut vtm_obs::MetricsRegistry,
        labels: &[(&str, &str)],
    ) {
        registry.gauge(
            "vtm_serve_sessions",
            "Live sessions across all shards.",
            labels,
            self.sessions as f64,
        );
        registry.counter(
            "vtm_serve_quotes_total",
            "Quotes served since construction.",
            labels,
            self.quotes,
        );
        registry.counter(
            "vtm_serve_sessions_evicted_total",
            "Sessions evicted because their shard hit capacity.",
            labels,
            self.evicted,
        );
        registry.counter(
            "vtm_serve_sessions_expired_total",
            "Sessions purged past the idle TTL.",
            labels,
            self.expired,
        );
    }
}

/// A policy snapshot's frozen *serving side*, validated and fingerprinted
/// once, shareable across many [`PricingService`] instances.
///
/// [`PricingService::from_snapshot`] re-validates the snapshot and re-hashes
/// its canonical byte encoding on every call — fine for one service, wasteful
/// for a sharded fabric that builds one service per gateway shard from the
/// same snapshot. `SharedPolicy` hoists that work: validation and the FNV
/// fingerprint happen once in [`SharedPolicy::from_snapshot`], the actor
/// weights live behind an [`Arc`], and the frozen f32 inference model is
/// converted lazily on first f32 use and then shared. Cloning a
/// `SharedPolicy` or building a service from it copies no weight matrices.
///
/// Services built from the same `SharedPolicy` are indistinguishable from
/// services built directly from the originating snapshot (same fingerprint,
/// bit-identical quotes).
#[derive(Debug, Clone)]
pub struct SharedPolicy {
    actor: Arc<Mlp>,
    /// Lazily-converted frozen f32 actor, shared by every f32 service built
    /// from this policy.
    inference: OnceLock<Arc<InferenceModel>>,
    action_space: ActionSpace,
    log_std: Vec<f64>,
    obs_normalizer: Option<RunningMeanStd>,
    fingerprint: u64,
}

impl SharedPolicy {
    /// Validates and fingerprints a snapshot's serving side once.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Snapshot`] when the snapshot is internally
    /// inconsistent.
    pub fn from_snapshot(snapshot: &PolicySnapshot) -> Result<Self, ServeError> {
        snapshot.validate()?;
        Ok(Self {
            actor: Arc::new(snapshot.actor.clone()),
            inference: OnceLock::new(),
            action_space: snapshot.action_space.clone(),
            log_std: snapshot.log_std.clone(),
            obs_normalizer: snapshot.obs_normalizer.clone(),
            fingerprint: fnv1a(&snapshot.to_bytes()),
        })
    }

    /// FNV-1a fingerprint of the originating snapshot's canonical byte
    /// encoding — identical to what [`PricingService::policy_fingerprint`]
    /// reports for services built from the same snapshot.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The actor network's input width (`history_length *
    /// features_per_round` of any compatible service configuration).
    pub fn obs_dim(&self) -> usize {
        self.actor.input_dim()
    }

    /// The frozen f32 actor, converted on first use and shared thereafter.
    fn inference_model(&self) -> Arc<InferenceModel> {
        Arc::clone(
            self.inference
                .get_or_init(|| Arc::new(InferenceModel::from_mlp(&self.actor))),
        )
    }
}

/// A frozen pricing policy serving batched quote requests over sharded
/// per-session observation state. See the crate docs for the design.
#[derive(Debug)]
pub struct PricingService {
    actor: Arc<Mlp>,
    /// Frozen f32 copy of the actor, converted once at construction time.
    /// `Some` exactly when the configured precision is [`Precision::F32`];
    /// the f64 actor stays resident either way as the reference path (and
    /// as the source for checkpoints/fingerprints).
    inference: Option<Arc<InferenceModel>>,
    action_space: ActionSpace,
    log_std: Vec<f64>,
    obs_normalizer: Option<RunningMeanStd>,
    config: ServiceConfig,
    store: SessionStore,
    /// Total quotes served; atomic so the hot path never serializes on a
    /// global lock (session state already contends per shard).
    quotes_served: AtomicU64,
    /// FNV-1a over the originating policy snapshot's canonical byte
    /// encoding — the policy *version* a journal snapshot records, so
    /// replay can refuse to restore state onto the wrong weights.
    policy_fingerprint: u64,
}

impl PricingService {
    /// Builds a service around a policy snapshot's frozen actor side.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Snapshot`] when the snapshot is internally
    /// inconsistent, or [`ServeError::GeometryMismatch`] when
    /// `history_length * features_per_round` differs from the actor's input
    /// width.
    pub fn from_snapshot(
        snapshot: &PolicySnapshot,
        config: ServiceConfig,
    ) -> Result<Self, ServeError> {
        let shared = SharedPolicy::from_snapshot(snapshot)?;
        Self::from_shared(&shared, config)
    }

    /// Builds a service from an already-validated [`SharedPolicy`] without
    /// copying weights or re-hashing the snapshot — the cheap per-shard
    /// construction path of the gateway fabric. Quotes, fingerprints and
    /// state digests are bit-identical to [`PricingService::from_snapshot`]
    /// on the originating snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::GeometryMismatch`] when `history_length *
    /// features_per_round` differs from the actor's input width.
    pub fn from_shared(policy: &SharedPolicy, config: ServiceConfig) -> Result<Self, ServeError> {
        let configured = config.history_length * config.features_per_round;
        if configured != policy.obs_dim() {
            return Err(ServeError::GeometryMismatch {
                configured_obs_dim: configured,
                policy_obs_dim: policy.obs_dim(),
            });
        }
        let store = SessionStore::new(
            config.history_length,
            StoreConfig::default()
                .with_shards(config.shards)
                .with_capacity_per_shard(config.session_capacity)
                .with_ttl_quotes(config.session_ttl),
        );
        let inference = match config.precision {
            Precision::F64 => None,
            Precision::F32 => Some(policy.inference_model()),
        };
        Ok(Self {
            actor: Arc::clone(&policy.actor),
            inference,
            action_space: policy.action_space.clone(),
            log_std: policy.log_std.clone(),
            obs_normalizer: policy.obs_normalizer.clone(),
            config,
            store,
            quotes_served: AtomicU64::new(0),
            policy_fingerprint: policy.fingerprint,
        })
    }

    /// Loads a checkpoint file written by
    /// [`PolicySnapshot::save_to`] and builds a service around it.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServeError`] for corrupt/truncated checkpoints and
    /// geometry mismatches — never panics on bad files.
    pub fn load(path: impl AsRef<Path>, config: ServiceConfig) -> Result<Self, ServeError> {
        let snapshot = PolicySnapshot::load_from(path)?;
        Self::from_snapshot(&snapshot, config)
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The policy's action space.
    pub fn action_space(&self) -> &ActionSpace {
        &self.action_space
    }

    /// Aggregate counters (sessions alive, quotes served, evictions).
    pub fn stats(&self) -> ServiceStats {
        let store = self.store.stats();
        ServiceStats {
            sessions: store.sessions,
            quotes: self.quotes_served.load(Ordering::Relaxed),
            evicted: store.evicted,
            expired: store.expired,
        }
    }

    /// Read access to the underlying [`SessionStore`] (shard occupancy,
    /// eviction counters — e.g. for gateway telemetry).
    pub fn session_store(&self) -> &SessionStore {
        &self.store
    }

    /// Drops one session's state; returns whether it existed.
    pub fn end_session(&self, session: u64) -> bool {
        self.store.remove(session)
    }

    /// FNV-1a fingerprint of the policy snapshot this service was built
    /// from — the "policy version" recorded in journal state snapshots.
    /// Two services quote identically on every request stream whenever
    /// their fingerprints match (the snapshot encoding is canonical).
    pub fn policy_fingerprint(&self) -> u64 {
        self.policy_fingerprint
    }

    /// Serializes the service's complete mutable state (quote counter plus
    /// the canonical [`SessionStore`] payload — see
    /// [`SessionStore::save_payload`]) into a byte payload. Identical
    /// logical state always yields identical bytes, which is what makes
    /// [`PricingService::state_digest`] a meaningful equality witness.
    ///
    /// The caller must quiesce concurrent quoting if the snapshot has to be
    /// consistent with a specific request-stream position.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.write_u64(self.quotes_served.load(Ordering::Relaxed));
        self.store.save_payload(&mut w);
        w.into_bytes()
    }

    /// Replaces the service's mutable state with one captured by
    /// [`PricingService::save_state`] (typically: restore from a journal
    /// snapshot, then replay the journal suffix).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::State`] for corrupt/truncated payloads or a
    /// shard-count mismatch — never panics; the session store is left
    /// unchanged on error.
    pub fn restore_state(&self, payload: &[u8]) -> Result<(), ServeError> {
        let mut r = PayloadReader::new(payload);
        let quotes = r.read_u64().map_err(ServeError::State)?;
        self.store
            .restore_payload(&mut r)
            .map_err(ServeError::State)?;
        if !r.is_exhausted() {
            return Err(ServeError::State(CodecError::Invalid(format!(
                "{} trailing bytes after service state",
                r.remaining()
            ))));
        }
        self.quotes_served.store(quotes, Ordering::Relaxed);
        Ok(())
    }

    /// FNV-1a digest of [`PricingService::save_state`] — the byte-identical
    /// service-state witness the determinism, crash-recovery and replay
    /// tests compare. Equal digests mean equal session histories, noise
    /// counters, LRU/TTL bookkeeping and serving counters.
    pub fn state_digest(&self) -> u64 {
        fnv1a(&self.save_state())
    }

    fn normalized(&self, obs: Vec<f64>) -> Vec<f64> {
        match &self.obs_normalizer {
            Some(rms) => rms.normalize(&obs),
            None => obs,
        }
    }

    /// Advances the session state for every request and returns each
    /// request's full (normalized) observation row plus warm/noise metadata,
    /// locking every touched shard exactly once.
    fn gather_observations(
        &self,
        requests: &[&QuoteRequest],
    ) -> Result<GatheredObservations, ServeError> {
        let features = self.config.features_per_round;
        for req in requests {
            if req.features.len() != features {
                return Err(ServeError::BadFeatureBlock {
                    session: req.session,
                    expected: features,
                    got: req.features.len(),
                });
            }
        }
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); requests.len()];
        let mut warmed = vec![false; requests.len()];
        let mut draws = vec![0u64; requests.len()];
        let ids: Vec<u64> = requests.iter().map(|r| r.session).collect();
        // The store locks each touched shard exactly once; requests for the
        // same session are applied in request order.
        self.store.touch_grouped(&ids, |idx, session| {
            let req = requests[idx];
            session.push(req.features.clone(), self.config.history_length);
            session.quotes += 1;
            warmed[idx] = session.warmed(self.config.history_length);
            draws[idx] = session.quotes;
            rows[idx] = self.normalized(session.observation(self.config.history_length, features));
        });
        Ok((rows, warmed, draws))
    }

    fn quote_from_mean(&self, session: u64, mean: &[f64], draw: u64, warmed: bool) -> Quote {
        let action = match self.config.mode {
            InferenceMode::Greedy => self.action_space.squash(mean),
            InferenceMode::Sample => {
                // Counter-based stream: the n-th quote of a session draws the
                // same noise no matter how requests were batched.
                let mut rng = StdRng::seed_from_u64(session ^ draw.wrapping_mul(GOLDEN));
                let dist = DiagGaussian::new(mean.to_vec(), self.log_std.clone());
                self.action_space.squash(&dist.sample(&mut rng))
            }
        };
        Quote {
            session,
            action,
            warmed,
            degraded: false,
        }
    }

    /// Answers a quote from the session's cached last action *without*
    /// pricing: no forward pass, no history push, no tick, no counter —
    /// the session state is untouched, so serving degraded quotes never
    /// perturbs the determinism contract. Returns `None` for sessions
    /// that were never quoted (or whose state was evicted); the quote is
    /// marked [`Quote::degraded`]. The cache deliberately ignores the
    /// idle TTL — degraded mode would rather serve a stale price than
    /// none.
    pub fn cached_quote(&self, session: u64) -> Option<Quote> {
        let (action, warmed) = self.store.peek_last_action(session)?;
        Some(Quote {
            session,
            action,
            warmed,
            degraded: true,
        })
    }

    /// Evaluates one contiguous chunk of observation rows through the
    /// configured precision's forward path. Row-independent, so chunking
    /// (and therefore the inference-thread count) never changes results.
    fn forward_chunk(&self, chunk: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ShapeError> {
        let refs: Vec<&[f64]> = chunk.iter().map(Vec::as_slice).collect();
        match &self.inference {
            Some(model) => model.forward_rows(&refs),
            None => {
                let means = self.actor.forward_rows(&refs)?;
                Ok((0..chunk.len()).map(|i| means.row(i).to_vec()).collect())
            }
        }
    }

    /// Batched (and optionally multi-threaded) actor evaluation: one matrix
    /// forward pass per chunk instead of one row-vector pass per request.
    fn forward_means(&self, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ServeError> {
        let threads = match self.config.inference_threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
        .min(rows.len())
        .max(1);
        if threads == 1 {
            return self.forward_chunk(rows).map_err(ServeError::Forward);
        }
        let chunk_size = rows.len().div_ceil(threads);
        let chunks: Vec<Result<Vec<Vec<f64>>, ShapeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || self.forward_chunk(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("inference worker panicked"))
                .collect()
        });
        let mut means = Vec::with_capacity(rows.len());
        for chunk in chunks {
            means.extend(chunk.map_err(ServeError::Forward)?);
        }
        Ok(means)
    }

    /// Prices a whole round of requests with **one** batched actor forward
    /// pass per inference-thread chunk. Results are identical to calling
    /// [`PricingService::quote_one`] per request in order
    /// ([`Mlp::forward_rows`] is bit-stable against the row-vector path, and
    /// chunking is row-independent); the batch is simply much faster, which
    /// is the point of the serving layer.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServeError`] for malformed feature blocks; an empty
    /// batch yields an empty quote list.
    pub fn quote_batch(&self, requests: &[QuoteRequest]) -> Result<Vec<Quote>, ServeError> {
        let refs: Vec<&QuoteRequest> = requests.iter().collect();
        self.quote_refs(&refs)
    }

    /// The batch-slice entry point: identical to
    /// [`PricingService::quote_batch`] but over *borrowed* requests, so a
    /// caller that owns requests scattered across other structures (the
    /// gateway's pending-completion records, for instance) can assemble a
    /// batch without cloning a single feature block.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServeError`] for malformed feature blocks; an empty
    /// batch yields an empty quote list.
    pub fn quote_refs(&self, requests: &[&QuoteRequest]) -> Result<Vec<Quote>, ServeError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let (rows, warmed, draws) = self.gather_observations(requests)?;
        let means = self.forward_means(&rows)?;
        self.quotes_served
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let quotes: Vec<Quote> = requests
            .iter()
            .enumerate()
            .map(|(i, req)| self.quote_from_mean(req.session, &means[i], draws[i], warmed[i]))
            .collect();
        // Refresh the degraded-mode caches; within-batch duplicates apply
        // in request order, so the last request's action wins — exactly
        // what sequential single-request calls would leave behind.
        let updates: Vec<(u64, &[f64])> = quotes
            .iter()
            .map(|q| (q.session, q.action.as_slice()))
            .collect();
        self.store.record_last_actions(&updates);
        Ok(quotes)
    }

    /// Prices a single request with a per-request row-vector forward pass —
    /// the unbatched baseline the `serve-bench` experiment compares
    /// [`PricingService::quote_batch`] against.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServeError`] for malformed feature blocks.
    pub fn quote_one(&self, request: &QuoteRequest) -> Result<Quote, ServeError> {
        let (rows, warmed, draws) = self.gather_observations(&[request])?;
        // Route by precision so single-request quotes stay bit-identical to
        // batched ones in *both* modes (each path is batch-invariant).
        let mean = match &self.inference {
            Some(model) => model.forward_vec(&rows[0]),
            None => self.actor.forward_vec(&rows[0]),
        }
        .map_err(ServeError::Forward)?;
        self.quotes_served.fetch_add(1, Ordering::Relaxed);
        let quote = self.quote_from_mean(request.session, &mean, draws[0], warmed[0]);
        self.store
            .record_last_actions(&[(quote.session, quote.action.as_slice())]);
        Ok(quote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtm_rl::ppo::{PpoAgent, PpoConfig};

    fn snapshot(obs_dim: usize, seed: u64) -> PolicySnapshot {
        PpoAgent::new(
            PpoConfig::new(obs_dim, 1).with_seed(seed),
            ActionSpace::scalar(5.0, 50.0),
        )
        .snapshot()
    }

    fn requests(round: usize, sessions: usize, features: usize) -> Vec<QuoteRequest> {
        (0..sessions)
            .map(|s| {
                QuoteRequest::new(
                    s as u64,
                    (0..features)
                        .map(|f| ((round * 31 + s * 7 + f) % 13) as f64 / 13.0)
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let snap = snapshot(8, 1);
        assert!(matches!(
            PricingService::from_snapshot(&snap, ServiceConfig::new(4, 3)),
            Err(ServeError::GeometryMismatch { .. })
        ));
        assert!(PricingService::from_snapshot(&snap, ServiceConfig::new(4, 2)).is_ok());
    }

    #[test]
    fn batched_quotes_match_per_request_quotes_exactly() {
        let snap = snapshot(8, 2);
        let batched = PricingService::from_snapshot(&snap, ServiceConfig::new(4, 2)).unwrap();
        let sequential = PricingService::from_snapshot(&snap, ServiceConfig::new(4, 2)).unwrap();
        for round in 0..6 {
            let reqs = requests(round, 9, 2);
            let via_batch = batched.quote_batch(&reqs).unwrap();
            let via_single: Vec<Quote> = reqs
                .iter()
                .map(|r| sequential.quote_one(r).unwrap())
                .collect();
            assert_eq!(via_batch, via_single, "round {round} diverged");
        }
        assert_eq!(batched.stats().quotes, 54);
        assert_eq!(batched.stats().sessions, 9);
    }

    #[test]
    fn sampled_mode_is_reproducible_and_batch_invariant() {
        let snap = snapshot(6, 3);
        let config = ServiceConfig::new(3, 2).with_mode(InferenceMode::Sample);
        let a = PricingService::from_snapshot(&snap, config).unwrap();
        let b = PricingService::from_snapshot(&snap, config).unwrap();
        for round in 0..4 {
            let reqs = requests(round, 5, 2);
            let qa = a.quote_batch(&reqs).unwrap();
            let qb: Vec<Quote> = reqs.iter().map(|r| b.quote_one(r).unwrap()).collect();
            assert_eq!(qa, qb);
            for q in &qa {
                assert!(q.price() >= 5.0 && q.price() <= 50.0);
            }
        }
        // Different rounds draw different noise for the same session.
        let c = PricingService::from_snapshot(&snap, config).unwrap();
        let q1 = c.quote_batch(&requests(0, 1, 2)).unwrap();
        let q2 = c.quote_batch(&requests(0, 1, 2)).unwrap();
        assert_ne!(q1[0].action, q2[0].action);
    }

    #[test]
    fn threaded_batches_match_inline_batches_exactly() {
        let snap = snapshot(8, 9);
        let inline = PricingService::from_snapshot(&snap, ServiceConfig::new(4, 2)).unwrap();
        let threaded = PricingService::from_snapshot(
            &snap,
            ServiceConfig::new(4, 2).with_inference_threads(4),
        )
        .unwrap();
        for round in 0..4 {
            let reqs = requests(round, 23, 2);
            assert_eq!(
                inline.quote_batch(&reqs).unwrap(),
                threaded.quote_batch(&reqs).unwrap(),
                "round {round} diverged across inference thread counts"
            );
        }
    }

    #[test]
    fn warm_up_flag_flips_once_the_window_fills() {
        let snap = snapshot(6, 4);
        let service = PricingService::from_snapshot(&snap, ServiceConfig::new(3, 2)).unwrap();
        for round in 0..5 {
            let quote = &service.quote_batch(&requests(round, 1, 2)).unwrap()[0];
            assert_eq!(quote.warmed, round >= 2, "round {round}");
        }
    }

    #[test]
    fn bad_feature_blocks_and_session_lifecycle() {
        let snap = snapshot(6, 5);
        let service = PricingService::from_snapshot(&snap, ServiceConfig::new(3, 2)).unwrap();
        let err = service
            .quote_batch(&[QuoteRequest::new(1, vec![0.0; 5])])
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::BadFeatureBlock {
                session: 1,
                expected: 2,
                got: 5
            }
        ));
        assert!(!err.to_string().is_empty());
        assert!(service.quote_batch(&[]).unwrap().is_empty());
        service.quote_batch(&requests(0, 3, 2)).unwrap();
        assert!(service.end_session(0));
        assert!(!service.end_session(0));
        assert_eq!(service.stats().sessions, 2);
    }

    #[test]
    fn greedy_quotes_match_the_agent_deterministic_action() {
        // The service over a full observation window must quote exactly the
        // policy's deterministic action for that observation.
        let agent = PpoAgent::new(
            PpoConfig::new(6, 1).with_seed(6),
            ActionSpace::scalar(5.0, 50.0),
        );
        let service =
            PricingService::from_snapshot(&agent.snapshot(), ServiceConfig::new(3, 2)).unwrap();
        let blocks = [[0.2, 0.4], [0.6, 0.1], [0.9, 0.3]];
        let mut quote = None;
        for block in blocks {
            quote = Some(
                service
                    .quote_one(&QuoteRequest::new(42, block.to_vec()))
                    .unwrap(),
            );
        }
        let obs: Vec<f64> = blocks.iter().flatten().copied().collect();
        assert_eq!(quote.unwrap().action, agent.act_deterministic(&obs));
    }

    #[test]
    fn shards_spread_sessions() {
        let snap = snapshot(6, 7);
        let service =
            PricingService::from_snapshot(&snap, ServiceConfig::new(3, 2).with_shards(4)).unwrap();
        service.quote_batch(&requests(0, 64, 2)).unwrap();
        let store = service.session_store();
        let occupied = (0..store.shard_count())
            .filter(|&s| store.shard_len(s) > 0)
            .count();
        assert!(occupied >= 3, "only {occupied} of 4 shards used");
        assert_eq!(service.stats().sessions, 64);
    }

    #[test]
    fn service_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The gateway hands one service to many executor threads via `Arc`;
        // this fails to compile if a non-Sync field ever sneaks in.
        assert_send_sync::<PricingService>();
    }

    #[test]
    fn capacity_bound_holds_under_many_distinct_sessions() {
        let snap = snapshot(6, 8);
        let config = ServiceConfig::new(3, 2)
            .with_shards(4)
            .with_session_capacity(8);
        let service = PricingService::from_snapshot(&snap, config).unwrap();
        for round in 0..4u64 {
            let reqs: Vec<QuoteRequest> = (0..100u64)
                .map(|s| QuoteRequest::new(round * 1000 + s, vec![0.1, 0.2]))
                .collect();
            service.quote_batch(&reqs).unwrap();
            assert!(service.stats().sessions <= 4 * 8);
        }
        assert!(service.stats().evicted > 0);
        assert_eq!(service.stats().quotes, 400);
    }

    #[test]
    fn state_save_restore_round_trips_and_digests_agree() {
        let snap = snapshot(8, 11);
        let config = ServiceConfig::new(4, 2)
            .with_shards(4)
            .with_session_capacity(4)
            .with_session_ttl(16);
        let source = PricingService::from_snapshot(&snap, config).unwrap();
        for round in 0..5 {
            source.quote_batch(&requests(round, 11, 2)).unwrap();
        }
        let state = source.save_state();
        let target = PricingService::from_snapshot(&snap, config).unwrap();
        assert_ne!(target.state_digest(), source.state_digest());
        target.restore_state(&state).unwrap();
        assert_eq!(target.state_digest(), source.state_digest());
        assert_eq!(target.stats(), source.stats());
        // Future quotes agree bit-for-bit: the restored state carries the
        // histories, noise counters and LRU/TTL bookkeeping.
        for round in 5..8 {
            let reqs = requests(round, 11, 2);
            assert_eq!(
                source.quote_batch(&reqs).unwrap(),
                target.quote_batch(&reqs).unwrap(),
                "round {round} diverged after restore"
            );
        }
        assert_eq!(target.state_digest(), source.state_digest());
    }

    #[test]
    fn state_restore_rejects_corruption_with_typed_errors() {
        let snap = snapshot(6, 12);
        let service = PricingService::from_snapshot(&snap, ServiceConfig::new(3, 2)).unwrap();
        service.quote_batch(&requests(0, 4, 2)).unwrap();
        let state = service.save_state();
        let digest = service.state_digest();
        // Truncated payload.
        assert!(matches!(
            service.restore_state(&state[..state.len() - 3]),
            Err(ServeError::State(CodecError::Truncated { .. }))
        ));
        // Trailing garbage.
        let mut padded = state.clone();
        padded.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            service.restore_state(&padded),
            Err(ServeError::State(CodecError::Invalid(_)))
        ));
        // Failed restores leave the live state untouched.
        assert_eq!(service.state_digest(), digest);
    }

    #[test]
    fn policy_fingerprint_identifies_the_snapshot() {
        let snap_a = snapshot(8, 13);
        let a1 = PricingService::from_snapshot(&snap_a, ServiceConfig::new(4, 2)).unwrap();
        let a2 = PricingService::from_snapshot(&snap_a, ServiceConfig::new(4, 2)).unwrap();
        assert_eq!(a1.policy_fingerprint(), a2.policy_fingerprint());
        let snap_b = snapshot(8, 14);
        let b = PricingService::from_snapshot(&snap_b, ServiceConfig::new(4, 2)).unwrap();
        assert_ne!(a1.policy_fingerprint(), b.policy_fingerprint());
    }

    #[test]
    fn cached_quotes_mirror_the_last_priced_action_without_state_changes() {
        let snap = snapshot(6, 15);
        let service = PricingService::from_snapshot(&snap, ServiceConfig::new(3, 2)).unwrap();
        assert!(service.cached_quote(3).is_none(), "never-quoted session");
        let fresh = service.quote_batch(&requests(0, 4, 2)).unwrap();
        assert!(fresh.iter().all(|q| !q.degraded));
        let digest = service.state_digest();
        let cached = service.cached_quote(3).unwrap();
        assert!(cached.degraded);
        assert_eq!(cached.action, fresh[3].action);
        assert_eq!(cached.warmed, fresh[3].warmed);
        // Serving from the cache is a pure read: counters, histories and
        // LRU/TTL bookkeeping are untouched.
        assert_eq!(service.state_digest(), digest);
        assert_eq!(service.stats().quotes, 4);
        // The cache tracks the most recent round.
        let newer = service.quote_batch(&requests(1, 4, 2)).unwrap();
        assert_eq!(service.cached_quote(3).unwrap().action, newer[3].action);
    }

    /// Index of the largest element — the "which action wins" witness the
    /// greedy decision-agreement contract compares across precisions.
    fn argmax(values: &[f64]) -> usize {
        values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    #[test]
    fn f32_greedy_quotes_agree_with_the_f64_reference() {
        let snap = snapshot(8, 21);
        let reference = PricingService::from_snapshot(&snap, ServiceConfig::new(4, 2)).unwrap();
        let quantized = PricingService::from_snapshot(
            &snap,
            ServiceConfig::new(4, 2).with_precision(Precision::F32),
        )
        .unwrap();
        for round in 0..6 {
            let reqs = requests(round, 9, 2);
            let wide = reference.quote_batch(&reqs).unwrap();
            let narrow = quantized.quote_batch(&reqs).unwrap();
            for (w, n) in wide.iter().zip(&narrow) {
                assert_eq!(argmax(&w.action), argmax(&n.action));
                assert_eq!((w.session, w.warmed), (n.session, n.warmed));
                assert!(
                    (w.price() - n.price()).abs() < 1e-2,
                    "round {round}: f32 price {} too far from f64 {}",
                    n.price(),
                    w.price()
                );
            }
        }
        // Session bookkeeping (histories, ticks, counters) is precision-
        // independent: only the cached last actions may differ.
        assert_eq!(reference.stats(), quantized.stats());
    }

    #[test]
    fn f32_batched_quotes_match_f32_per_request_quotes_exactly() {
        let snap = snapshot(8, 22);
        let config = ServiceConfig::new(4, 2).with_precision(Precision::F32);
        let batched = PricingService::from_snapshot(&snap, config).unwrap();
        let sequential = PricingService::from_snapshot(&snap, config).unwrap();
        for round in 0..5 {
            let reqs = requests(round, 9, 2);
            let via_batch = batched.quote_batch(&reqs).unwrap();
            let via_single: Vec<Quote> = reqs
                .iter()
                .map(|r| sequential.quote_one(r).unwrap())
                .collect();
            assert_eq!(via_batch, via_single, "f32 round {round} diverged");
        }
        assert_eq!(batched.state_digest(), sequential.state_digest());
    }

    #[test]
    fn f32_threaded_batches_match_f32_inline_batches_exactly() {
        let snap = snapshot(8, 23);
        let base = ServiceConfig::new(4, 2).with_precision(Precision::F32);
        let inline = PricingService::from_snapshot(&snap, base).unwrap();
        let threaded =
            PricingService::from_snapshot(&snap, base.with_inference_threads(4)).unwrap();
        for round in 0..4 {
            let reqs = requests(round, 23, 2);
            assert_eq!(
                inline.quote_batch(&reqs).unwrap(),
                threaded.quote_batch(&reqs).unwrap(),
                "f32 round {round} diverged across inference thread counts"
            );
        }
    }

    #[test]
    fn quote_refs_matches_quote_batch() {
        let snap = snapshot(8, 10);
        let a = PricingService::from_snapshot(&snap, ServiceConfig::new(4, 2)).unwrap();
        let b = PricingService::from_snapshot(&snap, ServiceConfig::new(4, 2)).unwrap();
        for round in 0..3 {
            let reqs = requests(round, 7, 2);
            let refs: Vec<&QuoteRequest> = reqs.iter().collect();
            assert_eq!(a.quote_batch(&reqs).unwrap(), b.quote_refs(&refs).unwrap());
        }
    }

    /// `from_shared` is the fabric's cheap per-shard construction path: it
    /// must be observationally identical to `from_snapshot` — same policy
    /// fingerprint, bit-identical quotes and state digests in both
    /// precisions — while sharing (not copying) the frozen weights.
    #[test]
    fn from_shared_services_match_from_snapshot_services_exactly() {
        let snap = snapshot(8, 31);
        let shared = SharedPolicy::from_snapshot(&snap).unwrap();
        for precision in [Precision::F64, Precision::F32] {
            let config = ServiceConfig::new(4, 2).with_precision(precision);
            let direct = PricingService::from_snapshot(&snap, config).unwrap();
            let cheap = PricingService::from_shared(&shared, config).unwrap();
            let sibling = PricingService::from_shared(&shared, config).unwrap();
            assert_eq!(shared.fingerprint(), direct.policy_fingerprint());
            assert_eq!(cheap.policy_fingerprint(), direct.policy_fingerprint());
            for round in 0..4 {
                let reqs = requests(round, 9, 2);
                let expected = direct.quote_batch(&reqs).unwrap();
                assert_eq!(cheap.quote_batch(&reqs).unwrap(), expected);
                assert_eq!(sibling.quote_batch(&reqs).unwrap(), expected);
            }
            assert_eq!(cheap.state_digest(), direct.state_digest());
            // Sibling services share weights but never session state.
            assert_eq!(cheap.stats().sessions, sibling.stats().sessions);
        }
        // Geometry mismatches stay typed errors on the shared path.
        assert!(matches!(
            PricingService::from_shared(&shared, ServiceConfig::new(4, 3)),
            Err(ServeError::GeometryMismatch { .. })
        ));
    }
}
