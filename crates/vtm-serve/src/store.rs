//! Sharded, capacity-bounded session store with LRU/TTL eviction.
//!
//! The serving layer keeps one rolling observation window per VMU session.
//! At fleet scale ("millions of users") an unbounded map is a memory leak
//! with extra steps: trips end, vehicles park, ids are never seen again.
//! [`SessionStore`] bounds that state in two independent ways:
//!
//! * **capacity** — each shard holds at most `capacity_per_shard` sessions;
//!   inserting into a full shard evicts the least-recently-touched session
//!   of *that shard only* (eviction never crosses a shard boundary);
//! * **TTL** — sessions untouched for more than `ttl_quotes` logical ticks
//!   are expired: authoritatively checked when the session is next touched,
//!   and lazily swept whenever the shard is locked (memory reclamation).
//!
//! Time is *logical*, not wall-clock, and **per shard**: each shard
//! advances one tick per request it serves, so a session's idle age is
//! "requests its shard has served since it was last touched". Because a
//! shard always sees its requests in submission order no matter how the
//! caller slices the stream into batches, every capacity/TTL decision that
//! affects quote output is a pure function of the request sequence — which
//! is what lets the gateway's determinism contract (single-executor
//! gateway ≡ direct batch calls) extend to stores with eviction enabled.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vtm_nn::codec::{CodecError, PayloadReader, PayloadWriter};

use crate::session::Session;

/// Seed-decorrelation constant shared with the training stack (also used
/// by the service's counter-based sampling noise).
pub(crate) const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Sizing and eviction policy of a [`SessionStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of independent mutex shards (lock granularity; clamped ≥ 1).
    pub shards: usize,
    /// Maximum live sessions per shard; `0` = unbounded. Inserting into a
    /// full shard evicts that shard's least-recently-touched session.
    pub capacity_per_shard: usize,
    /// Idle lifetime in logical ticks (one tick per request served *by the
    /// session's shard*); `0` = never expire.
    pub ttl_quotes: u64,
}

impl Default for StoreConfig {
    /// 16 shards, unbounded capacity, no TTL — the pre-gateway behaviour.
    fn default() -> Self {
        Self {
            shards: 16,
            capacity_per_shard: 0,
            ttl_quotes: 0,
        }
    }
}

impl StoreConfig {
    /// Overrides the shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the per-shard session capacity (`0` = unbounded).
    pub fn with_capacity_per_shard(mut self, capacity: usize) -> Self {
        self.capacity_per_shard = capacity;
        self
    }

    /// Overrides the idle TTL in logical ticks (`0` = never expire).
    pub fn with_ttl_quotes(mut self, ttl: u64) -> Self {
        self.ttl_quotes = ttl;
        self
    }
}

/// Aggregate counters of a [`SessionStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Live sessions across all shards.
    pub sessions: usize,
    /// Sessions evicted because their shard hit capacity.
    pub evicted: u64,
    /// Sessions purged because they exceeded the idle TTL.
    pub expired: u64,
}

/// One shard entry: the session plus its last-touched shard tick.
#[derive(Debug)]
struct Entry {
    session: Session,
    last_touched: u64,
}

/// One shard: its sessions plus its own logical clock (one tick per
/// request this shard has served — slicing-invariant, see module docs).
#[derive(Debug, Default)]
struct Shard {
    sessions: HashMap<u64, Entry>,
    tick: u64,
}

/// A sharded map from session id to rolling observation state, bounded by
/// per-shard capacity (LRU eviction) and an idle TTL. See the module docs.
#[derive(Debug)]
pub struct SessionStore {
    config: StoreConfig,
    history_length: usize,
    shards: Vec<Mutex<Shard>>,
    evicted: AtomicU64,
    expired: AtomicU64,
}

impl SessionStore {
    /// Creates an empty store for sessions with the given history window.
    ///
    /// # Panics
    ///
    /// Panics if `history_length` is zero.
    pub fn new(history_length: usize, config: StoreConfig) -> Self {
        assert!(history_length > 0, "history length must be positive");
        let shards = (0..config.shards.max(1))
            .map(|_| Mutex::new(Shard::default()))
            .collect();
        Self {
            config,
            history_length,
            shards,
            evicted: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a session id lands in: the workspace-wide
    /// [`vtm_core::routing::session_shard`] hash, so lock sharding here and
    /// gateway-shard routing in the fabric agree on one pure function.
    pub fn shard_of(&self, session: u64) -> usize {
        vtm_core::routing::session_shard(session, self.shards.len())
    }

    /// Live sessions in one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard]
            .lock()
            .expect("shard poisoned")
            .sessions
            .len()
    }

    /// The session ids currently alive in one shard, in ascending order
    /// (test/diagnostic helper; takes the shard lock).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_sessions(&self, shard: usize) -> Vec<u64> {
        let mut ids: Vec<u64> = self.shards[shard]
            .lock()
            .expect("shard poisoned")
            .sessions
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Whether a session is currently alive (does not touch it).
    pub fn contains(&self, session: u64) -> bool {
        self.shards[self.shard_of(session)]
            .lock()
            .expect("shard poisoned")
            .sessions
            .contains_key(&session)
    }

    /// Total live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").sessions.len())
            .sum()
    }

    /// Whether no session is alive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            sessions: self.len(),
            evicted: self.evicted.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }

    /// Drops one session; returns whether it existed.
    pub fn remove(&self, session: u64) -> bool {
        self.shards[self.shard_of(session)]
            .lock()
            .expect("shard poisoned")
            .sessions
            .remove(&session)
            .is_some()
    }

    /// Sweeps every entry of a locked shard whose idle age exceeds the TTL
    /// (memory reclamation; quote-visible expiry is decided at touch time).
    fn purge_expired(&self, shard: &mut Shard) {
        let ttl = self.config.ttl_quotes;
        if ttl == 0 || shard.sessions.is_empty() {
            return;
        }
        let now = shard.tick;
        let before = shard.sessions.len();
        shard
            .sessions
            .retain(|_, entry| now.saturating_sub(entry.last_touched) <= ttl);
        let purged = before - shard.sessions.len();
        if purged > 0 {
            self.expired.fetch_add(purged as u64, Ordering::Relaxed);
        }
    }

    /// Evicts the least-recently-touched entry of a locked shard.
    fn evict_lru(&self, sessions: &mut HashMap<u64, Entry>) {
        if let Some(&victim) = sessions
            .iter()
            .min_by_key(|(id, entry)| (entry.last_touched, **id))
            .map(|(id, _)| id)
        {
            sessions.remove(&victim);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Serializes the complete store state into a payload in a *canonical*
    /// form: shards in index order, each shard's logical clock followed by
    /// its entries sorted by session id, then the eviction counters. Two
    /// stores holding the same logical state always serialize to identical
    /// bytes, so the payload doubles as the store's determinism digest
    /// input (replay tests hash it with FNV-1a).
    ///
    /// Locks each shard in turn; the caller is responsible for quiescing
    /// concurrent traffic if a frame-consistent snapshot is required.
    pub fn save_payload(&self, w: &mut PayloadWriter) {
        w.write_usize(self.shards.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            w.write_u64(shard.tick);
            let mut ids: Vec<u64> = shard.sessions.keys().copied().collect();
            ids.sort_unstable();
            w.write_usize(ids.len());
            for id in ids {
                let entry = &shard.sessions[&id];
                w.write_u64(id);
                w.write_u64(entry.last_touched);
                entry.session.save_payload(w);
            }
        }
        w.write_u64(self.evicted.load(Ordering::Relaxed));
        w.write_u64(self.expired.load(Ordering::Relaxed));
    }

    /// Replaces the store's entire state with one written by
    /// [`SessionStore::save_payload`]. The shard count must match this
    /// store's configuration (shard assignment is a pure function of the
    /// shard count, so restoring across a different sharding would
    /// scatter sessions to the wrong locks).
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`] for truncated or structurally invalid
    /// payloads and for a shard-count mismatch — never panics. On error the
    /// store is left unchanged.
    pub fn restore_payload(&self, r: &mut PayloadReader<'_>) -> Result<(), CodecError> {
        let shards = r.read_usize()?;
        if shards != self.shards.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot has {shards} shards, store has {}",
                self.shards.len()
            )));
        }
        // Decode fully before touching the live shards so a corrupt tail
        // cannot leave the store half-restored. One decoded shard is its
        // logical tick plus `(id, last_touched, session)` rows.
        type DecodedShard = (u64, Vec<(u64, u64, Session)>);
        let mut decoded: Vec<DecodedShard> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let tick = r.read_u64()?;
            let entries = r.read_usize()?;
            let mut sessions = Vec::with_capacity(entries.min(1024));
            for _ in 0..entries {
                let id = r.read_u64()?;
                let last_touched = r.read_u64()?;
                let session = Session::load_payload(r, self.history_length)?;
                sessions.push((id, last_touched, session));
            }
            decoded.push((tick, sessions));
        }
        let evicted = r.read_u64()?;
        let expired = r.read_u64()?;
        for (shard, (tick, sessions)) in self.shards.iter().zip(decoded) {
            let mut shard = shard.lock().expect("shard poisoned");
            shard.tick = tick;
            shard.sessions = sessions
                .into_iter()
                .map(|(id, last_touched, session)| {
                    (
                        id,
                        Entry {
                            session,
                            last_touched,
                        },
                    )
                })
                .collect();
        }
        self.evicted.store(evicted, Ordering::Relaxed);
        self.expired.store(expired, Ordering::Relaxed);
        Ok(())
    }

    /// Records the raw actions behind freshly served quotes into their
    /// sessions' degraded-mode caches, grouping by shard so each touched
    /// shard is locked exactly once.
    ///
    /// This is a *pure write-back*: it advances no logical clock and
    /// refreshes no LRU stamp, so it cannot change any future TTL or
    /// eviction decision — the store's slicing-invariance (and with it the
    /// gateway determinism contract) is untouched. Ids whose session has
    /// already been evicted are skipped, never resurrected.
    pub fn record_last_actions(&self, updates: &[(u64, &[f64])]) {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (idx, &(id, _)) in updates.iter().enumerate() {
            by_shard[self.shard_of(id)].push(idx);
        }
        for (shard, indices) in self.shards.iter().zip(by_shard.iter()) {
            if indices.is_empty() {
                continue;
            }
            let mut shard = shard.lock().expect("shard poisoned");
            for &idx in indices {
                let (id, action) = updates[idx];
                if let Some(entry) = shard.sessions.get_mut(&id) {
                    entry.session.set_last_action(action.to_vec());
                }
            }
        }
    }

    /// Reads a session's cached last action without touching it: no tick,
    /// no LRU refresh, and deliberately no TTL check — degraded mode would
    /// rather serve a stale quote than none. Returns the action together
    /// with whether the session's observation window was warm.
    pub fn peek_last_action(&self, session: u64) -> Option<(Vec<f64>, bool)> {
        let shard = self.shards[self.shard_of(session)]
            .lock()
            .expect("shard poisoned");
        let entry = shard.sessions.get(&session)?;
        let action = entry.session.last_action()?.to_vec();
        Some((action, entry.session.warmed(self.history_length)))
    }

    /// Visits (creating on demand) the session of every id in `ids`,
    /// calling `f(index_into_ids, &mut Session)` exactly once per id.
    ///
    /// Ids are grouped by shard so each touched shard is locked exactly
    /// once; within a shard, ids are visited in their `ids` order (so
    /// repeated requests for the same session apply in request order).
    /// Every visit advances the shard's logical clock by one tick. A
    /// touched session whose idle age exceeds the TTL restarts cold even
    /// if the lazy sweep has not reclaimed it yet — the expiry decision
    /// uses only per-shard request ticks, so quote-visible behaviour is
    /// invariant to how the request stream is sliced into batches.
    /// Inserting into a full shard evicts that shard's LRU entry first.
    pub fn touch_grouped(&self, ids: &[u64], mut f: impl FnMut(usize, &mut Session)) {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (idx, &id) in ids.iter().enumerate() {
            by_shard[self.shard_of(id)].push(idx);
        }
        let capacity = self.config.capacity_per_shard;
        let ttl = self.config.ttl_quotes;
        for (shard, indices) in self.shards.iter().zip(by_shard.iter()) {
            if indices.is_empty() {
                continue;
            }
            let mut shard = shard.lock().expect("shard poisoned");
            self.purge_expired(&mut shard);
            for &idx in indices {
                let id = ids[idx];
                let now = shard.tick;
                shard.tick += 1;
                if ttl > 0 {
                    let stale = shard
                        .sessions
                        .get(&id)
                        .is_some_and(|e| now.saturating_sub(e.last_touched) > ttl);
                    if stale {
                        shard.sessions.remove(&id);
                        self.expired.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if !shard.sessions.contains_key(&id)
                    && capacity > 0
                    && shard.sessions.len() >= capacity
                {
                    self.evict_lru(&mut shard.sessions);
                }
                let entry = shard.sessions.entry(id).or_insert_with(|| Entry {
                    session: Session::new(self.history_length),
                    last_touched: now,
                });
                entry.last_touched = now;
                f(idx, &mut entry.session);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(shards: usize, capacity: usize, ttl: u64) -> SessionStore {
        SessionStore::new(
            2,
            StoreConfig::default()
                .with_shards(shards)
                .with_capacity_per_shard(capacity)
                .with_ttl_quotes(ttl),
        )
    }

    #[test]
    fn capacity_evicts_the_lru_session() {
        let store = store(1, 2, 0);
        store.touch_grouped(&[1, 2], |_, _| {});
        store.touch_grouped(&[1], |_, _| {}); // 2 becomes the LRU
        store.touch_grouped(&[3], |_, _| {});
        assert!(store.contains(1) && store.contains(3));
        assert!(!store.contains(2));
        assert_eq!(store.stats().evicted, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn ttl_purges_idle_sessions_lazily() {
        let store = store(1, 0, 3);
        store.touch_grouped(&[7], |_, _| {});
        // Ticks 1..=4 touch another id; id 7 ages past the 3-tick TTL.
        for _ in 0..4 {
            store.touch_grouped(&[8], |_, _| {});
        }
        store.touch_grouped(&[9], |_, _| {});
        assert!(!store.contains(7), "idle session must expire");
        assert!(store.contains(8));
        assert!(store.stats().expired >= 1);
    }

    #[test]
    fn ttl_and_eviction_behaviour_are_invariant_to_batch_slicing() {
        // The same request sequence, submitted one-by-one vs as one big
        // batch, must leave every session in the same quote-visible state
        // (the determinism contract the gateway leans on, with TTL and
        // capacity eviction enabled).
        let singles = store(4, 2, 2);
        let batched = store(4, 2, 2);
        let sequence: Vec<u64> = vec![0, 9, 17, 3, 9, 0, 25, 3, 17, 9, 0, 33, 9, 41, 0];
        for &id in &sequence {
            singles.touch_grouped(&[id], |_, s| s.quotes += 1);
        }
        batched.touch_grouped(&sequence, |_, s| s.quotes += 1);
        // Probe every id once and compare the observable session state.
        let mut probe: Vec<u64> = sequence.clone();
        probe.sort_unstable();
        probe.dedup();
        let mut seen_singles = Vec::new();
        singles.touch_grouped(&probe, |idx, s| {
            s.quotes += 1;
            seen_singles.push((probe[idx], s.quotes));
        });
        let mut seen_batched = Vec::new();
        batched.touch_grouped(&probe, |idx, s| {
            s.quotes += 1;
            seen_batched.push((probe[idx], s.quotes));
        });
        seen_singles.sort_unstable();
        seen_batched.sort_unstable();
        assert_eq!(seen_singles, seen_batched);
    }

    #[test]
    fn grouped_visits_preserve_input_order_per_session() {
        let store = store(4, 0, 0);
        let mut seen = Vec::new();
        store.touch_grouped(&[5, 5, 5], |idx, session| {
            session.quotes += 1;
            seen.push((idx, session.quotes));
        });
        assert_eq!(seen, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn last_action_write_back_is_invisible_to_eviction_and_ttl() {
        let store = store(1, 2, 0);
        store.touch_grouped(&[1, 2], |_, _| {});
        store.touch_grouped(&[1], |_, _| {}); // 2 becomes the LRU
        assert_eq!(store.peek_last_action(1), None);
        // Writing 2's last action must NOT refresh its LRU stamp…
        store.record_last_actions(&[(2, &[9.5][..]), (1, &[4.0][..])]);
        assert_eq!(store.peek_last_action(2), Some((vec![9.5], false)));
        // …and peeking must not either: inserting 3 still evicts 2.
        store.touch_grouped(&[3], |_, _| {});
        assert!(!store.contains(2));
        assert_eq!(store.peek_last_action(2), None);
        assert_eq!(store.peek_last_action(1), Some((vec![4.0], false)));
        // Absent sessions are skipped, never resurrected.
        store.record_last_actions(&[(99, &[1.0][..])]);
        assert!(!store.contains(99));
    }

    #[test]
    fn state_round_trip_is_byte_identical_and_behaviour_preserving() {
        let source = store(4, 2, 3);
        let sequence: Vec<u64> = vec![0, 9, 17, 3, 9, 0, 25, 3, 17, 9, 0, 33, 9, 41, 0];
        for &id in &sequence {
            source.touch_grouped(&[id], |_, s| {
                s.push(vec![id as f64, 0.5], 2);
            });
        }
        let mut w = PayloadWriter::new();
        source.save_payload(&mut w);
        let bytes = w.into_bytes();

        let restored = store(4, 2, 3);
        let mut r = PayloadReader::new(&bytes);
        restored.restore_payload(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored.stats(), source.stats());

        // Canonical serialization: the restored store re-serializes to the
        // exact same bytes even though its HashMaps were rebuilt.
        let mut w2 = PayloadWriter::new();
        restored.save_payload(&mut w2);
        assert_eq!(w2.as_bytes(), bytes.as_slice());

        // Behaviour equivalence: future touches (incl. TTL/LRU decisions,
        // which depend on the restored ticks and LRU stamps) agree.
        let probe: Vec<u64> = vec![49, 9, 0, 57, 17];
        let mut seen_source = Vec::new();
        source.touch_grouped(&probe, |idx, s| {
            s.quotes += 1;
            seen_source.push((probe[idx], s.quotes, s.warmed(2)));
        });
        let mut seen_restored = Vec::new();
        restored.touch_grouped(&probe, |idx, s| {
            s.quotes += 1;
            seen_restored.push((probe[idx], s.quotes, s.warmed(2)));
        });
        assert_eq!(seen_source, seen_restored);
        assert_eq!(source.stats(), restored.stats());
    }

    #[test]
    fn restore_rejects_mismatched_shard_count_and_corrupt_payloads() {
        let source = store(2, 0, 0);
        source.touch_grouped(&[1, 2, 3], |_, _| {});
        let mut w = PayloadWriter::new();
        source.save_payload(&mut w);
        let bytes = w.into_bytes();

        let wrong_shards = store(4, 0, 0);
        let mut r = PayloadReader::new(&bytes);
        assert!(matches!(
            wrong_shards.restore_payload(&mut r),
            Err(CodecError::Invalid(_))
        ));

        // A truncated payload fails with a typed error and leaves the
        // target store untouched.
        let target = store(2, 0, 0);
        target.touch_grouped(&[77], |_, _| {});
        let mut r = PayloadReader::new(&bytes[..bytes.len() - 5]);
        assert!(matches!(
            target.restore_payload(&mut r),
            Err(CodecError::Truncated { .. })
        ));
        assert!(target.contains(77), "failed restore must not clobber state");
    }

    #[test]
    fn unbounded_store_never_evicts() {
        let store = store(4, 0, 0);
        let ids: Vec<u64> = (0..100).collect();
        store.touch_grouped(&ids, |_, _| {});
        assert_eq!(store.len(), 100);
        assert_eq!(store.stats().evicted, 0);
        assert_eq!(store.stats().expired, 0);
        assert!(store.remove(42));
        assert!(!store.remove(42));
        assert_eq!(store.len(), 99);
    }
}
