//! Per-VMU session state: the rolling observation history a policy needs to
//! price one client across rounds.

use std::collections::VecDeque;

use vtm_nn::codec::{CodecError, PayloadReader, PayloadWriter};

/// One VMU session's serving-side state. The policy observes the last `L`
/// rounds of features, so the session only has to buffer feature blocks —
/// the client ships one block per round, never the full observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// The most recent feature blocks, oldest first (at most `L`).
    history: VecDeque<Vec<f64>>,
    /// Quotes served to this session so far (also the per-session noise
    /// counter for sampled inference).
    pub quotes: u64,
    /// The raw policy action behind the most recent quote served to this
    /// session — the degraded-mode answer when the pricing pipeline is
    /// unavailable.
    last_action: Option<Vec<f64>>,
}

impl Session {
    /// Creates an empty session sized for a `history_length`-round window.
    pub fn new(history_length: usize) -> Self {
        Self {
            history: VecDeque::with_capacity(history_length),
            quotes: 0,
            last_action: None,
        }
    }

    /// Records the raw action behind the latest quote served to this
    /// session (the degraded-mode cache).
    pub fn set_last_action(&mut self, action: Vec<f64>) {
        self.last_action = Some(action);
    }

    /// The raw action behind the latest quote, if one was ever served.
    pub fn last_action(&self) -> Option<&[f64]> {
        self.last_action.as_deref()
    }

    /// Appends the newest round's feature block, dropping the oldest once the
    /// window is full.
    pub fn push(&mut self, features: Vec<f64>, history_length: usize) {
        if self.history.len() == history_length {
            self.history.pop_front();
        }
        self.history.push_back(features);
    }

    /// Whether the rolling window holds a full `L` rounds of real features.
    pub fn warmed(&self, history_length: usize) -> bool {
        self.history.len() >= history_length
    }

    /// Flattens the window into the policy observation. Until the session is
    /// warm the *oldest* block is repeated to fill the window — a
    /// deterministic stand-in for the random warm-up rounds the training
    /// environment plays.
    pub fn observation(&self, history_length: usize, features: usize) -> Vec<f64> {
        let mut obs = Vec::with_capacity(history_length * features);
        let missing = history_length - self.history.len();
        if let Some(first) = self.history.front() {
            for _ in 0..missing {
                obs.extend_from_slice(first);
            }
        }
        for block in &self.history {
            obs.extend_from_slice(block);
        }
        obs
    }

    /// Serializes the session into a payload: the quote counter followed by
    /// the buffered feature blocks, oldest first. Floats are stored as raw
    /// bit patterns, so save → load → observe is bit-exact.
    pub fn save_payload(&self, w: &mut PayloadWriter) {
        w.write_u64(self.quotes);
        w.write_usize(self.history.len());
        for block in &self.history {
            w.write_f64_vec(block);
        }
        match &self.last_action {
            Some(action) => {
                w.write_u64(1);
                w.write_f64_vec(action);
            }
            None => w.write_u64(0),
        }
    }

    /// Reconstructs a session written by [`Session::save_payload`].
    ///
    /// # Errors
    ///
    /// Returns the underlying [`CodecError`] for truncated or structurally
    /// invalid payloads — never panics on corrupt input.
    pub fn load_payload(
        r: &mut PayloadReader<'_>,
        history_length: usize,
    ) -> Result<Self, CodecError> {
        let quotes = r.read_u64()?;
        let blocks = r.read_usize()?;
        if blocks > history_length {
            return Err(CodecError::Invalid(format!(
                "session holds {blocks} blocks, window is {history_length}"
            )));
        }
        let mut history = VecDeque::with_capacity(history_length);
        for _ in 0..blocks {
            history.push_back(r.read_f64_vec()?);
        }
        let last_action = match r.read_u64()? {
            0 => None,
            1 => Some(r.read_f64_vec()?),
            tag => {
                return Err(CodecError::Invalid(format!(
                    "session last-action tag must be 0 or 1, got {tag}"
                )))
            }
        };
        Ok(Self {
            history,
            quotes,
            last_action,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rolls_and_pads() {
        let mut s = Session::new(3);
        s.push(vec![1.0], 3);
        assert!(!s.warmed(3));
        assert_eq!(s.observation(3, 1), vec![1.0, 1.0, 1.0]);
        s.push(vec![2.0], 3);
        s.push(vec![3.0], 3);
        assert!(s.warmed(3));
        assert_eq!(s.observation(3, 1), vec![1.0, 2.0, 3.0]);
        s.push(vec![4.0], 3);
        assert_eq!(s.observation(3, 1), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn payload_round_trip_is_bit_exact() {
        let mut s = Session::new(3);
        s.push(vec![0.1, -2.5], 3);
        s.push(vec![f64::MIN_POSITIVE, 7.75], 3);
        s.quotes = 42;
        s.set_last_action(vec![13.25, -0.5]);
        let mut w = PayloadWriter::new();
        s.save_payload(&mut w);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        let restored = Session::load_payload(&mut r, 3).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored, s);
        assert_eq!(restored.observation(3, 2), s.observation(3, 2));
        assert_eq!(restored.last_action(), Some(&[13.25, -0.5][..]));
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        let mut w = PayloadWriter::new();
        Session::new(2).save_payload(&mut w);
        let bytes = w.into_bytes();
        // Truncation mid-payload.
        let mut r = PayloadReader::new(&bytes[..4]);
        assert!(matches!(
            Session::load_payload(&mut r, 2),
            Err(CodecError::Truncated { .. })
        ));
        // A block count beyond the window is structurally invalid.
        let mut w = PayloadWriter::new();
        w.write_u64(0);
        w.write_usize(9);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert!(matches!(
            Session::load_payload(&mut r, 2),
            Err(CodecError::Invalid(_))
        ));
        // A last-action tag other than 0/1 is structurally invalid.
        let mut w = PayloadWriter::new();
        w.write_u64(0);
        w.write_usize(0);
        w.write_u64(7);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert!(matches!(
            Session::load_payload(&mut r, 2),
            Err(CodecError::Invalid(_))
        ));
    }
}
