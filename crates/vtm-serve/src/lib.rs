//! # vtm-serve — batched online inference for trained pricing policies
//!
//! The last stage of the policy lifecycle (train → checkpoint → load →
//! **serve**): the MSP trains its DRL incentive mechanism offline, freezes
//! the policy into a [`PolicySnapshot`](vtm_rl::snapshot::PolicySnapshot)
//! checkpoint, and then quotes migration prices online, every pricing round,
//! to many concurrent VMU sessions at once.
//!
//! The centrepiece is [`PricingService`]:
//!
//! * **frozen policy** — only the snapshot's actor network (plus the optional
//!   observation normalizer) is loaded; serving never mutates weights;
//! * **sharded, bounded session state** — each VMU session keeps its own
//!   rolling observation history behind one of `S` mutex shards
//!   ([`SessionStore`]), so concurrent request handlers contend per shard
//!   rather than on one global lock; per-shard capacity (LRU eviction) and
//!   an idle TTL keep a fleet of distinct VMU ids from exhausting memory;
//! * **batched forward** — [`PricingService::quote_batch`] prices a whole
//!   round of requests with *one* actor matrix forward pass
//!   ([`vtm_nn::mlp::Mlp::forward_rows`]) instead of one row-vector pass per
//!   request, which is where the serving throughput comes from (the
//!   `serve-bench` experiment measures batched vs per-request quotes/s);
//! * **deterministic greedy mode** — [`InferenceMode::Greedy`] quotes the
//!   squashed Gaussian mean, so identical request streams produce identical
//!   prices; [`InferenceMode::Sample`] draws exploration noise from a
//!   per-session counter-based stream and is equally reproducible.
//!
//! # Example
//!
//! ```
//! use vtm_rl::env::ActionSpace;
//! use vtm_rl::ppo::{PpoAgent, PpoConfig};
//! use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};
//!
//! // A freshly initialised policy stands in for a trained checkpoint.
//! let agent = PpoAgent::new(PpoConfig::new(8, 1).with_seed(1), ActionSpace::scalar(5.0, 50.0));
//! let service =
//!     PricingService::from_snapshot(&agent.snapshot(), ServiceConfig::new(4, 2)).unwrap();
//! let quotes = service
//!     .quote_batch(&[
//!         QuoteRequest::new(7, vec![0.5, 0.2]),
//!         QuoteRequest::new(9, vec![0.1, 0.9]),
//!     ])
//!     .unwrap();
//! assert_eq!(quotes.len(), 2);
//! assert!(quotes[0].price() >= 5.0 && quotes[0].price() <= 50.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod service;
mod session;
mod store;

pub use service::{
    InferenceMode, Precision, PricingService, Quote, QuoteRequest, ServeError, ServiceConfig,
    ServiceStats, SharedPolicy,
};
pub use session::Session;
pub use store::{SessionStore, StoreConfig, StoreStats};
