//! Fixed-seed property loop for the sharded, bounded [`SessionStore`]
//! (originally a proptest-style suite; rewritten as deterministic seeded
//! loops like the rest of the workspace, so it runs offline and identically
//! on every machine).
//!
//! Invariants exercised across random insert/lookup/evict/remove traffic:
//!
//! * **capacity bound** — no shard ever exceeds `capacity_per_shard`;
//! * **LRU safety** — the most recently touched id is never the eviction
//!   victim;
//! * **shard isolation** — every live id lives in exactly the shard its
//!   hash maps to, so eviction in one shard cannot corrupt another;
//! * **TTL expiry** — an id left idle (in per-shard request ticks) for
//!   longer than the TTL is gone once its shard sees traffic again;
//! * **replay determinism** — the same op sequence on a fresh store yields
//!   bit-identical shard contents (the property the gateway's determinism
//!   contract leans on).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vtm_serve::{SessionStore, StoreConfig};

const SHARDS: usize = 4;
const CAPACITY: usize = 6;
const TTL: u64 = 12;
const HISTORY: usize = 3;
const ID_SPACE: u64 = 64;
const COLD_ID: u64 = 1000;

fn bounded_store() -> SessionStore {
    SessionStore::new(
        HISTORY,
        StoreConfig::default()
            .with_shards(SHARDS)
            .with_capacity_per_shard(CAPACITY)
            .with_ttl_quotes(TTL),
    )
}

/// One random batch of ids (1..8 ids drawn from the hot id space).
fn random_batch(rng: &mut StdRng) -> Vec<u64> {
    let len = rng.gen_range(1..8usize);
    (0..len).map(|_| rng.gen_range(0..ID_SPACE)).collect()
}

#[test]
fn property_loop_capacity_ttl_and_shard_isolation() {
    for seed in 0..4u64 {
        let store = bounded_store();
        let twin = bounded_store(); // replays the identical sequence
        let mut rng = StdRng::seed_from_u64(seed);

        // A session touched exactly once and never again: TTL (or capacity
        // pressure) must reclaim it by the end of the run.
        store.touch_grouped(&[COLD_ID], |_, _| {});
        twin.touch_grouped(&[COLD_ID], |_, _| {});

        for step in 0..400usize {
            let ids = random_batch(&mut rng);
            for s in [&store, &twin] {
                s.touch_grouped(&ids, |_, session| {
                    session.push(vec![step as f64; 1], HISTORY);
                    session.quotes += 1;
                });
            }

            // Capacity bound, per shard, after every batch.
            for shard in 0..store.shard_count() {
                assert!(
                    store.shard_len(shard) <= CAPACITY,
                    "seed {seed} step {step}: shard {shard} over capacity"
                );
            }
            // The most recently touched id must have survived its own batch.
            assert!(store.contains(*ids.last().unwrap()));
            // Shard isolation: every live id sits in the shard its hash
            // names, and nowhere else.
            let mut live = 0;
            for shard in 0..store.shard_count() {
                for id in store.shard_sessions(shard) {
                    assert_eq!(
                        store.shard_of(id),
                        shard,
                        "seed {seed} step {step}: id {id} leaked into shard {shard}"
                    );
                    live += 1;
                }
            }
            assert_eq!(live, store.len());

            // Occasional explicit removal (the `end_session` path).
            if rng.gen_range(0..4usize) == 0 {
                let id = rng.gen_range(0..ID_SPACE);
                let existed = store.contains(id);
                assert_eq!(store.remove(id), existed);
                assert!(!store.contains(id));
                let _ = twin.remove(id);
            }

            // Replay determinism: both stores always agree exactly.
            if step % 50 == 0 {
                for shard in 0..store.shard_count() {
                    assert_eq!(store.shard_sessions(shard), twin.shard_sessions(shard));
                }
            }
        }

        let stats = store.stats();
        assert!(stats.sessions <= SHARDS * CAPACITY);
        assert!(stats.evicted > 0, "seed {seed}: capacity never kicked in");
        assert!(stats.expired > 0, "seed {seed}: TTL never kicked in");
        assert!(
            !store.contains(COLD_ID),
            "seed {seed}: idle session survived {TTL}-tick TTL under traffic"
        );
    }
}

#[test]
fn unbounded_config_is_the_identity_policy() {
    // The pre-gateway default: no capacity, no TTL — nothing is ever
    // reclaimed behind the caller's back.
    let store = SessionStore::new(HISTORY, StoreConfig::default().with_shards(SHARDS));
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..100 {
        let ids = random_batch(&mut rng);
        store.touch_grouped(&ids, |_, _| {});
    }
    let stats = store.stats();
    assert_eq!(stats.evicted, 0);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.sessions as u64, {
        let mut distinct: Vec<u64> = (0..ID_SPACE).filter(|&id| store.contains(id)).collect();
        distinct.dedup();
        distinct.len() as u64
    });
}
