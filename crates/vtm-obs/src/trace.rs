//! Per-request stage tracing: a lock-free seqlock ring buffer of fixed-size
//! lifecycle records, 1-in-N sampled with zero allocation on the hot path.
//!
//! A traced request carries a [`TraceRecord`] (a `Copy` block of 12 `u64`
//! words) inline through the pipeline; each stage stamps one timestamp from
//! the tracer's clock. On completion the record is published into a
//! fixed-capacity ring of seqlock slots — writers never block readers and
//! readers never block writers; a torn slot is simply skipped (writer side:
//! counted as dropped; reader side: retried a bounded number of times).
//!
//! Timestamps come from [`Tracer::now_us`]: wall mode reports microseconds
//! since tracer construction, logical mode hands out consecutive integers
//! (1, 2, 3, …) so tests get bit-reproducible decompositions. Both clocks
//! are strictly positive — a zero stamp always means "stage not reached"
//! (e.g. the journal stamps on a gateway running without a journal).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

use crate::hist::{HistogramSnapshot, LogHistogram};

/// Number of `u64` words in a serialized [`TraceRecord`] (one ring slot).
pub const TRACE_WORDS: usize = 12;

/// Stable trace id for a request, derived from `(session, seq)` with a
/// splitmix64-style mixer: the same request always hashes to the same id,
/// so 1-in-N sampling picks a deterministic, well-spread subset.
pub fn trace_id(session: u64, seq: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    mix(mix(session) ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Tracer configuration (all builders are `const`-friendly value setters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerConfig {
    /// Sample 1 in N requests by trace id (`0` and `1` both mean "every
    /// request"). Default 64.
    pub sample_every: u64,
    /// Ring capacity in records, rounded up to a power of two. Default 4096.
    pub capacity: usize,
    /// Use the deterministic logical clock (consecutive integers) instead
    /// of wall microseconds. Default `false`.
    pub logical_clock: bool,
}

impl Default for TracerConfig {
    fn default() -> Self {
        Self {
            sample_every: 64,
            capacity: 4096,
            logical_clock: false,
        }
    }
}

impl TracerConfig {
    /// Sets the 1-in-N sampling rate (`0`/`1` sample everything).
    pub fn with_sample_every(mut self, n: u64) -> Self {
        self.sample_every = n;
        self
    }

    /// Sets the ring capacity (rounded up to a power of two, minimum 2).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Switches between the wall clock and the deterministic logical clock.
    pub fn with_logical_clock(mut self, logical: bool) -> Self {
        self.logical_clock = logical;
        self
    }
}

/// One request's lifecycle timestamps (tracer-clock µs; 0 = not reached).
///
/// `Copy` and exactly [`TRACE_WORDS`] words so it travels inline with the
/// request through the pipeline — no allocation on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceRecord {
    /// Stable id from [`trace_id`]`(session, seq)`.
    pub trace_id: u64,
    /// Session (vehicle) id.
    pub session: u64,
    /// Per-session request sequence number.
    pub seq: u64,
    /// Admission-control passed; lifecycle begins.
    pub admit_us: u64,
    /// Journal append started (0 when the gateway runs without a journal
    /// or the append was bypassed).
    pub journal_start_us: u64,
    /// Journal append finished (0 when not journaled).
    pub journal_end_us: u64,
    /// Pushed onto the scheduler's ingress queue.
    pub enqueue_us: u64,
    /// The scheduler closed the batch containing this request.
    pub batch_formed_us: u64,
    /// An executor began the batched forward pass.
    pub execute_start_us: u64,
    /// The forward pass produced this request's quote.
    pub priced_us: u64,
    /// The ticket was resolved and the waiter woken.
    pub resolved_us: u64,
    /// Packed `batch_size << 32 | shard` of the executing batch.
    pub batch_meta: u64,
}

impl TraceRecord {
    /// A fresh record with identity fields set and all stamps zero.
    pub fn new(session: u64, seq: u64) -> Self {
        Self {
            trace_id: trace_id(session, seq),
            session,
            seq,
            ..Self::default()
        }
    }

    /// Stores the executing batch's size and shard.
    pub fn set_batch(&mut self, batch_size: usize, shard: usize) {
        self.batch_meta = ((batch_size as u64) << 32) | (shard as u64 & 0xffff_ffff);
    }

    /// Size of the batch this request executed in (0 if never batched).
    pub fn batch_size(&self) -> u64 {
        self.batch_meta >> 32
    }

    /// Fabric shard id of the executing gateway (0 standalone).
    pub fn shard(&self) -> u64 {
        self.batch_meta & 0xffff_ffff
    }

    /// Serializes into the fixed ring-slot word layout.
    pub fn to_words(&self) -> [u64; TRACE_WORDS] {
        [
            self.trace_id,
            self.session,
            self.seq,
            self.admit_us,
            self.journal_start_us,
            self.journal_end_us,
            self.enqueue_us,
            self.batch_formed_us,
            self.execute_start_us,
            self.priced_us,
            self.resolved_us,
            self.batch_meta,
        ]
    }

    /// Deserializes from the fixed ring-slot word layout.
    pub fn from_words(words: &[u64; TRACE_WORDS]) -> Self {
        Self {
            trace_id: words[0],
            session: words[1],
            seq: words[2],
            admit_us: words[3],
            journal_start_us: words[4],
            journal_end_us: words[5],
            enqueue_us: words[6],
            batch_formed_us: words[7],
            execute_start_us: words[8],
            priced_us: words[9],
            resolved_us: words[10],
            batch_meta: words[11],
        }
    }

    /// Decomposes the stamps into per-stage durations. With monotone stamps
    /// the non-journal stages telescope exactly:
    /// `admission + queue_wait + batch_form + inference + resolve == total`
    /// (`journal_append` is a sub-interval of `admission`, not a summand).
    pub fn stages(&self) -> StageBreakdown {
        StageBreakdown {
            admission_us: self.enqueue_us.saturating_sub(self.admit_us),
            journal_append_us: if self.journal_start_us == 0 {
                0
            } else {
                self.journal_end_us.saturating_sub(self.journal_start_us)
            },
            queue_wait_us: self.batch_formed_us.saturating_sub(self.enqueue_us),
            batch_form_us: self.execute_start_us.saturating_sub(self.batch_formed_us),
            inference_us: self.priced_us.saturating_sub(self.execute_start_us),
            resolve_us: self.resolved_us.saturating_sub(self.priced_us),
            total_us: self.resolved_us.saturating_sub(self.admit_us),
        }
    }

    /// Renders the record and its stage breakdown as a JSON object.
    pub fn to_json(&self) -> String {
        let s = self.stages();
        format!(
            "{{\"trace_id\": {}, \"session\": {}, \"seq\": {}, \"shard\": {}, \
             \"batch_size\": {}, \"stamps_us\": {{\"admit\": {}, \
             \"journal_start\": {}, \"journal_end\": {}, \"enqueue\": {}, \
             \"batch_formed\": {}, \"execute_start\": {}, \"priced\": {}, \
             \"resolved\": {}}}, \"stages_us\": {{\"admission\": {}, \
             \"journal_append\": {}, \"queue_wait\": {}, \"batch_form\": {}, \
             \"inference\": {}, \"resolve\": {}, \"total\": {}}}}}",
            self.trace_id,
            self.session,
            self.seq,
            self.shard(),
            self.batch_size(),
            self.admit_us,
            self.journal_start_us,
            self.journal_end_us,
            self.enqueue_us,
            self.batch_formed_us,
            self.execute_start_us,
            self.priced_us,
            self.resolved_us,
            s.admission_us,
            s.journal_append_us,
            s.queue_wait_us,
            s.batch_form_us,
            s.inference_us,
            s.resolve_us,
            s.total_us,
        )
    }
}

/// Per-stage durations of one traced request (µs in the tracer's clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageBreakdown {
    /// Admit → enqueue (includes the journal append when journaling).
    pub admission_us: u64,
    /// Journal append duration (0 when the request was not journaled);
    /// a sub-interval of `admission_us`, not an additional summand.
    pub journal_append_us: u64,
    /// Enqueue → batch formed (time spent waiting in the ingress queue).
    pub queue_wait_us: u64,
    /// Batch formed → executor picked the batch up.
    pub batch_form_us: u64,
    /// Executor start → this request priced (the batched forward pass).
    pub inference_us: u64,
    /// Priced → ticket resolved and waiter woken.
    pub resolve_us: u64,
    /// Admit → resolved (equals the sum of the five non-journal stages).
    pub total_us: u64,
}

/// Number of bounded seqlock read retries before a slot is skipped.
const READ_RETRIES: usize = 8;

struct Slot {
    /// Seqlock sequence: 0 = never written, odd = write in progress,
    /// even > 0 = consistent.
    seq: AtomicU64,
    words: [AtomicU64; TRACE_WORDS],
}

/// The lock-free trace recorder: clock, sampler and seqlock ring in one.
///
/// Shared behind an `Arc` between the gateway pipeline (writers) and
/// whoever drains [`Tracer::records`] (readers). All operations are
/// wait-free except the bounded-retry reader.
#[derive(Debug)]
pub struct Tracer {
    config: TracerConfig,
    mask: u64,
    slots: Vec<Slot>,
    head: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
    logical: AtomicU64,
    epoch: Instant,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// Builds a tracer; the ring capacity is rounded up to a power of two
    /// (minimum 2).
    pub fn new(config: TracerConfig) -> Self {
        let capacity = config.capacity.max(2).next_power_of_two();
        Self {
            config,
            mask: capacity as u64 - 1,
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            head: AtomicU64::new(0),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            logical: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> TracerConfig {
        self.config
    }

    /// Ring capacity in records (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// A strictly positive timestamp in the tracer's clock: wall mode is
    /// microseconds since construction + 1; logical mode hands out
    /// consecutive integers starting at 1 (bit-reproducible in tests).
    pub fn now_us(&self) -> u64 {
        if self.config.logical_clock {
            self.logical.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.epoch.elapsed().as_micros() as u64 + 1
        }
    }

    /// Whether a trace id falls in the 1-in-N sample (deterministic).
    pub fn sampled(&self, trace_id: u64) -> bool {
        self.config.sample_every <= 1 || trace_id.is_multiple_of(self.config.sample_every)
    }

    /// Publishes a completed record into the ring (wait-free). When two
    /// writers race for the same wrapped slot the loser drops its record
    /// and bumps [`Tracer::dropped`] rather than spinning.
    pub fn publish(&self, record: &TraceRecord) {
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) & self.mask) as usize;
        let slot = &self.slots[idx];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (word, value) in slot.words.iter().zip(record.to_words()) {
            word.store(value, Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Records successfully published into the ring so far (older ones may
    /// since have been overwritten by ring wrap-around).
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Records dropped by writer-side slot contention.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshots every consistent record currently in the ring, sorted by
    /// `(admit_us, trace_id)` for stable reporting. Slots that stay torn
    /// across a bounded number of read attempts are skipped.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        'slot: for slot in &self.slots {
            for _ in 0..READ_RETRIES {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    continue 'slot;
                }
                if s1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let mut words = [0u64; TRACE_WORDS];
                for (value, word) in words.iter_mut().zip(&slot.words) {
                    *value = word.load(Ordering::Relaxed);
                }
                fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) == s1 {
                    out.push(TraceRecord::from_words(&words));
                    continue 'slot;
                }
            }
        }
        out.sort_by_key(|r| (r.admit_us, r.trace_id));
        out
    }
}

/// Per-stage latency histograms fed from sampled trace records: where a
/// traced request's time actually went, as log₂-µs distributions.
#[derive(Debug, Default)]
pub struct StageHistograms {
    traced: AtomicU64,
    /// Enqueue → batch formed.
    queue_wait: LogHistogram,
    /// Batch formed → executor pickup.
    batch_form: LogHistogram,
    /// Batched forward pass.
    inference: LogHistogram,
    /// Priced → waiter woken.
    resolve: LogHistogram,
    /// Journal append (only requests that hit the journal).
    journal_append: LogHistogram,
}

impl StageHistograms {
    /// A zeroed set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed trace record into the stage histograms (the
    /// journal histogram only when the record was actually journaled).
    pub fn record(&self, record: &TraceRecord) {
        let stages = record.stages();
        self.traced.fetch_add(1, Ordering::Relaxed);
        self.queue_wait.record(stages.queue_wait_us);
        self.batch_form.record(stages.batch_form_us);
        self.inference.record(stages.inference_us);
        self.resolve.record(stages.resolve_us);
        if record.journal_start_us > 0 {
            self.journal_append.record(stages.journal_append_us);
        }
    }

    /// Traced (sampled and completed) requests folded in so far.
    pub fn traced(&self) -> u64 {
        self.traced.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all five stage histograms.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            traced: self.traced.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.snapshot(),
            batch_form: self.batch_form.snapshot(),
            inference: self.inference.snapshot(),
            resolve: self.resolve.snapshot(),
            journal_append: self.journal_append.snapshot(),
        }
    }
}

/// An owned copy of [`StageHistograms`], mergeable across shards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageSnapshot {
    /// Traced requests folded in.
    pub traced: u64,
    /// Enqueue → batch formed.
    pub queue_wait: HistogramSnapshot,
    /// Batch formed → executor pickup.
    pub batch_form: HistogramSnapshot,
    /// Batched forward pass.
    pub inference: HistogramSnapshot,
    /// Priced → waiter woken.
    pub resolve: HistogramSnapshot,
    /// Journal append (journaled requests only).
    pub journal_append: HistogramSnapshot,
}

impl StageSnapshot {
    /// Folds another snapshot into this one (shard → arm aggregation).
    pub fn merge(&mut self, other: &StageSnapshot) {
        self.traced += other.traced;
        self.queue_wait.merge(&other.queue_wait);
        self.batch_form.merge(&other.batch_form);
        self.inference.merge(&other.inference);
        self.resolve.merge(&other.resolve);
        self.journal_append.merge(&other.journal_append);
    }

    /// Renders as a JSON object of per-stage histogram objects.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"traced\": {}, \"queue_wait\": {}, \"batch_form\": {}, \
             \"inference\": {}, \"resolve\": {}, \"journal_append\": {}}}",
            self.traced,
            self.queue_wait.to_json(),
            self.batch_form.to_json(),
            self.inference.to_json(),
            self.resolve.to_json(),
            self.journal_append.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn stamped(tracer: &Tracer, session: u64, seq: u64) -> TraceRecord {
        let mut r = TraceRecord::new(session, seq);
        r.admit_us = tracer.now_us();
        r.journal_start_us = tracer.now_us();
        r.journal_end_us = tracer.now_us();
        r.enqueue_us = tracer.now_us();
        r.batch_formed_us = tracer.now_us();
        r.execute_start_us = tracer.now_us();
        r.priced_us = tracer.now_us();
        r.resolved_us = tracer.now_us();
        r.set_batch(4, 1);
        r
    }

    #[test]
    fn trace_id_is_stable_and_spread() {
        assert_eq!(trace_id(7, 3), trace_id(7, 3));
        assert_ne!(trace_id(7, 3), trace_id(7, 4));
        assert_ne!(trace_id(7, 3), trace_id(8, 3));
        // A contiguous id block should spread across a 1-in-64 sample.
        let hits = (0..64 * 64)
            .filter(|&s| trace_id(s, 0).is_multiple_of(64))
            .count();
        assert!(hits > 16 && hits < 256, "poorly spread sample: {hits}");
    }

    #[test]
    fn logical_clock_is_consecutive_and_strictly_positive() {
        let t = Tracer::new(TracerConfig::default().with_logical_clock(true));
        assert_eq!(t.now_us(), 1);
        assert_eq!(t.now_us(), 2);
        assert_eq!(t.now_us(), 3);
    }

    #[test]
    fn wall_clock_is_strictly_positive_and_monotone() {
        let t = Tracer::new(TracerConfig::default());
        let a = t.now_us();
        let b = t.now_us();
        assert!(a >= 1);
        assert!(b >= a);
    }

    #[test]
    fn sampling_one_in_n_is_deterministic() {
        let every = Tracer::new(TracerConfig::default().with_sample_every(1));
        assert!(every.sampled(12345));
        let none_special = Tracer::new(TracerConfig::default().with_sample_every(0));
        assert!(none_special.sampled(12345));
        let sparse = Tracer::new(TracerConfig::default().with_sample_every(64));
        assert!(sparse.sampled(128));
        assert!(!sparse.sampled(129));
    }

    #[test]
    fn stage_decomposition_telescopes_exactly() {
        let t = Tracer::new(TracerConfig::default().with_logical_clock(true));
        let r = stamped(&t, 42, 7);
        let s = r.stages();
        assert_eq!(
            s.admission_us + s.queue_wait_us + s.batch_form_us + s.inference_us + s.resolve_us,
            s.total_us,
        );
        assert!(s.journal_append_us <= s.admission_us);
        assert_eq!(r.batch_size(), 4);
        assert_eq!(r.shard(), 1);
    }

    #[test]
    fn unjournaled_record_reports_zero_journal_stage() {
        let t = Tracer::new(TracerConfig::default().with_logical_clock(true));
        let mut r = TraceRecord::new(1, 1);
        r.admit_us = t.now_us();
        r.enqueue_us = t.now_us();
        r.batch_formed_us = t.now_us();
        r.execute_start_us = t.now_us();
        r.priced_us = t.now_us();
        r.resolved_us = t.now_us();
        assert_eq!(r.stages().journal_append_us, 0);
        let h = StageHistograms::new();
        h.record(&r);
        assert_eq!(h.snapshot().journal_append.count, 0);
        assert_eq!(h.snapshot().queue_wait.count, 1);
    }

    #[test]
    fn ring_publishes_and_reads_back() {
        let t = Tracer::new(
            TracerConfig::default()
                .with_capacity(8)
                .with_logical_clock(true),
        );
        assert_eq!(t.capacity(), 8);
        let r = stamped(&t, 5, 9);
        t.publish(&r);
        let records = t.records();
        assert_eq!(records, vec![r]);
        assert_eq!(t.published(), 1);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_wraps_keeping_newest_records() {
        let t = Tracer::new(
            TracerConfig::default()
                .with_capacity(4)
                .with_logical_clock(true),
        );
        let records: Vec<TraceRecord> = (0..10).map(|i| stamped(&t, 1, i)).collect();
        for r in &records {
            t.publish(r);
        }
        let kept = t.records();
        assert_eq!(kept.len(), 4);
        // The newest four survive the wrap.
        assert_eq!(kept, records[6..].to_vec());
        assert_eq!(t.published(), 10);
    }

    #[test]
    fn concurrent_publish_never_yields_torn_records() {
        let t = Arc::new(Tracer::new(
            TracerConfig::default()
                .with_capacity(64)
                .with_logical_clock(true),
        ));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        let mut r = TraceRecord::new(w, i);
                        // Every stamp carries the writer tag so a torn read
                        // (words from two writers) is detectable.
                        let tag = w * 1_000_000 + i + 1;
                        r.admit_us = tag;
                        r.journal_start_us = tag;
                        r.journal_end_us = tag;
                        r.enqueue_us = tag;
                        r.batch_formed_us = tag;
                        r.execute_start_us = tag;
                        r.priced_us = tag;
                        r.resolved_us = tag;
                        t.publish(&r);
                    }
                })
            })
            .collect();
        let reader = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for r in t.records() {
                        assert_eq!(r.trace_id, trace_id(r.session, r.seq), "torn identity");
                        let tag = r.admit_us;
                        assert!(
                            [
                                r.journal_start_us,
                                r.journal_end_us,
                                r.enqueue_us,
                                r.batch_formed_us,
                                r.execute_start_us,
                                r.priced_us,
                                r.resolved_us,
                            ]
                            .iter()
                            .all(|&s| s == tag),
                            "torn stamps: {r:?}",
                        );
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(t.published() + t.dropped(), 8000);
    }

    #[test]
    fn stage_snapshot_merges_and_serializes() {
        let t = Tracer::new(TracerConfig::default().with_logical_clock(true));
        let a = StageHistograms::new();
        a.record(&stamped(&t, 1, 1));
        let b = StageHistograms::new();
        b.record(&stamped(&t, 2, 2));
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.traced, 2);
        assert_eq!(merged.queue_wait.count, 2);
        assert_eq!(merged.journal_append.count, 2);
        let json = merged.to_json();
        assert!(json.contains("\"traced\": 2"), "{json}");
        assert!(json.contains("\"queue_wait\": {"), "{json}");
    }

    #[test]
    fn record_json_contains_stamps_and_stages() {
        let t = Tracer::new(TracerConfig::default().with_logical_clock(true));
        let json = stamped(&t, 3, 4).to_json();
        assert!(json.contains("\"stamps_us\""), "{json}");
        assert!(json.contains("\"stages_us\""), "{json}");
        assert!(json.contains("\"total\": 7"), "{json}");
    }
}
