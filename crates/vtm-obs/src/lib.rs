//! `vtm-obs` — std-only observability primitives for the serving stack.
//!
//! Four small pieces, no dependencies, shared by every layer above:
//!
//! - histograms: the single copy of the log₂-µs bucket math previously
//!   duplicated across `vtm-gateway`, `vtm-fabric` and `vtm-bench`, plus
//!   the lock-free [`LogHistogram`] and its mergeable snapshot.
//! - tracing: per-request stage tracing — a seqlock ring of fixed-size
//!   [`TraceRecord`]s with deterministic 1-in-N sampling, a logical-clock
//!   mode for bit-reproducible tests, and per-stage histograms.
//! - metrics: a [`MetricsRegistry`] with Prometheus text + JSON
//!   exposition and a rotating [`DeltaWindow`] for per-window rates.
//! - json: a minimal JSON reader so the SLO pipeline can parse the
//!   workspace's hand-rolled reports back without external crates.
//!
//! See `docs/OBSERVABILITY.md` for the trace-event vocabulary, stage
//! boundaries, sampling semantics and the SLO-baseline update procedure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod json;
mod metrics;
mod trace;

pub use hist::{
    bucket_upper_bound_us, latency_bucket, median, percentile_from_buckets, percentile_sorted,
    HistogramSnapshot, LogHistogram, LATENCY_BUCKETS,
};
pub use json::{escape_json, JsonError, JsonValue};
pub use metrics::{DeltaWindow, MetricFamily, MetricValue, MetricsRegistry, Sample};
pub use trace::{
    trace_id, StageBreakdown, StageHistograms, StageSnapshot, TraceRecord, Tracer, TracerConfig,
    TRACE_WORDS,
};
