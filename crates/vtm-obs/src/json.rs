//! A minimal dependency-free JSON reader (and string escaper) for the
//! SLO pipeline: just enough to parse the hand-rolled `BENCH_*.json` /
//! telemetry reports back into a navigable value tree. Object keys keep
//! their document order; numbers are `f64` (every number this workspace
//! emits fits exactly or within f64 rounding, which the SLO noise bands
//! dwarf).

use std::fmt;

/// Escapes a string for embedding inside a JSON (or Prometheus label)
/// double-quoted literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; entries keep document order.
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth accepted by the parser (guards the stack).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", byte as char))
        }
    }

    fn consume_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            self.err(format!("expected '{literal}'"))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.consume_literal("null", JsonValue::Null),
            Some(b't') => self.consume_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.consume_literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.parse_string().map(JsonValue::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.parse_value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                // Surrogate pair: combine with the low half.
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xd800) << 10) + low.saturating_sub(0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return self.err("control character in string"),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| JsonError {
                        offset: self.pos,
                        message: "invalid UTF-8".into(),
                    })?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(code) => {
                self.pos += 4;
                Ok(code)
            }
            None => self.err("bad \\u escape"),
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
            _ => self.err(format!("bad number '{text}'")),
        }
    }
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.parse_value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return parser.err("trailing characters after document");
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Dot-separated path lookup; numeric segments index arrays
    /// (`"arms.0.latency_us.p99"`).
    pub fn path(&self, path: &str) -> Option<&JsonValue> {
        let mut current = self;
        for segment in path.split('.') {
            current = match segment.parse::<usize>() {
                Ok(index) => match current {
                    JsonValue::Array(items) => items.get(index)?,
                    _ => return None,
                },
                Err(_) => current.get(segment)?,
            };
        }
        Some(current)
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries in document order.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse(" -1.5e2 ").unwrap(),
            JsonValue::Number(-150.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\\u00e9\"").unwrap(),
            JsonValue::String("a\nbé".into())
        );
    }

    #[test]
    fn parses_nested_documents_preserving_key_order() {
        let doc = r#"{"b": [1, 2, {"x": null}], "a": {"y": "z"}}"#;
        let v = JsonValue::parse(doc).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(v.path("b.2.x"), Some(&JsonValue::Null));
        assert_eq!(v.path("a.y").and_then(|x| x.as_str()), Some("z"));
        assert_eq!(v.path("b.0").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.path("missing"), None);
        assert_eq!(v.path("b.9"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "01x",
            "\"unterminated",
            "{} extra",
            "nul",
        ] {
            let err = JsonValue::parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?} gave empty error");
        }
    }

    #[test]
    fn parses_own_bench_style_output() {
        let doc = r#"{"qps": 123456.7, "latency_us": {"p50": 16, "p99": 512}, "arms": [{"arm": "a", "quotes": 10}]}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.path("latency_us.p99").and_then(|x| x.as_u64()), Some(512));
        assert_eq!(v.path("arms.0.arm").and_then(|x| x.as_str()), Some("a"));
        assert!((v.get("qps").and_then(|x| x.as_f64()).unwrap() - 123456.7).abs() < 1e-9);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{0001}";
        let doc = format!("\"{}\"", escape_json(original));
        assert_eq!(
            JsonValue::parse(&doc).unwrap(),
            JsonValue::String(original.into())
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("😀".into())
        );
    }
}
