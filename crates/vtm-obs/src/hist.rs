//! Log₂-microsecond histogram and percentile primitives.
//!
//! This is the single home of the bucket math that was previously
//! copy-pasted across `vtm-gateway` (log₂ latency buckets), `vtm-fabric`
//! (arm-level aggregation) and `vtm-bench` (nearest-rank sample
//! percentiles). Each latency bucket `b` covers `[2^b, 2^(b+1))`
//! microseconds and a reported percentile is the *upper bound* of the first
//! bucket whose cumulative count reaches the rank — an over-estimate by at
//! most 2x, the standard trade of fixed-bucket histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Log-scale latency buckets: `[2^b, 2^(b+1))` µs for `b` in `0..40`
/// (covers 1 µs up to ~12.7 days, far beyond any sane quote latency).
pub const LATENCY_BUCKETS: usize = 40;

/// Which log-scale bucket a microsecond latency lands in (shared by every
/// telemetry layer; see [`percentile_from_buckets`]).
pub fn latency_bucket(us: u64) -> usize {
    ((63 - us.max(1).leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// Upper bound in microseconds of log-scale bucket `b` (`2^(b+1)`), the
/// value exposed as a Prometheus `le` label and as reported percentiles.
pub fn bucket_upper_bound_us(bucket: usize) -> u64 {
    1u64 << (bucket + 1).min(63)
}

/// Upper bound (µs) of the first latency bucket whose cumulative count
/// reaches `q` of the total; 0 when the histogram is empty.
pub fn percentile_from_buckets(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (b, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << (b + 1);
        }
    }
    1u64 << buckets.len()
}

/// Sorts the samples in place and returns the median (the upper middle for
/// even counts, matching the historical per-bench helpers).
///
/// # Panics
///
/// Panics if `samples` is empty or contains a non-finite value.
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample set");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Nearest-rank percentile (`q` in `[0, 1]`) of an already-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// A lock-free cumulative log₂-µs histogram: every record is four relaxed
/// atomic updates (bucket, count, sum, max) — safe to share behind an `Arc`
/// across any number of writer threads.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one observation (relaxed atomics only).
    pub fn record(&self, us: u64) {
        self.buckets[latency_bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A lock-free copy of the raw cumulative bucket counts (callers that
    /// window over time difference consecutive copies).
    pub fn buckets_now(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets: self.buckets_now(),
        }
    }
}

/// An owned point-in-time copy of a [`LogHistogram`], mergeable across
/// shards and renderable as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (µs, exact).
    pub sum_us: u64,
    /// Largest observation (µs, exact).
    pub max_us: u64,
    /// Raw log-scale bucket counts (`[2^b, 2^(b+1))` µs).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot with the standard [`LATENCY_BUCKETS`] layout.
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: vec![0; LATENCY_BUCKETS],
        }
    }

    /// Bucket-upper-bound percentile (µs); 0 when empty.
    pub fn percentile_us(&self, q: f64) -> u64 {
        percentile_from_buckets(&self.buckets, q)
    }

    /// Median (bucket upper bound, µs); 0 when empty.
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// 95th percentile (bucket upper bound, µs); 0 when empty.
    pub fn p95_us(&self) -> u64 {
        self.percentile_us(0.95)
    }

    /// 99th percentile (bucket upper bound, µs); 0 when empty.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }

    /// Exact mean (µs); 0.0 — never NaN — when empty.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Folds another snapshot into this one (shard → arm aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Renders as a JSON object with derived percentiles and the nonzero
    /// bucket entries (`{"log2_us": b, "count": c}`), no trailing newline.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("{{\"log2_us\": {i}, \"count\": {c}}}"))
            .collect();
        format!(
            "{{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"mean_us\": {:.1}, \"max_us\": {}, \"buckets\": [{}]}}",
            self.count,
            self.p50_us(),
            self.p95_us(),
            self.p99_us(),
            self.mean_us(),
            self.max_us,
            entries.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_log2_microseconds() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(4), 2);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_match_percentile_convention() {
        assert_eq!(bucket_upper_bound_us(0), 2);
        assert_eq!(bucket_upper_bound_us(3), 16);
        assert_eq!(
            bucket_upper_bound_us(LATENCY_BUCKETS - 1),
            1 << LATENCY_BUCKETS
        );
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let h = LogHistogram::new();
        for _ in 0..98 {
            h.record(8);
        }
        for _ in 0..2 {
            h.record(4096);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50_us(), 16);
        assert_eq!(snap.p95_us(), 16);
        assert_eq!(snap.p99_us(), 8192);
        assert_eq!(snap.max_us, 4096);
        assert!((snap.mean_us() - (98.0 * 8.0 + 2.0 * 4096.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeros_never_nan() {
        let snap = LogHistogram::new().snapshot();
        assert_eq!(snap.p50_us(), 0);
        assert_eq!(snap.p99_us(), 0);
        assert_eq!(snap.mean_us(), 0.0);
        assert!(snap.mean_us().is_finite());
        let json = snap.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn merge_sums_counts_and_keeps_max() {
        let a = LogHistogram::new();
        a.record(10);
        a.record(100);
        let b = LogHistogram::new();
        b.record(5000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum_us, 5110);
        assert_eq!(merged.max_us, 5000);
        assert_eq!(merged.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn median_sorts_and_picks_upper_middle() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 3.0);
        assert_eq!(median(&mut [5.0]), 5.0);
    }

    #[test]
    fn percentile_sorted_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.95), 10.0);
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn histogram_json_lists_only_nonzero_buckets() {
        let h = LogHistogram::new();
        h.record(3);
        h.record(3);
        let json = h.snapshot().to_json();
        assert!(
            json.contains("\"buckets\": [{\"log2_us\": 1, \"count\": 2}]"),
            "{json}"
        );
    }
}
