//! A small metrics registry with Prometheus-style text exposition, JSON
//! rendering and time-windowed deltas.
//!
//! The registry is a rebuild-per-scrape value type: callers assemble a
//! fresh [`MetricsRegistry`] from telemetry snapshots each time they want
//! an exposition, then optionally run it through a [`DeltaWindow`] to get
//! per-window rates instead of process-lifetime cumulative counts. Family
//! and sample order is insertion order, so the rendered output is stable
//! for golden-file tests. Non-finite gauge values are clamped to 0 —
//! neither exposition format ever emits `NaN` or `inf`.

use crate::hist::{bucket_upper_bound_us, HistogramSnapshot};
use crate::json::escape_json;

/// A metric sample's value; determines the family's exposition type.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone cumulative count.
    Counter(u64),
    /// Instantaneous value (non-finite values render as 0).
    Gauge(f64),
    /// A log₂-µs histogram, exposed with cumulative `le` buckets.
    Histogram(HistogramSnapshot),
}

/// One labelled sample inside a family.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label pairs in insertion order (rendered verbatim).
    pub labels: Vec<(String, String)>,
    /// The sample's value.
    pub value: MetricValue,
}

/// A named metric with help text and one sample per label set.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (`snake_case`, conventionally `vtm_`-prefixed).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Samples in insertion order.
    pub samples: Vec<Sample>,
}

impl MetricFamily {
    fn kind(&self) -> &'static str {
        match self.samples.first().map(|s| &s.value) {
            Some(MetricValue::Counter(_)) => "counter",
            Some(MetricValue::Gauge(_)) => "gauge",
            Some(MetricValue::Histogram(_)) => "histogram",
            None => "untyped",
        }
    }
}

/// An insertion-ordered collection of metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    families: Vec<MetricFamily>,
}

fn format_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_json(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn format_gauge(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The families registered so far, in insertion order.
    pub fn families(&self) -> &[MetricFamily] {
        &self.families
    }

    fn push(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: MetricValue) {
        let sample = Sample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        };
        if let Some(family) = self.families.iter_mut().find(|f| f.name == name) {
            family.samples.push(sample);
        } else {
            self.families.push(MetricFamily {
                name: name.to_string(),
                help: help.to_string(),
                samples: vec![sample],
            });
        }
    }

    /// Registers a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, help, labels, MetricValue::Counter(value));
    }

    /// Registers a gauge sample (non-finite values render as 0).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, labels, MetricValue::Gauge(value));
    }

    /// Registers a histogram sample.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
    ) {
        self.push(name, help, labels, MetricValue::Histogram(snapshot.clone()));
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, cumulative `le` histogram buckets up
    /// to the highest nonzero bucket, then `+Inf`, `_sum` and `_count`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind()));
            for sample in &family.samples {
                let labels = format_labels(&sample.labels);
                match &sample.value {
                    MetricValue::Counter(v) => {
                        out.push_str(&format!("{}{} {}\n", family.name, labels, v));
                    }
                    MetricValue::Gauge(v) => {
                        out.push_str(&format!("{}{} {}\n", family.name, labels, format_gauge(*v)));
                    }
                    MetricValue::Histogram(h) => {
                        let highest = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |b| b + 1);
                        let mut cumulative = 0u64;
                        for (b, &count) in h.buckets.iter().take(highest).enumerate() {
                            cumulative += count;
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                family.name,
                                with_le(&sample.labels, &bucket_upper_bound_us(b).to_string()),
                                cumulative,
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            family.name,
                            with_le(&sample.labels, "+Inf"),
                            h.count,
                        ));
                        out.push_str(&format!("{}_sum{} {}\n", family.name, labels, h.sum_us));
                        out.push_str(&format!("{}_count{} {}\n", family.name, labels, h.count));
                    }
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON object (`{"families": [...]}`), with
    /// histogram samples expanded via [`HistogramSnapshot::to_json`].
    pub fn render_json(&self) -> String {
        let families: Vec<String> = self
            .families
            .iter()
            .map(|family| {
                let samples: Vec<String> = family
                    .samples
                    .iter()
                    .map(|sample| {
                        let labels: Vec<String> = sample
                            .labels
                            .iter()
                            .map(|(k, v)| format!("\"{}\": \"{}\"", escape_json(k), escape_json(v)))
                            .collect();
                        let value = match &sample.value {
                            MetricValue::Counter(v) => v.to_string(),
                            MetricValue::Gauge(v) => format_gauge(*v),
                            MetricValue::Histogram(h) => h.to_json(),
                        };
                        format!(
                            "{{\"labels\": {{{}}}, \"value\": {}}}",
                            labels.join(", "),
                            value
                        )
                    })
                    .collect();
                format!(
                    "{{\"name\": \"{}\", \"help\": \"{}\", \"type\": \"{}\", \"samples\": [{}]}}",
                    escape_json(&family.name),
                    escape_json(&family.help),
                    family.kind(),
                    samples.join(", "),
                )
            })
            .collect();
        format!("{{\"families\": [{}]}}", families.join(", "))
    }

    /// The delta of this registry against an earlier one: counters and
    /// histograms are differenced by `(name, labels)` (saturating, so a
    /// restarted source clamps to 0 instead of underflowing); gauges and
    /// unmatched samples pass through unchanged. Histogram `max_us` cannot
    /// be differenced and keeps the current cumulative value.
    pub fn delta_since(&self, previous: &MetricsRegistry) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for family in &self.families {
            let prev_family = previous.families.iter().find(|f| f.name == family.name);
            let mut delta = MetricFamily {
                name: family.name.clone(),
                help: family.help.clone(),
                samples: Vec::new(),
            };
            for sample in &family.samples {
                let prev =
                    prev_family.and_then(|f| f.samples.iter().find(|s| s.labels == sample.labels));
                let value = match (&sample.value, prev.map(|s| &s.value)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        let mut h = HistogramSnapshot {
                            count: now.count.saturating_sub(then.count),
                            sum_us: now.sum_us.saturating_sub(then.sum_us),
                            max_us: now.max_us,
                            buckets: now.buckets.clone(),
                        };
                        for (b, bucket) in h.buckets.iter_mut().enumerate() {
                            *bucket =
                                bucket.saturating_sub(then.buckets.get(b).copied().unwrap_or(0));
                        }
                        MetricValue::Histogram(h)
                    }
                    (value, _) => value.clone(),
                };
                delta.samples.push(Sample {
                    labels: sample.labels.clone(),
                    value,
                });
            }
            out.families.push(delta);
        }
        out
    }
}

fn with_le(labels: &[(String, String)], le: &str) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_json(v)))
        .collect();
    parts.push(format!("le=\"{le}\""));
    format!("{{{}}}", parts.join(","))
}

/// A rotating delta window: feed it the current cumulative registry each
/// scrape and it returns the delta against the previous scrape (the first
/// rotation returns the cumulative registry itself).
#[derive(Debug, Default)]
pub struct DeltaWindow {
    previous: Option<MetricsRegistry>,
}

impl DeltaWindow {
    /// A window with no previous scrape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rotates the window: returns `current − previous` and stores
    /// `current` as the new baseline.
    pub fn rotate(&mut self, current: MetricsRegistry) -> MetricsRegistry {
        let delta = match &self.previous {
            Some(previous) => current.delta_since(previous),
            None => current.clone(),
        };
        self.previous = Some(current);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    fn counter_value(reg: &MetricsRegistry, name: &str) -> u64 {
        match reg
            .families()
            .iter()
            .find(|f| f.name == name)
            .and_then(|f| f.samples.first())
            .map(|s| &s.value)
        {
            Some(MetricValue::Counter(v)) => *v,
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn text_exposition_has_help_type_and_labels() {
        let mut reg = MetricsRegistry::new();
        reg.counter("vtm_quotes_total", "Quotes served.", &[("arm", "a")], 7);
        reg.counter("vtm_quotes_total", "Quotes served.", &[("arm", "b")], 3);
        reg.gauge("vtm_queue_depth", "In-flight requests.", &[], 2.0);
        let text = reg.render_text();
        assert!(text.contains("# HELP vtm_quotes_total Quotes served.\n"));
        assert!(text.contains("# TYPE vtm_quotes_total counter\n"));
        assert!(text.contains("vtm_quotes_total{arm=\"a\"} 7\n"));
        assert!(text.contains("vtm_quotes_total{arm=\"b\"} 3\n"));
        assert!(text.contains("# TYPE vtm_queue_depth gauge\n"));
        assert!(text.contains("vtm_queue_depth 2\n"));
    }

    #[test]
    fn histogram_exposition_is_cumulative_with_inf() {
        let h = LogHistogram::new();
        h.record(3); // bucket 1, le=4
        h.record(3);
        h.record(100); // bucket 6, le=128
        let mut reg = MetricsRegistry::new();
        reg.histogram("vtm_latency_us", "End-to-end latency.", &[], &h.snapshot());
        let text = reg.render_text();
        assert!(text.contains("# TYPE vtm_latency_us histogram\n"));
        assert!(text.contains("vtm_latency_us_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("vtm_latency_us_bucket{le=\"128\"} 3\n"));
        assert!(text.contains("vtm_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("vtm_latency_us_sum 106\n"));
        assert!(text.contains("vtm_latency_us_count 3\n"));
        // Buckets past the highest nonzero one are not emitted.
        assert!(!text.contains("le=\"256\""));
    }

    #[test]
    fn empty_histogram_and_nonfinite_gauge_never_leak_nan_or_inf() {
        let mut reg = MetricsRegistry::new();
        reg.histogram(
            "vtm_empty_us",
            "Never recorded.",
            &[],
            &HistogramSnapshot::empty(),
        );
        reg.gauge("vtm_bad_mean", "A 0/0 mean.", &[], f64::NAN);
        reg.gauge("vtm_bad_ratio", "A 1/0 ratio.", &[], f64::INFINITY);
        // The only "Inf" allowed anywhere is the +Inf bucket *label*; no
        // rendered *value* may be NaN or infinite.
        for rendered in [reg.render_text(), reg.render_json()] {
            assert!(!rendered.contains("NaN"), "{rendered}");
            assert!(!rendered.contains(" inf"), "{rendered}");
            assert!(!rendered.contains(": inf"), "{rendered}");
        }
        let text = reg.render_text();
        assert!(text.contains("vtm_empty_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("vtm_bad_mean 0\n"));
        assert!(text.contains("vtm_bad_ratio 0\n"));
    }

    #[test]
    fn json_exposition_parses_back() {
        let h = LogHistogram::new();
        h.record(10);
        let mut reg = MetricsRegistry::new();
        reg.counter("vtm_total", "Total.", &[("shard", "0")], 5);
        reg.histogram("vtm_lat_us", "Latency.", &[], &h.snapshot());
        let parsed = crate::json::JsonValue::parse(&reg.render_json()).expect("valid JSON");
        let families = parsed.get("families").and_then(|f| f.as_array()).unwrap();
        assert_eq!(families.len(), 2);
        assert_eq!(
            families[0].get("name").and_then(|n| n.as_str()),
            Some("vtm_total")
        );
        assert_eq!(
            families[1]
                .get("samples")
                .and_then(|s| s.as_array())
                .and_then(|s| s[0].get("value"))
                .and_then(|v| v.get("count"))
                .and_then(|c| c.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn delta_window_differences_counters_and_histograms() {
        let mut window = DeltaWindow::new();
        let mut first = MetricsRegistry::new();
        first.counter("vtm_total", "Total.", &[], 10);
        let h1 = LogHistogram::new();
        h1.record(8);
        first.histogram("vtm_lat_us", "Latency.", &[], &h1.snapshot());
        // First rotation passes the cumulative registry through.
        assert_eq!(counter_value(&window.rotate(first), "vtm_total"), 10);

        let mut second = MetricsRegistry::new();
        second.counter("vtm_total", "Total.", &[], 25);
        h1.record(8);
        h1.record(16);
        second.histogram("vtm_lat_us", "Latency.", &[], &h1.snapshot());
        let delta = window.rotate(second);
        assert_eq!(counter_value(&delta, "vtm_total"), 15);
        match &delta.families()[1].samples[0].value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum_us, 24);
                assert_eq!(h.buckets.iter().sum::<u64>(), 2);
            }
            other => panic!("expected histogram, got {other:?}"),
        }

        // A restarted (lower) counter clamps to 0 instead of underflowing.
        let mut third = MetricsRegistry::new();
        third.counter("vtm_total", "Total.", &[], 3);
        assert_eq!(counter_value(&window.rotate(third), "vtm_total"), 0);
    }

    #[test]
    fn delta_matches_samples_by_labels() {
        let mut a = MetricsRegistry::new();
        a.counter("vtm_total", "Total.", &[("arm", "a")], 4);
        a.counter("vtm_total", "Total.", &[("arm", "b")], 9);
        let mut b = MetricsRegistry::new();
        b.counter("vtm_total", "Total.", &[("arm", "b")], 12);
        b.counter("vtm_total", "Total.", &[("arm", "a")], 5);
        let delta = b.delta_since(&a);
        let family = &delta.families()[0];
        assert_eq!(family.samples[0].value, MetricValue::Counter(3)); // b: 12-9
        assert_eq!(family.samples[1].value, MetricValue::Counter(1)); // a: 5-4
    }
}
