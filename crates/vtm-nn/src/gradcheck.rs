//! Numerical gradient checking utilities.
//!
//! These helpers compare analytic gradients produced by the backward pass with
//! central finite differences of a scalar loss. They are used by the test
//! suites of downstream crates (e.g. to validate the PPO surrogate gradient)
//! and exported as part of the public API so that users extending the network
//! code can validate their own layers.

use crate::matrix::Matrix;
use crate::mlp::{Mlp, MlpGrads};

/// Report of a gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between numeric and analytic gradients.
    pub max_abs_error: f64,
    /// Largest relative difference, using `|a - n| / max(1, |a|, |n|)`.
    pub max_rel_error: f64,
    /// Number of parameters checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed under the given tolerance.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_error <= tol
    }
}

/// Numerically verifies `analytic` against the scalar loss `loss(net)` by
/// perturbing every parameter of `net` with a central difference of step `h`.
///
/// The closure must be a pure function of the network parameters (it is called
/// repeatedly on perturbed copies of `net`).
pub fn check_gradients<F>(net: &Mlp, analytic: &MlpGrads, loss: F, h: f64) -> GradCheckReport
where
    F: Fn(&Mlp) -> f64,
{
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut checked = 0usize;
    let mut work = net.clone();
    for layer_idx in 0..net.layers().len() {
        let fan_in = net.layers()[layer_idx].fan_in();
        let fan_out = net.layers()[layer_idx].fan_out();
        for r in 0..fan_in {
            for c in 0..fan_out {
                let orig = work.layers()[layer_idx].weights()[(r, c)];
                work.layers_mut()[layer_idx].weights_mut()[(r, c)] = orig + h;
                let up = loss(&work);
                work.layers_mut()[layer_idx].weights_mut()[(r, c)] = orig - h;
                let down = loss(&work);
                work.layers_mut()[layer_idx].weights_mut()[(r, c)] = orig;
                let numeric = (up - down) / (2.0 * h);
                let a = analytic.layers[layer_idx].weights[(r, c)];
                accumulate(&mut max_abs, &mut max_rel, numeric, a);
                checked += 1;
            }
        }
        for c in 0..fan_out {
            let orig = work.layers()[layer_idx].bias()[(0, c)];
            work.layers_mut()[layer_idx].bias_mut()[(0, c)] = orig + h;
            let up = loss(&work);
            work.layers_mut()[layer_idx].bias_mut()[(0, c)] = orig - h;
            let down = loss(&work);
            work.layers_mut()[layer_idx].bias_mut()[(0, c)] = orig;
            let numeric = (up - down) / (2.0 * h);
            let a = analytic.layers[layer_idx].bias[(0, c)];
            accumulate(&mut max_abs, &mut max_rel, numeric, a);
            checked += 1;
        }
    }
    GradCheckReport {
        max_abs_error: max_abs,
        max_rel_error: max_rel,
        checked,
    }
}

fn accumulate(max_abs: &mut f64, max_rel: &mut f64, numeric: f64, analytic: f64) {
    let abs = (numeric - analytic).abs();
    let rel = abs / numeric.abs().max(analytic.abs()).max(1.0);
    if abs > *max_abs {
        *max_abs = abs;
    }
    if rel > *max_rel {
        *max_rel = rel;
    }
}

/// Convenience helper: checks the gradient of the mean of the network output
/// over a fixed input batch. This exercises the full forward/backward path.
pub fn check_output_mean_gradient(net: &Mlp, input: &Matrix, h: f64) -> GradCheckReport {
    let (out, caches) = net
        .forward_train(input)
        .expect("gradient check input must match network input dim");
    let n = out.len().max(1) as f64;
    let grad_out = Matrix::filled(out.rows(), out.cols(), 1.0 / n);
    let (_, grads) = net
        .backward(&caches, &grad_out)
        .expect("backward pass failed during gradient check");
    check_gradients(
        net,
        &grads,
        |m| m.forward(input).expect("forward failed").mean(),
        h,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::MlpConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_output_gradient_check_passes() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = MlpConfig::new(5, &[16, 16], 3)
            .hidden_activation(Activation::Tanh)
            .build(&mut rng);
        let x = Matrix::from_rows(&[&[0.1, -0.3, 0.5, 0.7, -0.9], &[1.1, 0.2, -0.6, 0.0, 0.4]])
            .unwrap();
        let report = check_output_mean_gradient(&net, &x, 1e-6);
        assert!(report.checked > 0);
        assert!(report.passes(1e-5), "gradient check failed: {report:?}");
    }

    #[test]
    fn detects_wrong_gradients() {
        let mut rng = StdRng::seed_from_u64(43);
        let net = MlpConfig::new(2, &[4], 1).build(&mut rng);
        let x = Matrix::from_rows(&[&[0.5, -0.5]]).unwrap();
        // Deliberately wrong analytic gradients (all zeros won't match unless the
        // true gradient is identically zero, which Xavier init makes vanishingly
        // unlikely for this input).
        let wrong = MlpGrads::zeros_like(&net);
        let report = check_gradients(&net, &wrong, |m| m.forward(&x).unwrap().sum(), 1e-6);
        assert!(!report.passes(1e-5));
    }

    #[test]
    fn relu_networks_pass_with_looser_tolerance() {
        let mut rng = StdRng::seed_from_u64(44);
        let net = MlpConfig::new(3, &[8], 2)
            .hidden_activation(Activation::Relu)
            .build(&mut rng);
        let x = Matrix::from_rows(&[&[0.4, 0.9, -0.2]]).unwrap();
        let report = check_output_mean_gradient(&net, &x, 1e-6);
        // ReLU kinks can inflate the error if a pre-activation sits near zero;
        // with a fixed seed this configuration stays comfortably smooth.
        assert!(report.passes(1e-4), "{report:?}");
    }
}
