//! First-order gradient optimizers operating on [`Mlp`] parameters.

use crate::codec::{CodecError, PayloadReader, PayloadWriter};
use crate::matrix::Matrix;
use crate::mlp::{Mlp, MlpGrads};

/// An optimizer applies parameter updates to an [`Mlp`] given gradients of a
/// scalar loss. Updates follow the *descent* convention: the loss decreases
/// along `-gradient` (callers maximising an objective should negate gradients).
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `grads` does not match the network's
    /// parameter shapes (this indicates a programming error, not a data error).
    fn step(&mut self, net: &mut Mlp, grads: &MlpGrads);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f64);

    /// Resets any accumulated internal state (moments, step counters).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    learning_rate: f64,
    momentum: f64,
    velocity: Vec<(Matrix, Matrix)>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not finite and positive or `momentum` is
    /// outside `[0, 1)`.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn ensure_state(&mut self, net: &Mlp) {
        if self.velocity.len() != net.layers().len() {
            self.velocity = net
                .layers()
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.fan_in(), l.fan_out()),
                        Matrix::zeros(1, l.fan_out()),
                    )
                })
                .collect();
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp, grads: &MlpGrads) {
        self.ensure_state(net);
        for (idx, layer) in net.layers_mut().iter_mut().enumerate() {
            let g = &grads.layers[idx];
            let (vw, vb) = &mut self.velocity[idx];
            *vw = vw.scale(self.momentum);
            vw.axpy(1.0, &g.weights).expect("sgd weight shape mismatch");
            *vb = vb.scale(self.momentum);
            vb.axpy(1.0, &g.bias).expect("sgd bias shape mismatch");
            layer
                .weights_mut()
                .axpy(-self.learning_rate, vw)
                .expect("sgd weight shape mismatch");
            layer
                .bias_mut()
                .axpy(-self.learning_rate, vb)
                .expect("sgd bias shape mismatch");
        }
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.learning_rate = lr;
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam optimizer (Kingma & Ba, 2015), the optimizer used for the paper's PPO
/// actor-critic networks.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    step: u64,
    first_moment: Vec<(Matrix, Matrix)>,
    second_moment: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional defaults
    /// `beta1 = 0.9`, `beta2 = 0.999`, `epsilon = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not finite and positive.
    pub fn new(learning_rate: f64) -> Self {
        Self::with_betas(learning_rate, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if any hyper-parameter is outside its valid range.
    pub fn with_betas(learning_rate: f64, beta1: f64, beta2: f64, epsilon: f64) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1)");
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self {
            learning_rate,
            beta1,
            beta2,
            epsilon,
            step: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    fn ensure_state(&mut self, net: &Mlp) {
        if self.first_moment.len() != net.layers().len() {
            let zeros: Vec<(Matrix, Matrix)> = net
                .layers()
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.fan_in(), l.fan_out()),
                        Matrix::zeros(1, l.fan_out()),
                    )
                })
                .collect();
            self.first_moment = zeros.clone();
            self.second_moment = zeros;
            self.step = 0;
        }
    }

    /// Whether the optimizer's moment state is compatible with `net`: either
    /// still empty (lazily initialised on the first step) or matching every
    /// layer's parameter shapes exactly. Snapshot loaders use this to reject
    /// checkpoints whose optimizer state disagrees with their network,
    /// which would otherwise panic deep inside [`Adam::step`].
    pub fn state_matches(&self, net: &Mlp) -> bool {
        if self.first_moment.is_empty() && self.second_moment.is_empty() {
            return true;
        }
        let layers = net.layers();
        self.first_moment.len() == layers.len()
            && self.second_moment.len() == layers.len()
            && self
                .first_moment
                .iter()
                .zip(self.second_moment.iter())
                .zip(layers.iter())
                .all(|(((mw, mb), (vw, vb)), layer)| {
                    let w_shape = (layer.fan_in(), layer.fan_out());
                    let b_shape = (1, layer.fan_out());
                    mw.shape() == w_shape
                        && vw.shape() == w_shape
                        && mb.shape() == b_shape
                        && vb.shape() == b_shape
                })
    }

    /// Serializes the full optimizer state (hyper-parameters, step counter
    /// and both moment estimates) into a payload writer, so a resumed
    /// training run continues with bit-identical Adam updates.
    pub fn write_into(&self, w: &mut PayloadWriter) {
        w.write_f64(self.learning_rate);
        w.write_f64(self.beta1);
        w.write_f64(self.beta2);
        w.write_f64(self.epsilon);
        w.write_u64(self.step);
        w.write_usize(self.first_moment.len());
        for ((mw, mb), (vw, vb)) in self.first_moment.iter().zip(self.second_moment.iter()) {
            w.write_matrix(mw);
            w.write_matrix(mb);
            w.write_matrix(vw);
            w.write_matrix(vb);
        }
    }

    /// Deserializes an optimizer written by [`Adam::write_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the payload is truncated or the
    /// hyper-parameters are out of range.
    pub fn read_from(r: &mut PayloadReader<'_>) -> Result<Self, CodecError> {
        let learning_rate = r.read_f64()?;
        let beta1 = r.read_f64()?;
        let beta2 = r.read_f64()?;
        let epsilon = r.read_f64()?;
        let valid = learning_rate.is_finite()
            && learning_rate > 0.0
            && (0.0..1.0).contains(&beta1)
            && (0.0..1.0).contains(&beta2)
            && epsilon > 0.0;
        if !valid {
            return Err(CodecError::Invalid(
                "adam hyper-parameters out of range".to_string(),
            ));
        }
        let mut adam = Adam::with_betas(learning_rate, beta1, beta2, epsilon);
        adam.step = r.read_u64()?;
        let n = r.read_usize()?;
        for _ in 0..n {
            let mw = r.read_matrix()?;
            let mb = r.read_matrix()?;
            let vw = r.read_matrix()?;
            let vb = r.read_matrix()?;
            adam.first_moment.push((mw, mb));
            adam.second_moment.push((vw, vb));
        }
        Ok(adam)
    }

    #[allow(clippy::too_many_arguments)] // private kernel; all scalars are Adam state
    fn update_matrix(
        param: &mut Matrix,
        grad: &Matrix,
        m: &mut Matrix,
        v: &mut Matrix,
        lr: f64,
        beta1: f64,
        beta2: f64,
        eps: f64,
        bias1: f64,
        bias2: f64,
    ) {
        adam_step_slice(
            param.as_mut_slice(),
            grad.as_slice(),
            m.as_mut_slice(),
            v.as_mut_slice(),
            lr,
            beta1,
            beta2,
            eps,
            bias1,
            bias2,
        );
    }
}

/// The element-wise Adam update on raw slices, shared by [`Adam`] (matrix
/// parameters) and [`VectorAdam`] (plain `Vec<f64>` parameters such as a
/// policy's log-std) so the two stay numerically identical by construction.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[allow(clippy::too_many_arguments)] // all scalars are Adam state
pub fn adam_step_slice(
    params: &mut [f64],
    grads: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    bias1: f64,
    bias2: f64,
) {
    assert!(
        params.len() == grads.len() && params.len() == m.len() && params.len() == v.len(),
        "adam slice length mismatch"
    );
    for i in 0..params.len() {
        let g = grads[i];
        let mi = beta1 * m[i] + (1.0 - beta1) * g;
        let vi = beta2 * v[i] + (1.0 - beta2) * g * g;
        m[i] = mi;
        v[i] = vi;
        let m_hat = mi / bias1;
        let v_hat = vi / bias2;
        params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

/// Adam for a flat `f64` parameter vector (e.g. a Gaussian policy's
/// trainable log-std), sharing the element-wise kernel with [`Adam`].
///
/// Previously `vtm-rl` carried its own private copy of this optimizer next to
/// the PPO agent; it lives here so every crate uses one implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorAdam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    step: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl VectorAdam {
    /// Creates the optimizer for a `dim`-element parameter vector with the
    /// conventional defaults `beta1 = 0.9`, `beta2 = 0.999`, `epsilon = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not finite and positive.
    pub fn new(learning_rate: f64, dim: usize) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
        }
    }

    /// Applies one Adam step to `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the optimizer's dimension.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        self.step += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step as i32);
        adam_step_slice(
            params,
            grads,
            &mut self.m,
            &mut self.v,
            self.learning_rate,
            self.beta1,
            self.beta2,
            self.epsilon,
            bias1,
            bias2,
        );
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Overrides the learning rate (used by schedules).
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.learning_rate = lr;
    }

    /// Dimension of the parameter vector the optimizer was built for.
    pub fn dim(&self) -> usize {
        self.m.len()
    }

    /// Resets the accumulated moments and step counter.
    pub fn reset(&mut self) {
        self.m.fill(0.0);
        self.v.fill(0.0);
        self.step = 0;
    }

    /// Serializes the full optimizer state (hyper-parameters, step counter
    /// and both moment vectors) into a payload writer.
    pub fn write_into(&self, w: &mut PayloadWriter) {
        w.write_f64(self.learning_rate);
        w.write_f64(self.beta1);
        w.write_f64(self.beta2);
        w.write_f64(self.epsilon);
        w.write_u64(self.step);
        w.write_f64_vec(&self.m);
        w.write_f64_vec(&self.v);
    }

    /// Deserializes an optimizer written by [`VectorAdam::write_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the payload is truncated, the
    /// hyper-parameters are out of range or the moment vectors disagree in
    /// length.
    pub fn read_from(r: &mut PayloadReader<'_>) -> Result<Self, CodecError> {
        let learning_rate = r.read_f64()?;
        let beta1 = r.read_f64()?;
        let beta2 = r.read_f64()?;
        let epsilon = r.read_f64()?;
        let valid = learning_rate.is_finite()
            && learning_rate > 0.0
            && (0.0..1.0).contains(&beta1)
            && (0.0..1.0).contains(&beta2)
            && epsilon > 0.0;
        if !valid {
            return Err(CodecError::Invalid(
                "vector-adam hyper-parameters out of range".to_string(),
            ));
        }
        let step = r.read_u64()?;
        let m = r.read_f64_vec()?;
        let v = r.read_f64_vec()?;
        if m.len() != v.len() {
            return Err(CodecError::Invalid(
                "vector-adam moment vectors disagree in length".to_string(),
            ));
        }
        Ok(Self {
            learning_rate,
            beta1,
            beta2,
            epsilon,
            step,
            m,
            v,
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp, grads: &MlpGrads) {
        self.ensure_state(net);
        self.step += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step as i32);
        for (idx, layer) in net.layers_mut().iter_mut().enumerate() {
            let g = &grads.layers[idx];
            assert_eq!(
                g.weights.shape(),
                layer.weights().shape(),
                "adam gradient shape mismatch"
            );
            let (mw, mb) = &mut self.first_moment[idx];
            let (vw, vb) = &mut self.second_moment[idx];
            Self::update_matrix(
                layer.weights_mut(),
                &g.weights,
                mw,
                vw,
                self.learning_rate,
                self.beta1,
                self.beta2,
                self.epsilon,
                bias1,
                bias2,
            );
            Self::update_matrix(
                layer.bias_mut(),
                &g.bias,
                mb,
                vb,
                self.learning_rate,
                self.beta1,
                self.beta2,
                self.epsilon,
                bias1,
                bias2,
            );
        }
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.learning_rate = lr;
    }

    fn reset(&mut self) {
        self.first_moment.clear();
        self.second_moment.clear();
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::MlpConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains `net` to fit y = f(x) on a fixed batch and returns the final MSE.
    fn train_regression<O: Optimizer>(opt: &mut O, steps: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = MlpConfig::new(1, &[16], 1)
            .hidden_activation(Activation::Tanh)
            .build(&mut rng);
        let xs: Vec<f64> = (0..32).map(|i| -1.0 + 2.0 * i as f64 / 31.0).collect();
        let targets: Vec<f64> = xs.iter().map(|x| 0.5 * x + 0.2).collect();
        let x = Matrix::column_vector(&xs);
        let t = Matrix::column_vector(&targets);
        let mut last_mse = f64::INFINITY;
        for _ in 0..steps {
            let (y, caches) = net.forward_train(&x).unwrap();
            let diff = y.sub_elem(&t).unwrap();
            last_mse = diff.map(|d| d * d).mean();
            // dMSE/dy = 2 (y - t) / n
            let grad = diff.scale(2.0 / xs.len() as f64);
            let (_, grads) = net.backward(&caches, &grad).unwrap();
            opt.step(&mut net, &grads);
        }
        last_mse
    }

    #[test]
    fn sgd_reduces_regression_loss() {
        let mut opt = Sgd::new(0.1, 0.9);
        let mse = train_regression(&mut opt, 300, 1);
        assert!(mse < 1e-3, "sgd failed to fit linear target, mse = {mse}");
    }

    #[test]
    fn adam_reduces_regression_loss() {
        let mut opt = Adam::new(0.01);
        let mse = train_regression(&mut opt, 300, 2);
        assert!(mse < 1e-3, "adam failed to fit linear target, mse = {mse}");
    }

    #[test]
    fn adam_state_resets() {
        let mut opt = Adam::new(0.01);
        let _ = train_regression(&mut opt, 5, 3);
        opt.reset();
        assert_eq!(opt.first_moment.len(), 0);
        assert_eq!(opt.step, 0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        let mut sgd = Sgd::new(0.5, 0.0);
        sgd.set_learning_rate(0.25);
        assert_eq!(sgd.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn adam_rejects_nonpositive_lr() {
        let _ = Adam::new(0.0);
    }

    #[test]
    fn vector_adam_matches_matrix_adam_on_same_problem() {
        // A 1x1-weight, zero-bias "network" updated by Adam must evolve
        // exactly like a 1-element vector updated by VectorAdam with the
        // same gradients — they share the slice kernel.
        let w0 = 0.7;
        let layer = crate::layer::Dense::from_parameters(
            Matrix::filled(1, 1, w0),
            Matrix::zeros(1, 1),
            Activation::Linear,
        )
        .unwrap();
        let mut net = crate::mlp::Mlp::from_layers(vec![layer]).unwrap();
        let mut adam = Adam::new(0.05);
        let mut vadam = VectorAdam::new(0.05, 1);
        let mut params = [w0];
        for step in 0..25 {
            let g = 0.3 * (step as f64 + 1.0).sin();
            let grads = crate::mlp::MlpGrads {
                layers: vec![crate::layer::DenseGrads {
                    weights: Matrix::filled(1, 1, g),
                    bias: Matrix::zeros(1, 1),
                }],
            };
            adam.step(&mut net, &grads);
            vadam.step(&mut params, &[g]);
            assert_eq!(net.layers()[0].weights()[(0, 0)], params[0], "step {step}");
        }
        // Reset clears the moments.
        vadam.reset();
        let before = params[0];
        vadam.step(&mut params, &[0.0]);
        assert_eq!(params[0], before);
    }

    #[test]
    fn vector_adam_accessors_and_descent() {
        let mut opt = VectorAdam::new(0.1, 2);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.05);
        assert_eq!(opt.learning_rate(), 0.05);
        // Constant gradient: parameters must move against it.
        let mut params = [1.0, -1.0];
        for _ in 0..50 {
            opt.step(&mut params, &[1.0, -1.0]);
        }
        assert!(params[0] < 1.0);
        assert!(params[1] > -1.0);
    }

    #[test]
    #[should_panic(expected = "adam slice length mismatch")]
    fn vector_adam_rejects_wrong_dim() {
        let mut opt = VectorAdam::new(0.1, 2);
        let mut params = [0.0];
        opt.step(&mut params, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0,1)")]
    fn sgd_rejects_bad_momentum() {
        let _ = Sgd::new(0.1, 1.5);
    }

    #[test]
    fn adam_state_round_trips_and_resumes_bit_identically() {
        // Train a few steps, serialize, deserialize, and check further steps
        // of the restored optimizer match the original exactly.
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = MlpConfig::new(2, &[4], 1).build(&mut rng);
        let mut opt = Adam::new(0.01);
        let grads = {
            let x = Matrix::from_rows(&[&[0.5, -0.5]]).unwrap();
            let (y, caches) = net.forward_train(&x).unwrap();
            let (_, g) = net.backward(&caches, &y).unwrap();
            g
        };
        for _ in 0..5 {
            opt.step(&mut net, &grads);
        }
        let mut w = PayloadWriter::new();
        opt.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Adam::read_from(&mut PayloadReader::new(&bytes)).unwrap();
        assert_eq!(opt, restored);
        let mut net_restored = net.clone();
        opt.step(&mut net, &grads);
        restored.step(&mut net_restored, &grads);
        assert_eq!(net, net_restored);

        // Truncated state is a typed error.
        assert!(matches!(
            Adam::read_from(&mut PayloadReader::new(&bytes[..10])),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn vector_adam_state_round_trips() {
        let mut opt = VectorAdam::new(0.05, 3);
        let mut params = [0.1, -0.2, 0.3];
        for _ in 0..4 {
            opt.step(&mut params, &[0.5, -0.1, 0.2]);
        }
        let mut w = PayloadWriter::new();
        opt.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut restored = VectorAdam::read_from(&mut PayloadReader::new(&bytes)).unwrap();
        assert_eq!(opt, restored);
        let mut params_restored = params;
        opt.step(&mut params, &[0.5, -0.1, 0.2]);
        restored.step(&mut params_restored, &[0.5, -0.1, 0.2]);
        assert_eq!(params, params_restored);
    }
}
