//! Multi-layer perceptron built from [`Dense`] layers.

use std::path::Path;

use rand::Rng;

use crate::activation::Activation;
use crate::codec::{CodecError, PayloadReader, PayloadWriter, WeightCodec, KIND_MLP};
use crate::init::Initializer;
use crate::layer::{Dense, DenseCache, DenseGrads};
use crate::matrix::{Matrix, ShapeError};

/// Configuration for building an [`Mlp`].
///
/// # Examples
///
/// ```
/// use vtm_nn::mlp::MlpConfig;
/// use vtm_nn::activation::Activation;
///
/// let cfg = MlpConfig::new(8, &[64, 64], 1)
///     .hidden_activation(Activation::Tanh)
///     .output_activation(Activation::Linear);
/// assert_eq!(cfg.layer_sizes(), vec![8, 64, 64, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    input_dim: usize,
    hidden_dims: Vec<usize>,
    output_dim: usize,
    hidden_activation: Activation,
    output_activation: Activation,
    hidden_initializer: Initializer,
    output_initializer: Initializer,
}

impl MlpConfig {
    /// Creates a configuration with tanh hidden layers and a linear output layer,
    /// which is the architecture the paper uses (two hidden layers of 64 units).
    pub fn new(input_dim: usize, hidden_dims: &[usize], output_dim: usize) -> Self {
        Self {
            input_dim,
            hidden_dims: hidden_dims.to_vec(),
            output_dim,
            hidden_activation: Activation::Tanh,
            output_activation: Activation::Linear,
            hidden_initializer: Initializer::XavierUniform,
            output_initializer: Initializer::ScaledXavier { gain: 0.01 },
        }
    }

    /// Sets the activation used by every hidden layer.
    pub fn hidden_activation(mut self, activation: Activation) -> Self {
        self.hidden_activation = activation;
        self
    }

    /// Sets the activation used by the output layer.
    pub fn output_activation(mut self, activation: Activation) -> Self {
        self.output_activation = activation;
        self
    }

    /// Sets the initializer used by hidden layers.
    pub fn hidden_initializer(mut self, init: Initializer) -> Self {
        self.hidden_initializer = init;
        self
    }

    /// Sets the initializer used by the output layer.
    pub fn output_initializer(mut self, init: Initializer) -> Self {
        self.output_initializer = init;
        self
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// All layer sizes from input to output.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.hidden_dims.len() + 2);
        sizes.push(self.input_dim);
        sizes.extend_from_slice(&self.hidden_dims);
        sizes.push(self.output_dim);
        sizes
    }

    /// Builds the network, sampling weights from `rng`.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Mlp {
        let sizes = self.layer_sizes();
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let last = i == sizes.len() - 2;
            let activation = if last {
                self.output_activation
            } else {
                self.hidden_activation
            };
            let init = if last {
                self.output_initializer
            } else {
                self.hidden_initializer
            };
            layers.push(Dense::new(sizes[i], sizes[i + 1], activation, init, rng));
        }
        Mlp { layers }
    }
}

/// Gradients for every layer of an [`Mlp`], ordered from input layer to output layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MlpGrads {
    /// Per-layer parameter gradients.
    pub layers: Vec<DenseGrads>,
}

impl MlpGrads {
    /// A zero gradient matching `net`'s parameter shapes.
    pub fn zeros_like(net: &Mlp) -> Self {
        Self {
            layers: net.layers.iter().map(DenseGrads::zeros_like).collect(),
        }
    }

    /// An empty gradient container, ready to be sized by
    /// [`MlpGrads::ensure_like`] (used for reusable scratch).
    pub fn empty() -> Self {
        Self { layers: Vec::new() }
    }

    /// Resizes the per-layer buffers to match `net`'s parameter shapes,
    /// reusing existing allocations. Contents are unspecified afterwards
    /// ([`Mlp::backward_ws`] overwrites them completely).
    pub fn ensure_like(&mut self, net: &Mlp) {
        self.layers.resize_with(net.layers.len(), || DenseGrads {
            weights: Matrix::zeros(0, 0),
            bias: Matrix::zeros(0, 0),
        });
        for (g, layer) in self.layers.iter_mut().zip(net.layers.iter()) {
            g.ensure_like(layer);
        }
    }

    /// Accumulates `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the layer shapes differ.
    pub fn accumulate(&mut self, other: &MlpGrads) -> Result<(), ShapeError> {
        for (a, b) in self.layers.iter_mut().zip(other.layers.iter()) {
            a.accumulate(b)?;
        }
        Ok(())
    }

    /// Scales every gradient in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for g in &mut self.layers {
            g.scale_inplace(s);
        }
    }

    /// Global L2 norm across all layers.
    pub fn global_norm(&self) -> f64 {
        self.layers
            .iter()
            .map(|g| g.norm().powi(2))
            .sum::<f64>()
            .sqrt()
    }

    /// Clips the global norm to `max_norm`, returning the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale_inplace(max_norm / norm);
        }
        norm
    }
}

/// Reusable per-network training buffers for the allocation-free
/// [`Mlp::forward_train_ws`] / [`Mlp::backward_ws`] path.
///
/// The workspace owns one pre-activation and one activation matrix per layer
/// (replacing the per-call [`DenseCache`] clones of
/// [`Mlp::forward_train`], which also cloned the layer input) plus the
/// backward-pass scratch. All buffers are resized in place, so after the
/// first use at a given batch size no call allocates.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
/// use vtm_nn::matrix::Matrix;
/// use vtm_nn::mlp::{MlpConfig, MlpGrads, TrainWorkspace};
///
/// let net = MlpConfig::new(3, &[8], 2).build(&mut StdRng::seed_from_u64(0));
/// let x = Matrix::zeros(4, 3);
/// let mut ws = TrainWorkspace::new();
/// let mut grads = MlpGrads::empty();
/// let out = net.forward_train_ws(&x, &mut ws).unwrap().clone();
/// net.backward_ws(&x, &mut ws, &out, &mut grads).unwrap();
/// assert_eq!(grads.layers.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainWorkspace {
    /// Per-layer pre-activations `z = x W + b` (`batch x fan_out`).
    pre: Vec<Matrix>,
    /// Per-layer activated outputs (`batch x fan_out`).
    act: Vec<Matrix>,
    /// Per-layer `dL/dz` scratch for the backward pass.
    grad_pre: Vec<Matrix>,
    /// Per-layer `dL/d(input of layer)` scratch for the backward pass.
    grad_act: Vec<Matrix>,
    /// Batch size of the last forward pass (guards backward consistency).
    batch: usize,
}

impl TrainWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The activated output of the last [`Mlp::forward_train_ws`] call.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has populated the workspace yet.
    pub fn output(&self) -> &Matrix {
        self.act
            .last()
            .expect("workspace not populated by a forward pass")
    }

    fn ensure(&mut self, net: &Mlp) {
        let n = net.layers.len();
        self.pre.resize_with(n, || Matrix::zeros(0, 0));
        self.act.resize_with(n, || Matrix::zeros(0, 0));
        self.grad_pre.resize_with(n, || Matrix::zeros(0, 0));
        self.grad_act.resize_with(n, || Matrix::zeros(0, 0));
    }
}

/// A feed-forward network of [`Dense`] layers operating on batches of row vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP directly from layers.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if consecutive layers have mismatched widths.
    pub fn from_layers(layers: Vec<Dense>) -> Result<Self, ShapeError> {
        for pair in layers.windows(2) {
            if pair[0].fan_out() != pair[1].fan_in() {
                return Err(ShapeError {
                    op: "mlp_from_layers",
                    lhs: (pair[0].fan_in(), pair[0].fan_out()),
                    rhs: (pair[1].fan_in(), pair[1].fan_out()),
                });
            }
        }
        Ok(Self { layers })
    }

    /// The layers of the network, input to output.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layers (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Input dimensionality (0 if the network has no layers).
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, Dense::fan_in)
    }

    /// Output dimensionality (0 if the network has no layers).
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, Dense::fan_out)
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Dense::parameter_count).sum()
    }

    /// Forward pass for inference.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the input width does not match [`Mlp::input_dim`].
    pub fn forward(&self, input: &Matrix) -> Result<Matrix, ShapeError> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Convenience forward pass for a single observation vector; returns the output row.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the slice length does not match [`Mlp::input_dim`].
    pub fn forward_vec(&self, input: &[f64]) -> Result<Vec<f64>, ShapeError> {
        let out = self.forward(&Matrix::row_vector(input))?;
        Ok(out.into_vec())
    }

    /// Batch inference over a set of observation rows in one forward pass.
    ///
    /// Stacks `rows` into a single matrix and runs [`Mlp::forward`] once, so a
    /// batch of `B` observations costs one matrix product per layer instead of
    /// `B` row-vector products. Because every output row of a matrix product
    /// is accumulated independently and in the same order as the row-vector
    /// path, the result is bit-identical to calling [`Mlp::forward_vec`] on
    /// each row — the vectorized rollout collector in `vtm-rl` relies on this
    /// for serial/parallel determinism.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when rows are ragged or their width does not
    /// match [`Mlp::input_dim`].
    pub fn forward_rows(&self, rows: &[&[f64]]) -> Result<Matrix, ShapeError> {
        self.forward(&Matrix::from_rows(rows)?)
    }

    /// Forward pass that caches intermediate values for [`Mlp::backward`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the input width does not match [`Mlp::input_dim`].
    pub fn forward_train(&self, input: &Matrix) -> Result<(Matrix, Vec<DenseCache>), ShapeError> {
        let mut x = input.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, cache) = layer.forward_train(&x)?;
            caches.push(cache);
            x = out;
        }
        Ok((x, caches))
    }

    /// Allocation-free training forward pass using a reusable workspace.
    ///
    /// Equivalent to [`Mlp::forward_train`] — results are bit-identical — but
    /// caches pre-activations and activations in `ws`'s buffers instead of
    /// allocating a fresh [`DenseCache`] (with its input clone) per layer.
    /// Returns the network output, which lives inside `ws` until the next
    /// forward pass. The caller must keep `input` alive and unchanged until
    /// the matching [`Mlp::backward_ws`] call.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the input width does not match
    /// [`Mlp::input_dim`].
    ///
    /// # Panics
    ///
    /// Panics if the network has no layers.
    pub fn forward_train_ws<'w>(
        &self,
        input: &Matrix,
        ws: &'w mut TrainWorkspace,
    ) -> Result<&'w Matrix, ShapeError> {
        assert!(!self.layers.is_empty(), "network must have layers");
        ws.ensure(self);
        ws.batch = input.rows();
        for (idx, layer) in self.layers.iter().enumerate() {
            if idx == 0 {
                layer.affine_into(input, &mut ws.pre[0], &mut ws.act[0])?;
            } else {
                let (before, after) = ws.act.split_at_mut(idx);
                layer.affine_into(&before[idx - 1], &mut ws.pre[idx], &mut after[0])?;
            }
        }
        Ok(ws.output())
    }

    /// Allocation-free backward pass over the caches of the last
    /// [`Mlp::forward_train_ws`] call.
    ///
    /// `input` must be the same matrix that was passed to the forward call and
    /// `grad_output` the loss gradient with respect to the network output.
    /// `grads` is fully overwritten (resized in place on first use). Unlike
    /// [`Mlp::backward`], the gradient with respect to the network *input* is
    /// not computed — PPO's update never consumes it, and skipping it saves
    /// one `batch x input_dim` product per step. Parameter gradients are
    /// bit-identical to [`Mlp::backward`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when shapes are inconsistent with the cached
    /// forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the workspace was not populated by a forward pass over a
    /// batch of the same size.
    pub fn backward_ws(
        &self,
        input: &Matrix,
        ws: &mut TrainWorkspace,
        grad_output: &Matrix,
        grads: &mut MlpGrads,
    ) -> Result<(), ShapeError> {
        assert_eq!(
            ws.act.len(),
            self.layers.len(),
            "workspace must be populated by a forward pass over this network"
        );
        assert_eq!(
            ws.batch,
            input.rows(),
            "workspace batch does not match the input batch"
        );
        grads.ensure_like(self);
        let last = self.layers.len() - 1;
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            // Upstream gradient: the caller's for the last layer, otherwise
            // the input-gradient the layer above just wrote. Split borrows so
            // grad_act[idx + 1] can be read while grad_act[idx] is written.
            let (ga_head, ga_tail) = ws.grad_act.split_at_mut(idx + 1);
            let upstream = if idx == last {
                grad_output
            } else {
                &ga_tail[0]
            };
            let layer_input = if idx == 0 { input } else { &ws.act[idx - 1] };
            // Layer 0's input gradient is never used: skip the product.
            let grad_input = if idx == 0 {
                None
            } else {
                Some(&mut ga_head[idx])
            };
            layer.backward_into(
                layer_input,
                &ws.pre[idx],
                &ws.act[idx],
                upstream,
                &mut ws.grad_pre[idx],
                &mut grads.layers[idx],
                grad_input,
            )?;
        }
        Ok(())
    }

    /// Serializes the network into a payload writer (layer count, then
    /// per-layer activation tag, weights and bias). Used both by
    /// [`Mlp::save_to`] and by composite checkpoint formats (policy
    /// snapshots) that embed several networks in one file.
    pub fn write_into(&self, w: &mut PayloadWriter) {
        w.write_usize(self.layers.len());
        for layer in &self.layers {
            w.write_u64(u64::from(layer.activation().tag()));
            w.write_matrix(layer.weights());
            w.write_matrix(layer.bias());
        }
    }

    /// Deserializes a network written by [`Mlp::write_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the payload is truncated, an activation
    /// tag is unknown, or the decoded layer shapes are inconsistent.
    pub fn read_from(r: &mut PayloadReader<'_>) -> Result<Self, CodecError> {
        let n = r.read_usize()?;
        let mut layers = Vec::with_capacity(n.min(1024));
        for i in 0..n {
            let tag = r.read_u64()?;
            let activation = u8::try_from(tag)
                .ok()
                .and_then(Activation::from_tag)
                .ok_or_else(|| {
                    CodecError::Invalid(format!("layer {i}: unknown activation tag {tag}"))
                })?;
            let weights = r.read_matrix()?;
            let bias = r.read_matrix()?;
            let layer = Dense::from_parameters(weights, bias, activation)
                .map_err(|e| CodecError::Invalid(format!("layer {i}: {e}")))?;
            layers.push(layer);
        }
        Mlp::from_layers(layers).map_err(|e| CodecError::Invalid(format!("layer widths: {e}")))
    }

    /// Saves the network to `path` in the versioned binary weight format
    /// (see [`crate::codec`]). The file round-trips bit-exactly:
    /// [`Mlp::load_from`] reproduces a network whose outputs are
    /// indistinguishable from this one's.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError::Io`] when the file cannot be written.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), CodecError> {
        let mut w = PayloadWriter::new();
        self.write_into(&mut w);
        WeightCodec::write_file(path.as_ref(), KIND_MLP, w.as_bytes())
    }

    /// Loads a network written by [`Mlp::save_to`].
    ///
    /// # Errors
    ///
    /// Returns the matching typed [`CodecError`] for i/o failures, bad magic,
    /// unsupported versions, checksum mismatches, truncation and structurally
    /// invalid payloads — never panics on corrupt input.
    pub fn load_from(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        let payload = WeightCodec::read_file(path.as_ref(), KIND_MLP)?;
        let mut r = PayloadReader::new(&payload);
        let net = Self::read_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after the network",
                r.remaining()
            )));
        }
        Ok(net)
    }

    /// Backward pass through the whole network.
    ///
    /// `grad_output` is the gradient of the scalar loss with respect to the
    /// network output. Returns the gradient with respect to the network input
    /// together with per-layer parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when shapes are inconsistent with the caches.
    pub fn backward(
        &self,
        caches: &[DenseCache],
        grad_output: &Matrix,
    ) -> Result<(Matrix, MlpGrads), ShapeError> {
        assert_eq!(
            caches.len(),
            self.layers.len(),
            "cache count must match layer count"
        );
        let mut grad = grad_output.clone();
        let mut layer_grads = vec![None; self.layers.len()];
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            let (grad_input, grads) = layer.backward(&caches[idx], &grad)?;
            layer_grads[idx] = Some(grads);
            grad = grad_input;
        }
        Ok((
            grad,
            MlpGrads {
                layers: layer_grads.into_iter().map(Option::unwrap).collect(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Mlp {
        MlpConfig::new(3, &[8, 8], 2).build(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn config_layer_sizes() {
        let cfg = MlpConfig::new(4, &[16, 32], 1);
        assert_eq!(cfg.layer_sizes(), vec![4, 16, 32, 1]);
        assert_eq!(cfg.input_dim(), 4);
        assert_eq!(cfg.output_dim(), 1);
    }

    #[test]
    fn build_produces_expected_dims() {
        let n = net(0);
        assert_eq!(n.input_dim(), 3);
        assert_eq!(n.output_dim(), 2);
        assert_eq!(n.layers().len(), 3);
        assert_eq!(n.parameter_count(), 3 * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn forward_shapes() {
        let n = net(1);
        let x = Matrix::zeros(5, 3);
        let y = n.forward(&x).unwrap();
        assert_eq!(y.shape(), (5, 2));
        let v = n.forward_vec(&[0.1, 0.2, 0.3]).unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn forward_rejects_bad_width() {
        let n = net(2);
        assert!(n.forward(&Matrix::zeros(1, 4)).is_err());
    }

    #[test]
    fn from_layers_rejects_mismatched_widths() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Dense::new(3, 4, Activation::Tanh, Initializer::XavierUniform, &mut rng);
        let b = Dense::new(
            5,
            2,
            Activation::Linear,
            Initializer::XavierUniform,
            &mut rng,
        );
        assert!(Mlp::from_layers(vec![a, b]).is_err());
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut n = net(4);
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.9], &[-1.1, 0.3, 0.7]]).unwrap();
        let loss = |n: &Mlp, x: &Matrix| {
            // Loss = sum of squares of outputs / 2.
            let y = n.forward(x).unwrap();
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f64>()
        };
        let (y, caches) = n.forward_train(&x).unwrap();
        // dL/dy = y for this loss.
        let (_, grads) = n.backward(&caches, &y).unwrap();

        let h = 1e-6;
        for layer_idx in 0..n.layers().len() {
            for r in 0..n.layers()[layer_idx].fan_in() {
                for c in 0..n.layers()[layer_idx].fan_out() {
                    let orig = n.layers()[layer_idx].weights()[(r, c)];
                    n.layers_mut()[layer_idx].weights_mut()[(r, c)] = orig + h;
                    let up = loss(&n, &x);
                    n.layers_mut()[layer_idx].weights_mut()[(r, c)] = orig - h;
                    let down = loss(&n, &x);
                    n.layers_mut()[layer_idx].weights_mut()[(r, c)] = orig;
                    let numeric = (up - down) / (2.0 * h);
                    let analytic = grads.layers[layer_idx].weights[(r, c)];
                    assert!(
                        (numeric - analytic).abs() < 1e-4,
                        "layer {layer_idx} dW({r},{c}): numeric {numeric} analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn workspace_forward_matches_forward_train_bitwise() {
        let n = net(9);
        let x =
            Matrix::from_rows(&[&[0.4, -0.2, 0.9], &[-1.1, 0.3, 0.7], &[0.0, 0.0, 0.0]]).unwrap();
        let (y_ref, caches) = n.forward_train(&x).unwrap();
        let mut ws = TrainWorkspace::new();
        let y = n.forward_train_ws(&x, &mut ws).unwrap();
        assert_eq!(*y, y_ref);
        // Cached pre-activations match the allocating caches bit for bit.
        for (idx, cache) in caches.iter().enumerate() {
            assert_eq!(ws.pre[idx], cache.pre_activation);
        }
        // A second pass reuses the buffers and still agrees.
        let y2 = n.forward_train_ws(&x, &mut ws).unwrap().clone();
        assert_eq!(y2, y_ref);
    }

    #[test]
    fn workspace_backward_matches_backward_bitwise() {
        let n = net(10);
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.9], &[-1.1, 0.3, 0.7]]).unwrap();
        let (y, caches) = n.forward_train(&x).unwrap();
        let (_, grads_ref) = n.backward(&caches, &y).unwrap();

        let mut ws = TrainWorkspace::new();
        let mut grads = MlpGrads::empty();
        let grad_out = n.forward_train_ws(&x, &mut ws).unwrap().clone();
        n.backward_ws(&x, &mut ws, &grad_out, &mut grads).unwrap();
        assert_eq!(grads.layers.len(), grads_ref.layers.len());
        for (a, b) in grads.layers.iter().zip(grads_ref.layers.iter()) {
            assert_eq!(a.weights, b.weights);
            assert_eq!(a.bias, b.bias);
        }
        // Reused grads scratch across batch-size changes stays correct.
        let x2 = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let (y2, caches2) = n.forward_train(&x2).unwrap();
        let (_, grads_ref2) = n.backward(&caches2, &y2).unwrap();
        let grad_out2 = n.forward_train_ws(&x2, &mut ws).unwrap().clone();
        n.backward_ws(&x2, &mut ws, &grad_out2, &mut grads).unwrap();
        for (a, b) in grads.layers.iter().zip(grads_ref2.layers.iter()) {
            assert_eq!(a.weights, b.weights);
            assert_eq!(a.bias, b.bias);
        }
    }

    #[test]
    fn workspace_backward_matches_numerical_gradient() {
        use crate::gradcheck::check_gradients;
        let n = net(11);
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.9], &[-1.1, 0.3, 0.7]]).unwrap();
        // Loss = 0.5 * sum(y^2), so dL/dy = y.
        let mut ws = TrainWorkspace::new();
        let mut grads = MlpGrads::empty();
        let grad_out = n.forward_train_ws(&x, &mut ws).unwrap().clone();
        n.backward_ws(&x, &mut ws, &grad_out, &mut grads).unwrap();
        let report = check_gradients(
            &n,
            &grads,
            |net| {
                0.5 * net
                    .forward(&x)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>()
            },
            1e-6,
        );
        assert!(
            report.passes(1e-4),
            "fused-path gradcheck failed: max rel error {}",
            report.max_rel_error
        );
        assert_eq!(report.checked, n.parameter_count());
    }

    #[test]
    #[should_panic(expected = "workspace batch")]
    fn workspace_backward_rejects_stale_batch() {
        let n = net(12);
        let x = Matrix::zeros(3, 3);
        let mut ws = TrainWorkspace::new();
        let _ = n.forward_train_ws(&x, &mut ws).unwrap();
        let wrong = Matrix::zeros(2, 3);
        let grad = Matrix::zeros(2, 2);
        let mut grads = MlpGrads::empty();
        let _ = n.backward_ws(&wrong, &mut ws, &grad, &mut grads);
    }

    #[test]
    fn grads_zero_accumulate_clip() {
        let n = net(5);
        let mut g = MlpGrads::zeros_like(&n);
        assert_eq!(g.global_norm(), 0.0);
        let mut g2 = MlpGrads::zeros_like(&n);
        for layer in &mut g2.layers {
            layer.weights.map_inplace(|_| 1.0);
        }
        g.accumulate(&g2).unwrap();
        let norm_before = g.global_norm();
        assert!(norm_before > 1.0);
        let returned = g.clip_global_norm(1.0);
        assert!((returned - norm_before).abs() < 1e-12);
        assert!((g.global_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batched_inference_matches_per_sample() {
        let n = net(7);
        let mut rng = StdRng::seed_from_u64(99);
        let rows_data: Vec<Vec<f64>> = (0..17)
            .map(|_| (0..3).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect();
        let rows: Vec<&[f64]> = rows_data.iter().map(Vec::as_slice).collect();
        let batched = n.forward_rows(&rows).unwrap();
        assert_eq!(batched.shape(), (17, 2));
        for (i, row) in rows.iter().enumerate() {
            let single = n.forward_vec(row).unwrap();
            for (a, b) in batched.row(i).iter().zip(single.iter()) {
                assert!(
                    (a - b).abs() <= 1e-12,
                    "batched row {i} diverges: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn forward_rows_rejects_ragged_input() {
        let n = net(8);
        assert!(n.forward_rows(&[&[0.0, 0.0, 0.0], &[0.0]]).is_err());
        assert!(n.forward_rows(&[&[0.0, 0.0]]).is_err());
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let n = net(13);
        let path = std::env::temp_dir().join(format!("vtm_mlp_{}.vtm", std::process::id()));
        n.save_to(&path).unwrap();
        let back = Mlp::load_from(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(n, back);
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.9]]).unwrap();
        let a = n.forward(&x).unwrap();
        let b = back.forward(&x).unwrap();
        for (p, q) in a.as_slice().iter().zip(b.as_slice().iter()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn corrupt_network_files_fail_with_typed_errors() {
        use crate::codec::CodecError;
        let n = net(14);
        let path = std::env::temp_dir().join(format!("vtm_mlp_corrupt_{}.vtm", std::process::id()));
        n.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte: checksum mismatch, not a panic.
        bytes[40] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Mlp::load_from(&path),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        // Truncate mid-payload.
        bytes[40] ^= 0xFF;
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Mlp::load_from(&path),
            Err(CodecError::Truncated { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clone_preserves_outputs() {
        let n = net(6);
        let back = n.clone();
        let x = Matrix::from_rows(&[&[0.5, 0.5, 0.5]]).unwrap();
        assert!(n
            .forward(&x)
            .unwrap()
            .approx_eq(&back.forward(&x).unwrap(), 1e-15));
    }
}
