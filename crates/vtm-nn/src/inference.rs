//! Frozen-serving f32 inference path.
//!
//! Training in this workspace is strictly `f64` — the PPO update, journal
//! replay and state-digest guarantees are all pinned at double precision.
//! A *frozen* policy has no such constraint: once weights stop changing,
//! the serving forward pass may trade precision for throughput as long as
//! greedy pricing decisions are unaffected (see `docs/NUMERICS.md` for the
//! full contract).
//!
//! [`InferenceModel`] is that trade: an [`Mlp`] converted
//! once, at snapshot-load time, into per-layer contiguous f32 blocks
//! (structure-of-arrays: one weight slab and one bias slab per layer) and
//! evaluated by a fused affine+activation kernel that register-blocks four
//! batch rows per pass. The f32 element type halves memory traffic on the
//! dominant 64×64 layers and doubles the useful SIMD lane width, which is
//! where the serving speedup comes from — the kernel shape itself mirrors
//! the f64 [`matmul_into`](crate::matrix::Matrix::matmul_into) exemplar.
//!
//! Like the f64 kernels, every output element accumulates its `fan_in`
//! terms in increasing order starting from the bias, regardless of batch
//! size or of where the row sits inside a block. Quoting a session alone
//! therefore produces bit-identical f32 results to quoting it inside any
//! batch — the same batch-slicing invariance the serving determinism tests
//! pin for the f64 path.

use crate::activation::Activation;
use crate::layer::Dense;
use crate::matrix::ShapeError;
use crate::mlp::Mlp;

/// One dense layer frozen into contiguous f32 parameter blocks.
///
/// Weights are row-major `fan_in × fan_out` (same orientation as the f64
/// [`Dense`] layer): row `k` holds the `fan_out` outgoing weights of input
/// feature `k`, so the kernel streams whole weight rows with unit stride.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceLayer {
    weights: Vec<f32>,
    bias: Vec<f32>,
    fan_in: usize,
    fan_out: usize,
    activation: Activation,
}

impl InferenceLayer {
    /// Converts a trained f64 layer by rounding every parameter to the
    /// nearest f32.
    pub fn from_dense(layer: &Dense) -> Self {
        Self {
            weights: layer
                .weights()
                .as_slice()
                .iter()
                .map(|&w| w as f32)
                .collect(),
            bias: layer.bias().as_slice().iter().map(|&b| b as f32).collect(),
            fan_in: layer.fan_in(),
            fan_out: layer.fan_out(),
            activation: layer.activation(),
        }
    }

    /// Number of input features.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Number of output features.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Fused affine + activation forward over a row-major f32 batch:
    /// `out = activation(input · W + b)`, written into `out` (resized in
    /// place, so steady-state calls are allocation-free).
    ///
    /// Four batch rows are processed per pass so each weight row is
    /// streamed once per row *block*; the inner loop is a unit-stride
    /// multiply-accumulate over `fan_out` f32 lanes, the shape
    /// autovectorizers map onto 8-wide registers. Every output element
    /// starts from the bias and accumulates its `fan_in` terms in
    /// increasing order — identical per-element operation order for every
    /// batch size, which is what makes f32 serving batch-slicing
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `input.len() != batch * fan_in`.
    pub fn forward_into(
        &self,
        input: &[f32],
        batch: usize,
        out: &mut Vec<f32>,
    ) -> Result<(), ShapeError> {
        let (k, n) = (self.fan_in, self.fan_out);
        if input.len() != batch * k {
            return Err(ShapeError {
                op: "inference_forward",
                lhs: (batch, input.len().checked_div(batch).unwrap_or(0)),
                rhs: (k, n),
            });
        }
        out.clear();
        out.resize(batch * n, 0.0);
        let mut i = 0;
        while i + 4 <= batch {
            let (o01, o23) = out[i * n..(i + 4) * n].split_at_mut(2 * n);
            let (o0, o1) = o01.split_at_mut(n);
            let (o2, o3) = o23.split_at_mut(n);
            o0.copy_from_slice(&self.bias);
            o1.copy_from_slice(&self.bias);
            o2.copy_from_slice(&self.bias);
            o3.copy_from_slice(&self.bias);
            for kk in 0..k {
                let a0 = input[i * k + kk];
                let a1 = input[(i + 1) * k + kk];
                let a2 = input[(i + 2) * k + kk];
                let a3 = input[(i + 3) * k + kk];
                let w_row = &self.weights[kk * n..(kk + 1) * n];
                for ((((&w, o0), o1), o2), o3) in w_row
                    .iter()
                    .zip(o0.iter_mut())
                    .zip(o1.iter_mut())
                    .zip(o2.iter_mut())
                    .zip(o3.iter_mut())
                {
                    *o0 += a0 * w;
                    *o1 += a1 * w;
                    *o2 += a2 * w;
                    *o3 += a3 * w;
                }
            }
            i += 4;
        }
        while i < batch {
            let out_row = &mut out[i * n..(i + 1) * n];
            out_row.copy_from_slice(&self.bias);
            for kk in 0..k {
                let a = input[i * k + kk];
                let w_row = &self.weights[kk * n..(kk + 1) * n];
                for (o, &w) in out_row.iter_mut().zip(w_row.iter()) {
                    *o += a * w;
                }
            }
            i += 1;
        }
        for v in out.iter_mut() {
            *v = self.activation.apply_scalar_f32(*v);
        }
        Ok(())
    }
}

/// A frozen [`Mlp`] converted to structure-of-arrays f32 blocks for the
/// serving fast path.
///
/// Conversion happens once (at snapshot-load time in the serving layer);
/// the f64 network stays the source of truth for training, checkpoints and
/// equivalence testing. See the [module docs](self) for the numerics
/// contract this type lives under.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
/// use vtm_nn::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(7);
/// // The paper's actor shape: obs -> 64 -> 64 -> action.
/// let net = MlpConfig::new(8, &[64, 64], 1).build(&mut rng);
/// let fast = InferenceModel::from_mlp(&net);
/// assert_eq!(fast.input_dim(), 8);
/// assert_eq!(fast.output_dim(), 1);
///
/// let obs = vec![0.25; 8];
/// let reference = net.forward_vec(&obs)?;
/// let quantized = fast.forward_vec(&obs)?;
/// assert!((reference[0] - quantized[0]).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceModel {
    layers: Vec<InferenceLayer>,
    input_dim: usize,
    output_dim: usize,
}

impl InferenceModel {
    /// Converts a trained f64 network by rounding every parameter to the
    /// nearest f32, laid out as per-layer contiguous blocks.
    pub fn from_mlp(net: &Mlp) -> Self {
        Self {
            layers: net
                .layers()
                .iter()
                .map(InferenceLayer::from_dense)
                .collect(),
            input_dim: net.input_dim(),
            output_dim: net.output_dim(),
        }
    }

    /// Number of input features.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of output features.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The frozen layers, input to output.
    pub fn layers(&self) -> &[InferenceLayer] {
        &self.layers
    }

    /// Number of frozen scalars (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.fan_in * l.fan_out + l.fan_out)
            .sum()
    }

    /// Batched forward pass over f64 observation rows: rounds the batch to
    /// f32 once, runs every layer through the fused kernel, and widens the
    /// final activations back to f64 for the (f64) action-space squash.
    ///
    /// Per-element operation order is independent of the batch size, so a
    /// row produces bit-identical output whether it is quoted alone or
    /// inside any batch.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when any row's length differs from
    /// [`input_dim`](Self::input_dim).
    pub fn forward_rows(&self, rows: &[&[f64]]) -> Result<Vec<Vec<f64>>, ShapeError> {
        for row in rows {
            if row.len() != self.input_dim {
                return Err(ShapeError {
                    op: "inference_forward_rows",
                    lhs: (rows.len(), row.len()),
                    rhs: (self.input_dim, self.output_dim),
                });
            }
        }
        let batch = rows.len();
        let mut cur: Vec<f32> = Vec::with_capacity(batch * self.input_dim);
        for row in rows {
            cur.extend(row.iter().map(|&v| v as f32));
        }
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward_into(&cur, batch, &mut next)?;
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(cur
            .chunks(self.output_dim.max(1))
            .map(|c| c.iter().map(|&v| v as f64).collect())
            .collect())
    }

    /// Single-row forward pass (see [`forward_rows`](Self::forward_rows)).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `input.len() != input_dim`.
    pub fn forward_vec(&self, input: &[f64]) -> Result<Vec<f64>, ShapeError> {
        let mut out = self.forward_rows(&[input])?;
        Ok(out.pop().unwrap_or_default())
    }

    /// Single-row forward pass returning every layer's activated output
    /// (widened to f64), input side first. Used by the per-layer
    /// error-bound tests that compare each stage against the f64 reference
    /// network.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `input.len() != input_dim`.
    pub fn forward_layers(&self, input: &[f64]) -> Result<Vec<Vec<f64>>, ShapeError> {
        let mut cur: Vec<f32> = input.iter().map(|&v| v as f32).collect();
        if cur.len() != self.input_dim {
            return Err(ShapeError {
                op: "inference_forward_layers",
                lhs: (1, cur.len()),
                rhs: (self.input_dim, self.output_dim),
            });
        }
        let mut next = Vec::new();
        let mut outs = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            layer.forward_into(&cur, 1, &mut next)?;
            outs.push(next.iter().map(|&v| v as f64).collect());
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const ACTIVATIONS: [Activation; 6] = [
        Activation::Linear,
        Activation::Relu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Softplus,
        Activation::LeakyRelu,
    ];

    fn paper_net(seed: u64, hidden: Activation) -> Mlp {
        MlpConfig::new(8, &[64, 64], 2)
            .hidden_activation(hidden)
            .build(&mut StdRng::seed_from_u64(seed))
    }

    fn rows(count: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|r| {
                (0..8)
                    .map(|f| ((r * 13 + f * 7) % 29) as f64 / 29.0 - 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn conversion_preserves_shape_metadata() {
        let net = paper_net(1, Activation::Tanh);
        let fast = InferenceModel::from_mlp(&net);
        assert_eq!(fast.input_dim(), net.input_dim());
        assert_eq!(fast.output_dim(), net.output_dim());
        assert_eq!(fast.parameter_count(), net.parameter_count());
        assert_eq!(fast.layers().len(), net.layers().len());
        for (fl, dl) in fast.layers().iter().zip(net.layers()) {
            assert_eq!((fl.fan_in(), fl.fan_out()), (dl.fan_in(), dl.fan_out()));
            assert_eq!(fl.activation(), dl.activation());
        }
    }

    #[test]
    fn f32_forward_tracks_f64_reference_for_every_activation() {
        for (i, act) in ACTIVATIONS.into_iter().enumerate() {
            let net = paper_net(10 + i as u64, act);
            let fast = InferenceModel::from_mlp(&net);
            for row in rows(16) {
                let reference = net.forward_vec(&row).unwrap();
                let quantized = fast.forward_vec(&row).unwrap();
                for (r, q) in reference.iter().zip(&quantized) {
                    assert!(
                        (r - q).abs() < 1e-3,
                        "{act}: f32 output {q} too far from f64 reference {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_forward_is_bit_identical_to_single_rows() {
        let net = paper_net(3, Activation::Tanh);
        let fast = InferenceModel::from_mlp(&net);
        // 7 rows: exercises one full 4-row block plus a 3-row tail.
        let batch = rows(7);
        let refs: Vec<&[f64]> = batch.iter().map(Vec::as_slice).collect();
        let batched = fast.forward_rows(&refs).unwrap();
        for (row, out) in batch.iter().zip(&batched) {
            assert_eq!(
                out,
                &fast.forward_vec(row).unwrap(),
                "batch membership changed f32 output bits"
            );
        }
    }

    #[test]
    fn per_layer_outputs_chain_to_the_final_output() {
        let net = paper_net(4, Activation::Tanh);
        let fast = InferenceModel::from_mlp(&net);
        let row = &rows(1)[0];
        let layers = fast.forward_layers(row).unwrap();
        assert_eq!(layers.len(), net.layers().len());
        assert_eq!(layers.last().unwrap(), &fast.forward_vec(row).unwrap());
    }

    #[test]
    fn shape_errors_are_typed_not_panics() {
        let fast = InferenceModel::from_mlp(&paper_net(5, Activation::Tanh));
        assert!(fast.forward_vec(&[0.0; 3]).is_err());
        let short = vec![0.0; 3];
        assert!(fast.forward_rows(&[&short]).is_err());
        let bad_batch = vec![0.0f32; 5];
        let mut out = Vec::new();
        assert!(fast.layers()[0]
            .forward_into(&bad_batch, 2, &mut out)
            .is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let fast = InferenceModel::from_mlp(&paper_net(6, Activation::Tanh));
        assert!(fast.forward_rows(&[]).unwrap().is_empty());
    }
}
