//! Weight initialisation schemes for dense layers.

use rand::Rng;

use crate::matrix::Matrix;

/// Weight initialisation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Initializer {
    /// All weights zero (useful for output heads whose initial action should be neutral).
    Zeros,
    /// Uniform in `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f64,
    },
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`. Suited to tanh/sigmoid.
    #[default]
    XavierUniform,
    /// He/Kaiming uniform: `limit = sqrt(6 / fan_in)`. Suited to ReLU-family activations.
    HeUniform,
    /// Orthogonal-ish scaled initialisation used by many PPO implementations:
    /// Xavier uniform multiplied by `gain`.
    ScaledXavier {
        /// Multiplier applied after Xavier sampling (e.g. `0.01` for policy output layers).
        gain: f64,
    },
}

impl Initializer {
    /// Samples a `fan_in x fan_out` weight matrix with the configured scheme.
    pub fn sample<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
        let mut w = Matrix::zeros(fan_in, fan_out);
        let limit = match self {
            Initializer::Zeros => 0.0,
            Initializer::Uniform { limit } => limit,
            Initializer::XavierUniform | Initializer::ScaledXavier { .. } => {
                (6.0 / (fan_in + fan_out).max(1) as f64).sqrt()
            }
            Initializer::HeUniform => (6.0 / fan_in.max(1) as f64).sqrt(),
        };
        if limit > 0.0 {
            for x in w.as_mut_slice() {
                *x = rng.gen_range(-limit..=limit);
            }
        }
        if let Initializer::ScaledXavier { gain } = self {
            w.map_inplace(|x| x * gain);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_initializer_is_all_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = Initializer::Zeros.sample(4, 3, &mut rng);
        assert!(w.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let fan_in = 8;
        let fan_out = 16;
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        let w = Initializer::XavierUniform.sample(fan_in, fan_out, &mut rng);
        assert_eq!(w.shape(), (fan_in, fan_out));
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit + 1e-12));
        // With 128 samples the spread should not collapse to a point.
        assert!(w.max() > w.min());
    }

    #[test]
    fn he_uses_only_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Initializer::HeUniform.sample(2, 100, &mut rng);
        let limit = (6.0_f64 / 2.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit + 1e-12));
    }

    #[test]
    fn scaled_xavier_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Initializer::ScaledXavier { gain: 0.01 }.sample(16, 16, &mut rng);
        let limit = 0.01 * (6.0 / 32.0_f64).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit + 1e-12));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Initializer::XavierUniform.sample(3, 3, &mut StdRng::seed_from_u64(7));
        let b = Initializer::XavierUniform.sample(3, 3, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
