//! Dense row-major matrix type used throughout the neural-network substrate.
//!
//! The matrix is intentionally simple: an owned `Vec<f64>` in row-major order
//! with a `(rows, cols)` shape. All shape mismatches are reported through
//! [`ShapeError`] rather than panics so that callers composing layers can
//! surface configuration errors cleanly.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// Error returned when two matrices have incompatible shapes for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Operation that failed (e.g. `"matmul"`).
    pub op: &'static str,
    /// Shape of the left-hand operand.
    pub lhs: (usize, usize),
    /// Shape of the right-hand operand.
    pub rhs: (usize, usize),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: lhs is {}x{}, rhs is {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use vtm_nn::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, ShapeError> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(ShapeError {
                    op: "from_rows",
                    lhs: (rows.len(), cols),
                    rhs: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a single-row matrix (row vector) from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a single-column matrix (column vector) from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the value at `(row, col)` or `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Returns a view of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable view of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Reshapes the matrix to `rows x cols`, reusing the backing allocation.
    ///
    /// Once the backing vector has grown to its steady-state capacity, further
    /// calls never allocate. Element contents after a resize are unspecified
    /// (the training kernels overwrite their outputs completely); use
    /// [`Matrix::fill`] when a defined value is required.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// This is the simple reference kernel (row-major `i/k/j` loops); the
    /// training hot path uses the register-blocked [`Matrix::matmul_into`],
    /// which produces bit-identical results because every output element
    /// accumulates its `k` terms in the same increasing order.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Self) -> Result<Self, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix multiplication `self * rhs` written into a caller-owned buffer.
    ///
    /// `out` is resized to `self.rows() x rhs.cols()`; when its backing vector
    /// already has enough capacity no allocation is performed, which makes
    /// this the building block of the allocation-free training kernels.
    /// Accumulation runs in increasing-`k` order per output element, exactly
    /// like [`Matrix::matmul`], so the result is bit-identical.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Self, out: &mut Self) -> Result<(), ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError {
                op: "matmul_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.resize(self.rows, rhs.cols);
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        // Four output rows per pass: `rhs` is streamed once per row *block*
        // instead of once per row, quartering the memory traffic on the
        // dominant square layers. Each output element still accumulates its
        // `k` terms in increasing order, so results stay bit-identical to the
        // naive kernel.
        let mut i = 0;
        while i + 4 <= m {
            let (o01, o23) = out.data[i * n..(i + 4) * n].split_at_mut(2 * n);
            let (o0, o1) = o01.split_at_mut(n);
            let (o2, o3) = o23.split_at_mut(n);
            o0.fill(0.0);
            o1.fill(0.0);
            o2.fill(0.0);
            o3.fill(0.0);
            for kk in 0..k {
                let a0 = self.data[i * k + kk];
                let a1 = self.data[(i + 1) * k + kk];
                let a2 = self.data[(i + 2) * k + kk];
                let a3 = self.data[(i + 3) * k + kk];
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for ((((&b, o0), o1), o2), o3) in b_row
                    .iter()
                    .zip(o0.iter_mut())
                    .zip(o1.iter_mut())
                    .zip(o2.iter_mut())
                    .zip(o3.iter_mut())
                {
                    *o0 += a0 * b;
                    *o1 += a1 * b;
                    *o2 += a2 * b;
                    *o3 += a3 * b;
                }
            }
            i += 4;
        }
        while i < m {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            out_row.fill(0.0);
            for kk in 0..k {
                let a = self.data[i * k + kk];
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
            i += 1;
        }
        Ok(())
    }

    /// Transpose-free product `selfᵀ * rhs` written into a caller-owned buffer.
    ///
    /// Equivalent to `self.transpose().matmul(rhs)` without materialising the
    /// transpose: the backward pass uses it for `xᵀ · dZ`. Terms accumulate in
    /// the same `k` order as the transpose-then-multiply path, so results are
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.rows() != rhs.rows()`.
    pub fn matmul_at_b_into(&self, rhs: &Self, out: &mut Self) -> Result<(), ShapeError> {
        if self.rows != rhs.rows {
            return Err(ShapeError {
                op: "matmul_at_b_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.resize(self.cols, rhs.cols);
        out.data.fill(0.0);
        let (batch, m, n) = (self.rows, self.cols, rhs.cols);
        // Four output rows (columns of `self`) per pass so `rhs` is streamed
        // once per block instead of once per output row; the reduction over
        // `k` (the batch dimension) stays in increasing order per element,
        // keeping the result bit-identical to transpose-then-multiply.
        let mut i = 0;
        while i + 4 <= m {
            let (o01, o23) = out.data[i * n..(i + 4) * n].split_at_mut(2 * n);
            let (o0, o1) = o01.split_at_mut(n);
            let (o2, o3) = o23.split_at_mut(n);
            for k in 0..batch {
                let a_row = &self.data[k * m..(k + 1) * m];
                let (a0, a1, a2, a3) = (a_row[i], a_row[i + 1], a_row[i + 2], a_row[i + 3]);
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for ((((&b, o0), o1), o2), o3) in b_row
                    .iter()
                    .zip(o0.iter_mut())
                    .zip(o1.iter_mut())
                    .zip(o2.iter_mut())
                    .zip(o3.iter_mut())
                {
                    *o0 += a0 * b;
                    *o1 += a1 * b;
                    *o2 += a2 * b;
                    *o3 += a3 * b;
                }
            }
            i += 4;
        }
        while i < m {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for k in 0..batch {
                let a = self.data[k * m + i];
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
            i += 1;
        }
        Ok(())
    }

    /// Transpose-free product `self * rhsᵀ` written into a caller-owned buffer.
    ///
    /// Equivalent to `self.matmul(&rhs.transpose())` without materialising the
    /// transpose: the backward pass uses it for `dZ · Wᵀ`. Each output element
    /// is a dot product of two contiguous rows accumulated in increasing-`k`
    /// order, bit-identical to the transpose-then-multiply path.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != rhs.cols()`.
    pub fn matmul_a_bt_into(&self, rhs: &Self, out: &mut Self) -> Result<(), ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError {
                op: "matmul_a_bt_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.resize(self.rows, rhs.rows);
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        // 2x4 register blocking: eight independent accumulator chains hide
        // the floating-point add latency a single running dot product would
        // serialise on, and each `rhs` row block is streamed once per *pair*
        // of output rows. Every output element still sums its `k` terms in
        // increasing order, so results stay bit-identical to
        // transpose-then-multiply.
        let mut i = 0;
        while i + 2 <= m {
            let a0_row = &self.data[i * k..(i + 1) * k];
            let a1_row = &self.data[(i + 1) * k..(i + 2) * k];
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &rhs.data[j * k..(j + 1) * k];
                let b1 = &rhs.data[(j + 1) * k..(j + 2) * k];
                let b2 = &rhs.data[(j + 2) * k..(j + 3) * k];
                let b3 = &rhs.data[(j + 3) * k..(j + 4) * k];
                let mut s = [0.0f64; 8];
                for kk in 0..k {
                    let a0 = a0_row[kk];
                    let a1 = a1_row[kk];
                    s[0] += a0 * b0[kk];
                    s[1] += a0 * b1[kk];
                    s[2] += a0 * b2[kk];
                    s[3] += a0 * b3[kk];
                    s[4] += a1 * b0[kk];
                    s[5] += a1 * b1[kk];
                    s[6] += a1 * b2[kk];
                    s[7] += a1 * b3[kk];
                }
                out.data[i * n + j..i * n + j + 4].copy_from_slice(&s[..4]);
                out.data[(i + 1) * n + j..(i + 1) * n + j + 4].copy_from_slice(&s[4..]);
                j += 4;
            }
            while j < n {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let (mut s0, mut s1) = (0.0, 0.0);
                for kk in 0..k {
                    s0 += a0_row[kk] * b_row[kk];
                    s1 += a1_row[kk] * b_row[kk];
                }
                out.data[i * n + j] = s0;
                out.data[(i + 1) * n + j] = s1;
                j += 1;
            }
            i += 2;
        }
        while i < m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
            i += 1;
        }
        Ok(())
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn add_elem(&self, rhs: &Self) -> Result<Self, ShapeError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn sub_elem(&self, rhs: &Self) -> Result<Self, ShapeError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn hadamard(&self, rhs: &Self) -> Result<Self, ShapeError> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// Element-wise (Hadamard) product written into a caller-owned buffer.
    ///
    /// `out` is resized to the operand shape; no allocation happens once the
    /// buffer has reached its steady-state capacity.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the operand shapes differ.
    pub fn hadamard_into(&self, rhs: &Self, out: &mut Self) -> Result<(), ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError {
                op: "hadamard_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.resize(self.rows, self.cols);
        for ((o, &a), &b) in out
            .data
            .iter_mut()
            .zip(self.data.iter())
            .zip(rhs.data.iter())
        {
            *o = a * b;
        }
        Ok(())
    }

    /// Applies a binary closure element-wise across two equally shaped matrices.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn zip_with<F>(&self, rhs: &Self, op: &'static str, f: F) -> Result<Self, ShapeError>
    where
        F: Fn(f64, f64) -> f64,
    {
        if self.shape() != rhs.shape() {
            return Err(ShapeError {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Applies a unary closure to every element, returning a new matrix.
    pub fn map<F>(&self, f: F) -> Self
    where
        F: Fn(f64) -> f64,
    {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a unary closure to every element in place.
    pub fn map_inplace<F>(&mut self, f: F)
    where
        F: Fn(f64) -> f64,
    {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every element by a scalar, returning a new matrix.
    pub fn scale(&self, s: f64) -> Self {
        self.map(|x| x * s)
    }

    /// Adds `rhs` scaled by `alpha` into `self` in place (`self += alpha * rhs`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn axpy(&mut self, alpha: f64, rhs: &Self) -> Result<(), ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Adds a row vector to every row of the matrix (broadcasting).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `bias` is not a `1 x cols` matrix.
    pub fn add_row_broadcast(&self, bias: &Self) -> Result<Self, ShapeError> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(ShapeError {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: bias.shape(),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        Ok(out)
    }

    /// Sums every row into a single `1 x cols` row vector.
    pub fn sum_rows(&self) -> Self {
        let mut out = Self::zeros(1, self.cols);
        self.sum_rows_into(&mut out);
        out
    }

    /// Sums every row into a caller-owned `1 x cols` row vector (resized as
    /// needed). Accumulation order matches [`Matrix::sum_rows`] exactly.
    pub fn sum_rows_into(&self, out: &mut Self) {
        out.resize(1, self.cols);
        out.data.fill(0.0);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Largest element. Returns negative infinity for an empty matrix.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element. Returns positive infinity for an empty matrix.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Frobenius norm (square root of the sum of squares of all elements).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns `true` if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Clamps every element into `[lo, hi]` in place.
    pub fn clamp_inplace(&mut self, lo: f64, hi: f64) {
        for x in &mut self.data {
            *x = x.clamp(lo, hi);
        }
    }

    /// Returns `true` when the element-wise absolute difference with `other`
    /// never exceeds `tol`. Shapes must match, otherwise `false`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Default for Matrix {
    /// The empty `0 x 0` matrix — the natural seed for reusable buffers that
    /// are later sized with [`Matrix::resize`] or the `_into` kernels.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_elem(rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_elem(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs).expect("matrix += shape mismatch");
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>10.4} ", self.data[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_contents() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Matrix::ones(3, 2);
        assert_eq!(o.sum(), 6.0);
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err.op, "from_vec");
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert_eq!(err.op, "from_rows");
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    /// Deterministic pseudo-random matrix for kernel equivalence tests
    /// (no RNG dependency in this crate's unit tests).
    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise() {
        let a = pseudo_random(5, 7, 1);
        let b = pseudo_random(7, 4, 2);
        let expected = a.matmul(&b).unwrap();
        // Deliberately mis-shaped and dirty buffer: the kernel must resize
        // and fully overwrite it.
        let mut out = Matrix::filled(2, 9, f64::NAN);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, expected);
        // Reuse without reallocation is transparent to the result.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, expected);
        assert!(a.matmul_into(&Matrix::zeros(3, 3), &mut out).is_err());
    }

    #[test]
    fn matmul_at_b_into_matches_transpose_then_matmul() {
        let a = pseudo_random(6, 3, 3);
        let b = pseudo_random(6, 5, 4);
        let expected = a.transpose().matmul(&b).unwrap();
        let mut out = Matrix::zeros(0, 0);
        a.matmul_at_b_into(&b, &mut out).unwrap();
        assert_eq!(out, expected);
        assert!(a.matmul_at_b_into(&Matrix::zeros(5, 2), &mut out).is_err());
    }

    #[test]
    fn matmul_a_bt_into_matches_matmul_with_transpose() {
        let a = pseudo_random(4, 6, 5);
        let b = pseudo_random(3, 6, 6);
        let expected = a.matmul(&b.transpose()).unwrap();
        let mut out = Matrix::zeros(1, 1);
        a.matmul_a_bt_into(&b, &mut out).unwrap();
        assert_eq!(out, expected);
        assert!(a.matmul_a_bt_into(&Matrix::zeros(3, 2), &mut out).is_err());
    }

    #[test]
    fn matmul_does_not_skip_zero_rows() {
        // The old kernel skipped `a == 0.0` inner-loop entries, which silently
        // suppressed NaN/inf propagation (0.0 * inf = NaN must surface).
        let a = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[f64::INFINITY], &[2.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c[(0, 0)].is_nan(), "0 * inf must propagate NaN");
    }

    #[test]
    fn hadamard_into_matches_hadamard() {
        let a = pseudo_random(3, 4, 7);
        let b = pseudo_random(3, 4, 8);
        let expected = a.hadamard(&b).unwrap();
        let mut out = Matrix::zeros(0, 0);
        a.hadamard_into(&b, &mut out).unwrap();
        assert_eq!(out, expected);
        assert!(a.hadamard_into(&Matrix::zeros(4, 3), &mut out).is_err());
    }

    #[test]
    fn sum_rows_into_matches_sum_rows() {
        let a = pseudo_random(5, 3, 9);
        let mut out = Matrix::filled(2, 2, 1.0);
        a.sum_rows_into(&mut out);
        assert_eq!(out, a.sum_rows());
    }

    #[test]
    fn resize_and_fill_reuse_buffer() {
        let mut m = Matrix::zeros(4, 4);
        m.resize(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        m.fill(2.5);
        assert!(m.as_slice().iter().all(|&x| x == 2.5));
        m.resize(3, 3);
        assert_eq!(m.len(), 9);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_shape_and_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t[(0, 2)], 5.0);
        assert_eq!(t[(1, 0)], 2.0);
    }

    #[test]
    fn elementwise_ops_work() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]).unwrap();
        assert_eq!((&a + &b)[(1, 1)], 44.0);
        assert_eq!((&b - &a)[(0, 0)], 9.0);
        assert_eq!(a.hadamard(&b).unwrap()[(0, 1)], 40.0);
        assert_eq!((&a * 2.0)[(1, 0)], 6.0);
        assert_eq!((-&a)[(0, 0)], -1.0);
    }

    #[test]
    fn broadcast_bias_adds_to_every_row() {
        let a = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -1.0]);
        let out = a.add_row_broadcast(&bias).unwrap();
        for r in 0..3 {
            assert_eq!(out[(r, 0)], 1.0);
            assert_eq!(out[(r, 1)], -1.0);
        }
    }

    #[test]
    fn broadcast_bias_rejects_wrong_width() {
        let a = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert!(a.add_row_broadcast(&bias).is_err());
    }

    #[test]
    fn sum_rows_collapses_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let s = a.sum_rows();
        assert_eq!(s.shape(), (1, 2));
        assert_eq!(s[(0, 0)], 9.0);
        assert_eq!(s[(0, 1)], 12.0);
    }

    #[test]
    fn reductions_and_norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert_eq!(a.sum(), -1.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::filled(2, 2, 3.0);
        a.axpy(2.0, &b).unwrap();
        assert!(a.as_slice().iter().all(|&x| (x - 7.0).abs() < 1e-12));
    }

    #[test]
    fn clamp_limits_values() {
        let mut a = Matrix::from_rows(&[&[-10.0, 0.5, 10.0]]).unwrap();
        a.clamp_inplace(-1.0, 1.0);
        assert_eq!(a.as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn rows_and_columns_views() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.column(0), vec![1.0, 3.0]);
        assert_eq!(a.get(1, 1), Some(4.0));
        assert_eq!(a.get(2, 0), None);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn into_vec_roundtrip() {
        let a = Matrix::from_rows(&[&[1.5, -2.5], &[0.0, 4.25]]).unwrap();
        let back = Matrix::from_vec(2, 2, a.clone().into_vec()).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::ones(1, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.all_finite());
    }
}
