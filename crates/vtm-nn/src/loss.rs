//! Scalar loss functions with analytic gradients.

use crate::matrix::{Matrix, ShapeError};

/// Mean squared error between `prediction` and `target`, averaged over all elements.
///
/// # Errors
///
/// Returns a [`ShapeError`] when the shapes differ.
pub fn mse(prediction: &Matrix, target: &Matrix) -> Result<f64, ShapeError> {
    let diff = prediction.sub_elem(target)?;
    Ok(diff.map(|d| d * d).mean())
}

/// Gradient of [`mse`] with respect to `prediction`.
///
/// # Errors
///
/// Returns a [`ShapeError`] when the shapes differ.
pub fn mse_grad(prediction: &Matrix, target: &Matrix) -> Result<Matrix, ShapeError> {
    let n = prediction.len().max(1) as f64;
    Ok(prediction.sub_elem(target)?.scale(2.0 / n))
}

/// Huber (smooth-L1) loss with threshold `delta`, averaged over all elements.
///
/// The Huber loss behaves quadratically for residuals smaller than `delta`
/// and linearly beyond it, which makes value-function regression robust to
/// outlier returns.
///
/// # Errors
///
/// Returns a [`ShapeError`] when the shapes differ.
///
/// # Panics
///
/// Panics if `delta` is not positive.
pub fn huber(prediction: &Matrix, target: &Matrix, delta: f64) -> Result<f64, ShapeError> {
    assert!(delta > 0.0, "huber delta must be positive");
    let diff = prediction.sub_elem(target)?;
    let total: f64 = diff
        .as_slice()
        .iter()
        .map(|&d| {
            let a = d.abs();
            if a <= delta {
                0.5 * d * d
            } else {
                delta * (a - 0.5 * delta)
            }
        })
        .sum();
    Ok(total / prediction.len().max(1) as f64)
}

/// Gradient of [`huber`] with respect to `prediction`.
///
/// # Errors
///
/// Returns a [`ShapeError`] when the shapes differ.
///
/// # Panics
///
/// Panics if `delta` is not positive.
pub fn huber_grad(prediction: &Matrix, target: &Matrix, delta: f64) -> Result<Matrix, ShapeError> {
    assert!(delta > 0.0, "huber delta must be positive");
    let n = prediction.len().max(1) as f64;
    let diff = prediction.sub_elem(target)?;
    Ok(diff.map(|d| {
        if d.abs() <= delta {
            d / n
        } else {
            delta * d.signum() / n
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_matrices_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(mse(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let t = Matrix::from_rows(&[&[0.0, 4.0]]).unwrap();
        // ((1)^2 + (2)^2) / 2 = 2.5
        assert!((mse(&p, &t).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let p = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.25]]).unwrap();
        let t = Matrix::from_rows(&[&[0.0, 1.0], &[1.5, 0.0]]).unwrap();
        let g = mse_grad(&p, &t).unwrap();
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let mut pp = p.clone();
                pp[(r, c)] += h;
                let mut pm = p.clone();
                pm[(r, c)] -= h;
                let numeric = (mse(&pp, &t).unwrap() - mse(&pm, &t).unwrap()) / (2.0 * h);
                assert!((numeric - g[(r, c)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn huber_equals_mse_half_inside_delta() {
        let p = Matrix::from_rows(&[&[0.3, -0.4]]).unwrap();
        let t = Matrix::zeros(1, 2);
        let h = huber(&p, &t, 1.0).unwrap();
        let expected = 0.5 * (0.09 + 0.16) / 2.0;
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn huber_is_linear_outside_delta() {
        let p = Matrix::from_rows(&[&[10.0]]).unwrap();
        let t = Matrix::zeros(1, 1);
        let h = huber(&p, &t, 1.0).unwrap();
        assert!((h - (10.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn huber_grad_matches_finite_difference() {
        let p = Matrix::from_rows(&[&[0.3, -3.0, 1.2]]).unwrap();
        let t = Matrix::from_rows(&[&[0.0, 0.0, 0.0]]).unwrap();
        let g = huber_grad(&p, &t, 1.0).unwrap();
        let h = 1e-6;
        for c in 0..3 {
            let mut pp = p.clone();
            pp[(0, c)] += h;
            let mut pm = p.clone();
            pm[(0, c)] -= h;
            let numeric = (huber(&pp, &t, 1.0).unwrap() - huber(&pm, &t, 1.0).unwrap()) / (2.0 * h);
            assert!((numeric - g[(0, c)]).abs() < 1e-6);
        }
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert!(mse(&a, &b).is_err());
        assert!(huber(&a, &b, 1.0).is_err());
    }
}
