//! Activation functions and their derivatives.
//!
//! Each activation is represented by the [`Activation`] enum so that layer
//! configurations are plain data (serialisable, comparable) rather than boxed
//! closures. The derivative is expressed with respect to the *pre-activation*
//! input `z`, which is what the dense-layer backward pass caches.

use crate::matrix::Matrix;

/// Supported element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Identity: `f(z) = z`.
    #[default]
    Linear,
    /// Rectified linear unit: `f(z) = max(0, z)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid: `f(z) = 1 / (1 + exp(-z))`.
    Sigmoid,
    /// Softplus: `f(z) = ln(1 + exp(z))`, a smooth approximation of ReLU.
    Softplus,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply_scalar(self, z: f64) -> f64 {
        match self {
            Activation::Linear => z,
            Activation::Relu => z.max(0.0),
            Activation::Tanh => z.tanh(),
            Activation::Sigmoid => sigmoid(z),
            Activation::Softplus => softplus(z),
            Activation::LeakyRelu => {
                if z >= 0.0 {
                    z
                } else {
                    0.01 * z
                }
            }
        }
    }

    /// Applies the activation to an f32 scalar (frozen-serving fast path).
    ///
    /// Mirrors [`Activation::apply_scalar`] with the same numerical-
    /// stability branches, evaluated natively in f32. Used by the
    /// [`inference`](crate::inference) kernels; training always goes
    /// through the f64 path.
    pub fn apply_scalar_f32(self, z: f32) -> f32 {
        match self {
            Activation::Linear => z,
            Activation::Relu => z.max(0.0),
            Activation::Tanh => z.tanh(),
            Activation::Sigmoid => sigmoid_f32(z),
            Activation::Softplus => softplus_f32(z),
            Activation::LeakyRelu => {
                if z >= 0.0 {
                    z
                } else {
                    0.01 * z
                }
            }
        }
    }

    /// Derivative of the activation with respect to the pre-activation scalar `z`.
    pub fn derivative_scalar(self, z: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = sigmoid(z);
                s * (1.0 - s)
            }
            Activation::Softplus => sigmoid(z),
            Activation::LeakyRelu => {
                if z >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
        }
    }

    /// Derivative with respect to `z`, computed from the pre-activation `z`
    /// *and* the already-computed output `a = f(z)`.
    ///
    /// For activations whose derivative is a function of the output (tanh:
    /// `1 - a²`, sigmoid: `a(1-a)`, (leaky-)ReLU: sign tests on `a`) this
    /// avoids re-evaluating the transcendental, which is the hot cost of the
    /// backward pass; softplus falls back to the `z`-based formula. Results
    /// are bit-identical to [`Activation::derivative_scalar`]: `a` carries
    /// the exact bits of `f(z)`, so e.g. `1 - a*a` equals the reference's
    /// `let t = z.tanh(); 1 - t*t` exactly.
    pub fn derivative_from_parts(self, z: f64, a: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            // a = max(0, z): a > 0 exactly when z > 0.
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Softplus => sigmoid(z),
            // Branch on z, not on a: a = 0.01 z underflows to -0.0 for tiny
            // negative z, which would flip an a-based sign test.
            Activation::LeakyRelu => {
                if z >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
        }
    }

    /// Applies the activation element-wise to a matrix.
    pub fn apply(self, z: &Matrix) -> Matrix {
        z.map(|x| self.apply_scalar(x))
    }

    /// Element-wise derivative with respect to the pre-activation matrix `z`.
    pub fn derivative(self, z: &Matrix) -> Matrix {
        z.map(|x| self.derivative_scalar(x))
    }

    /// Stable numeric tag used by the binary weight codec.
    pub fn tag(self) -> u8 {
        match self {
            Activation::Linear => 0,
            Activation::Relu => 1,
            Activation::Tanh => 2,
            Activation::Sigmoid => 3,
            Activation::Softplus => 4,
            Activation::LeakyRelu => 5,
        }
    }

    /// Inverse of [`Activation::tag`]; `None` for an unknown tag (e.g. a file
    /// written by a newer format revision).
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Activation::Linear,
            1 => Activation::Relu,
            2 => Activation::Tanh,
            3 => Activation::Sigmoid,
            4 => Activation::Softplus,
            5 => Activation::LeakyRelu,
            _ => return None,
        })
    }

    /// Human-readable name of the activation.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Linear => "linear",
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Softplus => "softplus",
            Activation::LeakyRelu => "leaky_relu",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + exp(z))`.
pub fn softplus(z: f64) -> f64 {
    if z > 30.0 {
        // exp(z) overflows long before this but the function is ~z there.
        z
    } else if z < -30.0 {
        z.exp()
    } else {
        (1.0 + z.exp()).ln()
    }
}

/// Numerically stable logistic sigmoid in f32 (serving fast path).
pub fn sigmoid_f32(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + exp(z))` in f32 (serving fast path).
pub fn softplus_f32(z: f32) -> f32 {
    if z > 30.0 {
        z
    } else if z < -30.0 {
        z.exp()
    } else {
        (1.0 + z.exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 6] = [
        Activation::Linear,
        Activation::Relu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Softplus,
        Activation::LeakyRelu,
    ];

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        for z in [-25.0, -5.0, -0.5, 0.5, 5.0, 25.0] {
            let s = sigmoid(z);
            assert!(s > 0.0 && s < 1.0);
            assert!((s + sigmoid(-z) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softplus_is_positive_and_close_to_relu_for_large_inputs() {
        assert!(softplus(-100.0) >= 0.0);
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn relu_and_leaky_relu_values() {
        assert_eq!(Activation::Relu.apply_scalar(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(2.0), 2.0);
        assert!((Activation::LeakyRelu.apply_scalar(-2.0) + 0.02).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in ALL {
            for z in [-2.3, -0.7, 0.4, 1.9] {
                let numeric = (act.apply_scalar(z + h) - act.apply_scalar(z - h)) / (2.0 * h);
                let analytic = act.derivative_scalar(z);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act} derivative mismatch at {z}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn derivative_from_parts_matches_derivative_scalar_bitwise() {
        for act in ALL {
            // Includes -1e-323: 0.01 * z underflows to -0.0 there, which an
            // output-sign test would misclassify for LeakyRelu.
            for z in [
                -3.0, -1.2, -0.5, -0.0, 0.0, 0.3, 1.7, 25.0, -25.0, -1e-323, 1e-323,
            ] {
                let a = act.apply_scalar(z);
                assert_eq!(
                    act.derivative_from_parts(z, a),
                    act.derivative_scalar(z),
                    "{act} derivative-from-output mismatch at z = {z}"
                );
            }
        }
    }

    #[test]
    fn matrix_application_matches_scalar() {
        let z = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]).unwrap();
        for act in ALL {
            let applied = act.apply(&z);
            for (i, &zi) in z.as_slice().iter().enumerate() {
                assert_eq!(applied.as_slice()[i], act.apply_scalar(zi));
            }
        }
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
        assert!(ALL.iter().all(|a| !a.name().is_empty()));
    }

    #[test]
    fn codec_tags_round_trip_and_reject_unknowns() {
        for a in ALL {
            assert_eq!(Activation::from_tag(a.tag()), Some(a));
        }
        assert_eq!(Activation::from_tag(200), None);
    }

    #[test]
    fn f32_application_tracks_f64_within_f32_epsilon_scale() {
        for act in ALL {
            for z in [-31.0f64, -5.0, -0.5, -1e-4, 0.0, 1e-4, 0.5, 5.0, 31.0] {
                let wide = act.apply_scalar(z);
                let narrow = f64::from(act.apply_scalar_f32(z as f32));
                assert!(
                    (wide - narrow).abs() <= 1e-6 * wide.abs().max(1.0),
                    "{act} f32 divergence at z = {z}: {wide} vs {narrow}"
                );
            }
        }
    }

    #[test]
    fn tanh_derivative_peaks_at_zero() {
        let d0 = Activation::Tanh.derivative_scalar(0.0);
        assert!((d0 - 1.0).abs() < 1e-12);
        assert!(Activation::Tanh.derivative_scalar(3.0) < d0);
    }
}
