//! # vtm-nn — minimal neural-network substrate
//!
//! A small, dependency-light neural-network library written for the
//! reproduction of *"Learning-based Incentive Mechanism for Task
//! Freshness-aware Vehicular Twin Migration"* (ICDCS 2023). The paper's DRL
//! solution uses a two-hidden-layer (64 × 64) actor-critic network trained
//! with PPO; no suitable pure-Rust deep-learning stack is available offline,
//! so this crate provides exactly the pieces that stack needs:
//!
//! * [`matrix::Matrix`] — dense row-major `f64` matrices with the linear
//!   algebra required by fully connected networks,
//! * [`activation::Activation`] — element-wise activations and derivatives,
//! * [`layer::Dense`] / [`mlp::Mlp`] — fully connected layers and networks
//!   with explicit forward/backward passes,
//! * [`inference::InferenceModel`] — a frozen network converted once to
//!   contiguous f32 blocks for the serving fast path (training stays f64),
//! * [`optimizer`] — SGD and Adam,
//! * [`loss`] — MSE and Huber losses with gradients,
//! * [`gradcheck`] — numerical gradient checking used by the test suites.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//! use vtm_nn::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! // The actor network architecture used by the paper: obs -> 64 -> 64 -> action.
//! let net = MlpConfig::new(8, &[64, 64], 1).build(&mut rng);
//! let obs = vec![0.0; 8];
//! let action = net.forward_vec(&obs)?;
//! assert_eq!(action.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod codec;
pub mod gradcheck;
pub mod inference;
pub mod init;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optimizer;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::codec::{CodecError, PayloadReader, PayloadWriter, WeightCodec};
    pub use crate::inference::{InferenceLayer, InferenceModel};
    pub use crate::init::Initializer;
    pub use crate::layer::{Dense, DenseGrads};
    pub use crate::matrix::{Matrix, ShapeError};
    pub use crate::mlp::{Mlp, MlpConfig, MlpGrads, TrainWorkspace};
    pub use crate::optimizer::{Adam, Optimizer, Sgd, VectorAdam};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let m = Matrix::identity(2);
        assert_eq!(m.shape(), (2, 2));
        let _ = Activation::Tanh;
    }
}
