//! Versioned, dependency-free binary codec for network weights and training
//! state.
//!
//! The workspace deliberately carries no serde (the build environment is
//! offline), so persistent policy checkpoints use this small hand-rolled
//! container instead:
//!
//! ```text
//! +---------+----------+---------+---------------+---------+-------------+
//! | "VTMW"  | version  |  kind   |  payload_len  | payload |  checksum   |
//! | 4 bytes | u16 LE   | u16 LE  |    u64 LE     |  bytes  |   u64 LE    |
//! +---------+----------+---------+---------------+---------+-------------+
//! ```
//!
//! The checksum is FNV-1a over the payload bytes, so a truncated or
//! bit-flipped file is rejected with a typed [`CodecError`] instead of
//! producing a silently corrupt network. `kind` tags what the payload
//! encodes ([`KIND_MLP`] for a bare network, [`KIND_POLICY`] for a full
//! policy snapshot), so loading a file as the wrong type fails loudly.
//!
//! Payloads are composed with [`PayloadWriter`] / [`PayloadReader`]: all
//! integers are `u64` little-endian and all floats are `f64` bit patterns,
//! which makes every round-trip bit-exact — the checkpoint tests rely on
//! save → load → evaluate being indistinguishable from the in-memory
//! network.
//!
//! # Examples
//!
//! ```
//! use vtm_nn::codec::{PayloadReader, PayloadWriter, WeightCodec, KIND_MLP};
//!
//! let mut w = PayloadWriter::new();
//! w.write_f64_vec(&[1.0, -2.5]);
//! let bytes = WeightCodec::encode(KIND_MLP, w.as_bytes());
//! let payload = WeightCodec::decode(&bytes, KIND_MLP).unwrap();
//! let mut r = PayloadReader::new(payload);
//! assert_eq!(r.read_f64_vec().unwrap(), vec![1.0, -2.5]);
//! ```

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::matrix::Matrix;

/// File magic identifying the VTM weight container.
pub const MAGIC: [u8; 4] = *b"VTMW";

/// Current container format version.
pub const VERSION: u16 = 1;

/// Payload kind: a bare [`Mlp`](crate::mlp::Mlp) written by
/// [`Mlp::save_to`](crate::mlp::Mlp::save_to).
pub const KIND_MLP: u16 = 1;

/// Payload kind: a full policy snapshot (actor, critic, optimizer state);
/// written by `vtm_rl::snapshot::PolicySnapshot`.
pub const KIND_POLICY: u16 = 2;

/// Payload kind: one admitted quote-request frame in an append-only request
/// journal; written by `vtm-journal`'s `JournalWriter`.
pub const KIND_JOURNAL_FRAME: u16 = 3;

/// Payload kind: a point-in-time service-state snapshot (session store +
/// serving counters) taken at a journal frame boundary; written by
/// `vtm-journal`'s `StateSnapshot`.
pub const KIND_STATE_SNAPSHOT: u16 = 4;

/// Size of the fixed container header (magic + version + kind + payload len).
const HEADER_LEN: usize = 4 + 2 + 2 + 8;

/// Size of the trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// Typed failure modes of the weight codec. Corrupt or truncated files are
/// always reported through this enum — never a panic.
#[derive(Debug)]
pub enum CodecError {
    /// Reading or writing the file failed.
    Io(io::Error),
    /// The file does not start with the `VTMW` magic.
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The container was written by an unknown format version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The container holds a different payload kind than requested.
    WrongKind {
        /// The kind the caller asked for.
        expected: u16,
        /// The kind found in the header.
        found: u16,
    },
    /// The payload bytes do not hash to the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// The file ends before the encoded structure does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload decoded but its contents are structurally invalid.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(err) => write!(f, "i/o error: {err}"),
            CodecError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {MAGIC:?})")
            }
            CodecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported container version {found} (supported: {VERSION})"
                )
            }
            CodecError::WrongKind { expected, found } => {
                write!(f, "wrong payload kind {found} (expected {expected})")
            }
            CodecError::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: stored {expected:#018x}, computed {found:#018x}"
            ),
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            CodecError::Invalid(msg) => write!(f, "invalid payload: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(err: io::Error) -> Self {
        CodecError::Io(err)
    }
}

/// FNV-1a over a byte slice (the workspace's standard fingerprint hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The container codec: frames a payload with magic, version, kind and an
/// FNV-1a checksum. See the module docs for the byte layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeightCodec;

impl WeightCodec {
    /// Frames `payload` into a self-describing byte container.
    pub fn encode(kind: u16, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&fnv1a(payload).to_le_bytes());
        out
    }

    /// Validates the container framing and returns the payload slice.
    ///
    /// Trailing bytes beyond the container are ignored; use
    /// [`WeightCodec::decode_prefix`] when the container is one frame of a
    /// longer stream and the consumed length matters.
    ///
    /// # Errors
    ///
    /// Returns the matching [`CodecError`] for a bad magic, an unsupported
    /// version, a payload-kind mismatch, a truncated file or a checksum
    /// mismatch.
    pub fn decode(bytes: &[u8], expected_kind: u16) -> Result<&[u8], CodecError> {
        Self::decode_prefix(bytes, expected_kind).map(|(payload, _)| payload)
    }

    /// Validates one container at the *front* of `bytes` — which may be
    /// followed by further frames — and returns the payload slice together
    /// with the total number of bytes the container occupies (header +
    /// payload + checksum). This is the streaming entry point the
    /// append-only request journal iterates frames with.
    ///
    /// # Errors
    ///
    /// Same as [`WeightCodec::decode`]; a [`CodecError::Truncated`] whose
    /// `available` equals `bytes.len()` means the stream ends mid-frame.
    pub fn decode_prefix(bytes: &[u8], expected_kind: u16) -> Result<(&[u8], usize), CodecError> {
        if bytes.len() < HEADER_LEN {
            return Err(CodecError::Truncated {
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&bytes[0..4]);
        if magic != MAGIC {
            return Err(CodecError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion { found: version });
        }
        let kind = u16::from_le_bytes([bytes[6], bytes[7]]);
        if kind != expected_kind {
            return Err(CodecError::WrongKind {
                expected: expected_kind,
                found: kind,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let needed = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(CHECKSUM_LEN))
            .ok_or(CodecError::Invalid("payload length overflows".to_string()))?;
        if bytes.len() < needed {
            return Err(CodecError::Truncated {
                needed,
                available: bytes.len(),
            });
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
        let stored = u64::from_le_bytes(
            bytes[HEADER_LEN + payload_len..needed]
                .try_into()
                .expect("8 bytes"),
        );
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch {
                expected: stored,
                found: computed,
            });
        }
        Ok((payload, needed))
    }

    /// The total on-disk size of a container holding `payload_len` payload
    /// bytes (header + payload + checksum).
    pub fn framed_len(payload_len: usize) -> usize {
        HEADER_LEN + payload_len + CHECKSUM_LEN
    }

    /// Frames `payload` and writes it to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Io`] when the file cannot be written.
    pub fn write_file(path: &Path, kind: u16, payload: &[u8]) -> Result<(), CodecError> {
        fs::write(path, Self::encode(kind, payload))?;
        Ok(())
    }

    /// Reads `path`, validates the framing and returns the payload.
    ///
    /// # Errors
    ///
    /// Returns the matching [`CodecError`] for i/o failures and every form of
    /// file corruption (see [`WeightCodec::decode`]).
    pub fn read_file(path: &Path, expected_kind: u16) -> Result<Vec<u8>, CodecError> {
        let bytes = fs::read(path)?;
        Self::decode(&bytes, expected_kind).map(<[u8]>::to_vec)
    }
}

/// Append-only payload builder. All values are little-endian; floats are
/// stored as raw `f64` bit patterns so round-trips are bit-exact.
#[derive(Debug, Clone, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` (stored as `u64`).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Appends a boolean (one byte, 0 or 1).
    pub fn write_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends an `f64` bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn write_f64_vec(&mut self, values: &[f64]) {
        self.write_usize(values.len());
        for &v in values {
            self.write_f64(v);
        }
    }

    /// Appends a length-prefixed raw byte slice (e.g. a nested payload).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed `usize` slice.
    pub fn write_usize_vec(&mut self, values: &[usize]) {
        self.write_usize(values.len());
        for &v in values {
            self.write_usize(v);
        }
    }

    /// Appends a matrix: rows, cols, then the row-major data.
    pub fn write_matrix(&mut self, m: &Matrix) {
        self.write_usize(m.rows());
        self.write_usize(m.cols());
        for &v in m.as_slice() {
            self.write_f64(v);
        }
    }
}

/// Sequential payload decoder matching [`PayloadWriter`]'s encoding. Every
/// read validates the remaining length first and reports shortfalls as
/// [`CodecError::Truncated`].
#[derive(Debug, Clone)]
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Creates a reader over a decoded payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: self.pos + n,
                available: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn read_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] on a short read, or
    /// [`CodecError::Invalid`] when the value does not fit a `usize`.
    pub fn read_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid(format!("length {v} overflows usize")))
    }

    /// Reads a boolean.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] on a short read, or
    /// [`CodecError::Invalid`] when the byte is neither 0 nor 1.
    pub fn read_bool(&mut self) -> Result<bool, CodecError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid(format!("invalid boolean byte {other}"))),
        }
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn read_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a length-prefixed `f64` vector.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] when the declared length exceeds the
    /// remaining bytes.
    pub fn read_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.read_usize()?;
        self.check_capacity(len)?;
        (0..len).map(|_| self.read_f64()).collect()
    }

    /// Reads a length-prefixed raw byte slice written by
    /// [`PayloadWriter::write_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] when the declared length exceeds the
    /// remaining bytes.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.read_usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed `usize` vector.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] when the declared length exceeds the
    /// remaining bytes.
    pub fn read_usize_vec(&mut self) -> Result<Vec<usize>, CodecError> {
        let len = self.read_usize()?;
        self.check_capacity(len)?;
        (0..len).map(|_| self.read_usize()).collect()
    }

    /// Reads a matrix written by [`PayloadWriter::write_matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] on a short read or
    /// [`CodecError::Invalid`] when the dimensions are inconsistent.
    pub fn read_matrix(&mut self) -> Result<Matrix, CodecError> {
        let rows = self.read_usize()?;
        let cols = self.read_usize()?;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| CodecError::Invalid(format!("matrix {rows}x{cols} overflows")))?;
        self.check_capacity(len)?;
        let data: Vec<f64> = (0..len)
            .map(|_| self.read_f64())
            .collect::<Result<_, _>>()?;
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| CodecError::Invalid(format!("matrix shape error: {e}")))
    }

    /// Rejects declared element counts that cannot fit the remaining bytes,
    /// so a corrupted length prefix fails fast instead of attempting a huge
    /// allocation.
    fn check_capacity(&self, elements: usize) -> Result<(), CodecError> {
        let needed = elements
            .checked_mul(8)
            .ok_or_else(|| CodecError::Invalid(format!("length {elements} overflows")))?;
        if needed > self.remaining() {
            return Err(CodecError::Truncated {
                needed: self.pos + needed,
                available: self.bytes.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload() -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.write_u64(42);
        w.write_bool(true);
        w.write_f64(-1.25);
        w.write_f64_vec(&[1.0, 2.0, 3.0]);
        w.write_usize_vec(&[64, 64]);
        w.write_matrix(&Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap());
        w.into_bytes()
    }

    #[test]
    fn payload_round_trips_bit_exactly() {
        let payload = sample_payload();
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.read_u64().unwrap(), 42);
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_f64().unwrap().to_bits(), (-1.25f64).to_bits());
        assert_eq!(r.read_f64_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.read_usize_vec().unwrap(), vec![64, 64]);
        let m = r.read_matrix().unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 0)], 3.0);
        assert!(r.is_exhausted());
    }

    #[test]
    fn container_round_trips() {
        let payload = sample_payload();
        let framed = WeightCodec::encode(KIND_MLP, &payload);
        let decoded = WeightCodec::decode(&framed, KIND_MLP).unwrap();
        assert_eq!(decoded, payload.as_slice());
    }

    #[test]
    fn decode_prefix_iterates_concatenated_frames() {
        let payloads: [&[u8]; 3] = [b"first", b"second frame", b""];
        let mut stream = Vec::new();
        for payload in payloads {
            stream.extend_from_slice(&WeightCodec::encode(KIND_JOURNAL_FRAME, payload));
        }
        let mut offset = 0;
        for payload in payloads {
            let (decoded, consumed) =
                WeightCodec::decode_prefix(&stream[offset..], KIND_JOURNAL_FRAME).unwrap();
            assert_eq!(decoded, payload);
            assert_eq!(consumed, WeightCodec::framed_len(payload.len()));
            offset += consumed;
        }
        assert_eq!(offset, stream.len());
        // A partial trailing frame reports Truncated with the stream's
        // remaining length, so a scanner can tell "ends mid-frame" apart
        // from mid-stream corruption.
        stream.extend_from_slice(&WeightCodec::encode(KIND_JOURNAL_FRAME, b"tail")[..7]);
        match WeightCodec::decode_prefix(&stream[offset..], KIND_JOURNAL_FRAME) {
            Err(CodecError::Truncated { available, .. }) => assert_eq!(available, 7),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut framed = WeightCodec::encode(KIND_MLP, b"abc");
        framed[0] = b'X';
        match WeightCodec::decode(&framed, KIND_MLP) {
            Err(CodecError::BadMagic { found }) => assert_eq!(found[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut framed = WeightCodec::encode(KIND_MLP, b"abc");
        framed[4] = 99;
        assert!(matches!(
            WeightCodec::decode(&framed, KIND_MLP),
            Err(CodecError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let framed = WeightCodec::encode(KIND_POLICY, b"abc");
        assert!(matches!(
            WeightCodec::decode(&framed, KIND_MLP),
            Err(CodecError::WrongKind {
                expected: KIND_MLP,
                found: KIND_POLICY,
            })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let payload = sample_payload();
        let mut framed = WeightCodec::encode(KIND_MLP, &payload);
        framed[HEADER_LEN + 3] ^= 0x40;
        assert!(matches!(
            WeightCodec::decode(&framed, KIND_MLP),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_reported_at_every_level() {
        let payload = sample_payload();
        let framed = WeightCodec::encode(KIND_MLP, &payload);
        // Shorter than the header.
        assert!(matches!(
            WeightCodec::decode(&framed[..7], KIND_MLP),
            Err(CodecError::Truncated { .. })
        ));
        // Header intact, payload cut short.
        assert!(matches!(
            WeightCodec::decode(&framed[..framed.len() - 12], KIND_MLP),
            Err(CodecError::Truncated { .. })
        ));
        // Reader-level truncation.
        let mut r = PayloadReader::new(&payload[..4]);
        assert!(matches!(r.read_u64(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut w = PayloadWriter::new();
        w.write_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert!(matches!(
            r.read_f64_vec(),
            Err(CodecError::Truncated { .. }) | Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn file_round_trip_and_io_error() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("vtm_codec_test_{}.vtm", std::process::id()));
        WeightCodec::write_file(&path, KIND_MLP, b"hello").unwrap();
        assert_eq!(WeightCodec::read_file(&path, KIND_MLP).unwrap(), b"hello");
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            WeightCodec::read_file(&path, KIND_MLP),
            Err(CodecError::Io(_))
        ));
    }

    #[test]
    fn errors_display_helpfully() {
        let msgs = [
            CodecError::BadMagic { found: *b"NOPE" }.to_string(),
            CodecError::UnsupportedVersion { found: 9 }.to_string(),
            CodecError::WrongKind {
                expected: 1,
                found: 2,
            }
            .to_string(),
            CodecError::ChecksumMismatch {
                expected: 1,
                found: 2,
            }
            .to_string(),
            CodecError::Truncated {
                needed: 8,
                available: 3,
            }
            .to_string(),
            CodecError::Invalid("x".to_string()).to_string(),
        ];
        for msg in msgs {
            assert!(!msg.is_empty());
        }
    }
}
