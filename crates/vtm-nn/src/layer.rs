//! Fully connected (dense) layer with explicit forward / backward passes.

use rand::Rng;

use crate::activation::Activation;
use crate::init::Initializer;
use crate::matrix::{Matrix, ShapeError};

/// A fully connected layer computing `a = activation(x W + b)`.
///
/// Inputs are batches of row vectors: an input of shape `batch x fan_in`
/// produces an output of shape `batch x fan_out`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
}

/// Values cached during the forward pass that the backward pass needs.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCache {
    /// The layer input (`batch x fan_in`).
    pub input: Matrix,
    /// Pre-activation values `x W + b` (`batch x fan_out`).
    pub pre_activation: Matrix,
}

/// Gradients of the loss with respect to a dense layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGrads {
    /// Gradient w.r.t. the weight matrix (`fan_in x fan_out`).
    pub weights: Matrix,
    /// Gradient w.r.t. the bias row vector (`1 x fan_out`).
    pub bias: Matrix,
}

impl DenseGrads {
    /// A zero gradient with the same shapes as `layer`'s parameters.
    pub fn zeros_like(layer: &Dense) -> Self {
        Self {
            weights: Matrix::zeros(layer.fan_in(), layer.fan_out()),
            bias: Matrix::zeros(1, layer.fan_out()),
        }
    }

    /// Resizes the gradient buffers to match `layer`'s parameter shapes,
    /// reusing existing allocations. Contents are unspecified afterwards (the
    /// fused backward kernel overwrites them completely).
    pub fn ensure_like(&mut self, layer: &Dense) {
        self.weights.resize(layer.fan_in(), layer.fan_out());
        self.bias.resize(1, layer.fan_out());
    }

    /// Accumulates another gradient into this one (`self += other`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the gradient shapes differ.
    pub fn accumulate(&mut self, other: &DenseGrads) -> Result<(), ShapeError> {
        self.weights.axpy(1.0, &other.weights)?;
        self.bias.axpy(1.0, &other.bias)?;
        Ok(())
    }

    /// Scales the gradient in place.
    pub fn scale_inplace(&mut self, s: f64) {
        self.weights.map_inplace(|x| x * s);
        self.bias.map_inplace(|x| x * s);
    }

    /// Euclidean norm of the concatenated gradient (used for gradient clipping).
    pub fn norm(&self) -> f64 {
        (self.weights.frobenius_norm().powi(2) + self.bias.frobenius_norm().powi(2)).sqrt()
    }
}

impl Dense {
    /// Creates a new dense layer with random weights.
    pub fn new<R: Rng + ?Sized>(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        initializer: Initializer,
        rng: &mut R,
    ) -> Self {
        Self {
            weights: initializer.sample(fan_in, fan_out, rng),
            bias: Matrix::zeros(1, fan_out),
            activation,
        }
    }

    /// Creates a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `bias` is not `1 x weights.cols()`.
    pub fn from_parameters(
        weights: Matrix,
        bias: Matrix,
        activation: Activation,
    ) -> Result<Self, ShapeError> {
        if bias.rows() != 1 || bias.cols() != weights.cols() {
            return Err(ShapeError {
                op: "dense_from_parameters",
                lhs: weights.shape(),
                rhs: bias.shape(),
            });
        }
        Ok(Self {
            weights,
            bias,
            activation,
        })
    }

    /// Number of input features.
    pub fn fan_in(&self) -> usize {
        self.weights.rows()
    }

    /// Number of output features.
    pub fn fan_out(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Immutable view of the bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Mutable access to the weight matrix (used by optimizers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Mutable access to the bias row vector (used by optimizers).
    pub fn bias_mut(&mut self) -> &mut Matrix {
        &mut self.bias
    }

    /// Number of trainable scalars in the layer.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass without caching (inference).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `input.cols() != fan_in`.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix, ShapeError> {
        let z = input.matmul(&self.weights)?.add_row_broadcast(&self.bias)?;
        Ok(self.activation.apply(&z))
    }

    /// Forward pass that also returns the cache required by [`Dense::backward`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `input.cols() != fan_in`.
    pub fn forward_train(&self, input: &Matrix) -> Result<(Matrix, DenseCache), ShapeError> {
        let pre = input.matmul(&self.weights)?.add_row_broadcast(&self.bias)?;
        let out = self.activation.apply(&pre);
        Ok((
            out,
            DenseCache {
                input: input.clone(),
                pre_activation: pre,
            },
        ))
    }

    /// Fused training forward kernel writing into caller-owned buffers.
    ///
    /// Computes `pre = input · W + b` and `out = activation(pre)` in one pass
    /// per row, without allocating: `pre` and `out` are resized in place
    /// (allocation-free once they reach steady-state capacity) and the input
    /// is *not* cloned — the caller keeps it alive for the backward pass
    /// instead, replacing the owning [`DenseCache`]. Results are bit-identical
    /// to [`Dense::forward_train`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `input.cols() != fan_in`.
    pub fn affine_into(
        &self,
        input: &Matrix,
        pre: &mut Matrix,
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        let (batch, fan_in) = input.shape();
        if fan_in != self.fan_in() {
            return Err(ShapeError {
                op: "affine_into",
                lhs: input.shape(),
                rhs: self.weights.shape(),
            });
        }
        let fan_out = self.fan_out();
        // z = x · W, accumulated in the same k order as `matmul`, then z += b
        // and a = f(z) in one epilogue pass per row — bit-identical to
        // `matmul` + `add_row_broadcast` + `Activation::apply`.
        input
            .matmul_into(&self.weights, pre)
            .expect("shape already checked");
        out.resize(batch, fan_out);
        let bias = self.bias.as_slice();
        let act = self.activation;
        let pre_data = pre.as_mut_slice();
        let out_data = out.as_mut_slice();
        for i in 0..batch {
            let pre_row = &mut pre_data[i * fan_out..(i + 1) * fan_out];
            let out_row = &mut out_data[i * fan_out..(i + 1) * fan_out];
            for ((p, o), &b) in pre_row.iter_mut().zip(out_row.iter_mut()).zip(bias.iter()) {
                *p += b;
                *o = act.apply_scalar(*p);
            }
        }
        Ok(())
    }

    /// Fused backward kernel writing into caller-owned buffers.
    ///
    /// `input`, `pre` and `output` must come from a matching
    /// [`Dense::affine_into`] (or [`Dense::forward_train`]) call; the cached
    /// output lets the activation derivative reuse the forward tanh/sigmoid
    /// via [`Activation::derivative_from_parts`] instead of re-evaluating it.
    /// `grad_pre` is scratch for `dL/dz`; `grads` is fully overwritten with
    /// the parameter gradients; when `grad_input` is `Some`, the gradient
    /// with respect to the layer input is written there (pass `None` for the
    /// first layer to skip the unused product). No transpose is materialised:
    /// `dL/dW = xᵀ · dZ` uses [`Matrix::matmul_at_b_into`] and `dL/dx = dZ ·
    /// Wᵀ` uses [`Matrix::matmul_a_bt_into`], both bit-identical to
    /// [`Dense::backward`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `grad_output` does not match `pre`'s
    /// shape or the cached shapes are inconsistent.
    #[allow(clippy::too_many_arguments)] // backward kernel; every operand is a distinct cache
    pub fn backward_into(
        &self,
        input: &Matrix,
        pre: &Matrix,
        output: &Matrix,
        grad_output: &Matrix,
        grad_pre: &mut Matrix,
        grads: &mut DenseGrads,
        grad_input: Option<&mut Matrix>,
    ) -> Result<(), ShapeError> {
        // dL/dz = dL/da * f'(z), fused with the activation derivative so no
        // intermediate derivative matrix is materialised.
        if grad_output.shape() != pre.shape() || output.shape() != pre.shape() {
            return Err(ShapeError {
                op: "backward_into",
                lhs: grad_output.shape(),
                rhs: pre.shape(),
            });
        }
        let (batch, fan_out) = pre.shape();
        grad_pre.resize(batch, fan_out);
        let act = self.activation;
        for (((g, &go), &z), &a) in grad_pre
            .as_mut_slice()
            .iter_mut()
            .zip(grad_output.as_slice().iter())
            .zip(pre.as_slice().iter())
            .zip(output.as_slice().iter())
        {
            *g = go * act.derivative_from_parts(z, a);
        }
        grads.ensure_like(self);
        input.matmul_at_b_into(grad_pre, &mut grads.weights)?;
        grad_pre.sum_rows_into(&mut grads.bias);
        if let Some(gi) = grad_input {
            grad_pre.matmul_a_bt_into(&self.weights, gi)?;
        }
        Ok(())
    }

    /// Backward pass.
    ///
    /// `grad_output` is the gradient of the loss with respect to the layer's
    /// *activated* output (`batch x fan_out`). Returns the gradient with
    /// respect to the layer input together with the parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `grad_output` does not match the cached
    /// pre-activation shape.
    pub fn backward(
        &self,
        cache: &DenseCache,
        grad_output: &Matrix,
    ) -> Result<(Matrix, DenseGrads), ShapeError> {
        // dL/dz = dL/da * f'(z)
        let act_grad = self.activation.derivative(&cache.pre_activation);
        let grad_pre = grad_output.hadamard(&act_grad)?;
        // dL/dW = x^T (dL/dz), dL/db = column sums of dL/dz, dL/dx = (dL/dz) W^T
        let grad_weights = cache.input.transpose().matmul(&grad_pre)?;
        let grad_bias = grad_pre.sum_rows();
        let grad_input = grad_pre.matmul(&self.weights.transpose())?;
        Ok((
            grad_input,
            DenseGrads {
                weights: grad_weights,
                bias: grad_bias,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let w = Matrix::from_rows(&[&[0.5, -0.25], &[1.0, 0.75], &[-0.5, 0.1]]).unwrap();
        let b = Matrix::row_vector(&[0.1, -0.2]);
        Dense::from_parameters(w, b, Activation::Tanh).unwrap()
    }

    #[test]
    fn forward_shapes_and_values() {
        let l = layer();
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 2));
        // z0 = 1*0.5 + 2*1.0 + 3*(-0.5) + 0.1 = 1.1, z1 = -0.25 + 1.5 + 0.3 - 0.2 = 1.35
        assert!((y[(0, 0)] - 1.1_f64.tanh()).abs() < 1e-12);
        assert!((y[(0, 1)] - 1.35_f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn forward_rejects_wrong_input_width() {
        let l = layer();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(l.forward(&x).is_err());
    }

    #[test]
    fn from_parameters_rejects_bad_bias() {
        let w = Matrix::zeros(2, 3);
        let b = Matrix::zeros(1, 2);
        assert!(Dense::from_parameters(w, b, Activation::Linear).is_err());
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut l = Dense::new(4, 3, Activation::Tanh, Initializer::XavierUniform, &mut rng);
        let x = Matrix::from_rows(&[&[0.3, -0.8, 1.2, 0.05], &[0.9, 0.1, -0.4, -1.0]]).unwrap();
        // Scalar loss: sum of outputs.
        let loss = |l: &Dense, x: &Matrix| l.forward(x).unwrap().sum();

        let (_, cache) = l.forward_train(&x).unwrap();
        let grad_out = Matrix::ones(2, 3);
        let (grad_input, grads) = l.backward(&cache, &grad_out).unwrap();

        let h = 1e-6;
        // Check weight gradients.
        for r in 0..l.fan_in() {
            for c in 0..l.fan_out() {
                let orig = l.weights()[(r, c)];
                l.weights_mut()[(r, c)] = orig + h;
                let up = loss(&l, &x);
                l.weights_mut()[(r, c)] = orig - h;
                let down = loss(&l, &x);
                l.weights_mut()[(r, c)] = orig;
                let numeric = (up - down) / (2.0 * h);
                assert!(
                    (numeric - grads.weights[(r, c)]).abs() < 1e-5,
                    "dW({r},{c}) numeric {numeric} analytic {}",
                    grads.weights[(r, c)]
                );
            }
        }
        // Check bias gradients.
        for c in 0..l.fan_out() {
            let orig = l.bias()[(0, c)];
            l.bias_mut()[(0, c)] = orig + h;
            let up = loss(&l, &x);
            l.bias_mut()[(0, c)] = orig - h;
            let down = loss(&l, &x);
            l.bias_mut()[(0, c)] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!((numeric - grads.bias[(0, c)]).abs() < 1e-5);
        }
        // Check input gradients.
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp[(r, c)] += h;
                let mut xm = x.clone();
                xm[(r, c)] -= h;
                let numeric = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
                assert!((numeric - grad_input[(r, c)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn affine_into_matches_forward_train_bitwise() {
        let mut rng = StdRng::seed_from_u64(42);
        let l = Dense::new(5, 4, Activation::Tanh, Initializer::XavierUniform, &mut rng);
        let x = Matrix::from_rows(&[
            &[0.3, -0.8, 1.2, 0.05, -1.4],
            &[0.9, 0.1, -0.4, -1.0, 0.6],
            &[0.0, 2.0, -2.0, 0.5, 0.0],
        ])
        .unwrap();
        let (out_ref, cache) = l.forward_train(&x).unwrap();
        let mut pre = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        l.affine_into(&x, &mut pre, &mut out).unwrap();
        assert_eq!(pre, cache.pre_activation);
        assert_eq!(out, out_ref);
        // Rejects mismatched input width.
        let bad = Matrix::zeros(2, 3);
        assert!(l.affine_into(&bad, &mut pre, &mut out).is_err());
    }

    #[test]
    fn backward_into_matches_backward_bitwise() {
        let mut rng = StdRng::seed_from_u64(43);
        let l = Dense::new(4, 3, Activation::Tanh, Initializer::XavierUniform, &mut rng);
        let x = Matrix::from_rows(&[&[0.3, -0.8, 1.2, 0.05], &[0.9, 0.1, -0.4, -1.0]]).unwrap();
        let (out, cache) = l.forward_train(&x).unwrap();
        let grad_out = out.map(|v| 0.5 * v - 0.25);
        let (grad_input_ref, grads_ref) = l.backward(&cache, &grad_out).unwrap();

        let mut pre = Matrix::zeros(0, 0);
        let mut act = Matrix::zeros(0, 0);
        l.affine_into(&x, &mut pre, &mut act).unwrap();
        let mut grad_pre = Matrix::zeros(0, 0);
        let mut grads = DenseGrads::zeros_like(&l);
        let mut grad_input = Matrix::zeros(0, 0);
        l.backward_into(
            &x,
            &pre,
            &act,
            &grad_out,
            &mut grad_pre,
            &mut grads,
            Some(&mut grad_input),
        )
        .unwrap();
        assert_eq!(grads.weights, grads_ref.weights);
        assert_eq!(grads.bias, grads_ref.bias);
        assert_eq!(grad_input, grad_input_ref);

        // `None` skips the input gradient but still produces parameter grads.
        let mut grads2 = DenseGrads::zeros_like(&l);
        l.backward_into(&x, &pre, &act, &grad_out, &mut grad_pre, &mut grads2, None)
            .unwrap();
        assert_eq!(grads2.weights, grads_ref.weights);

        // Mismatched upstream gradient is rejected.
        let bad = Matrix::zeros(2, 5);
        assert!(l
            .backward_into(&x, &pre, &act, &bad, &mut grad_pre, &mut grads, None)
            .is_err());
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let l = layer();
        let mut g = DenseGrads::zeros_like(&l);
        let mut g2 = DenseGrads::zeros_like(&l);
        g2.weights.map_inplace(|_| 2.0);
        g2.bias.map_inplace(|_| 4.0);
        g.accumulate(&g2).unwrap();
        g.scale_inplace(0.5);
        assert!(g
            .weights
            .as_slice()
            .iter()
            .all(|&x| (x - 1.0).abs() < 1e-12));
        assert!(g.bias.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-12));
        assert!(g.norm() > 0.0);
    }

    #[test]
    fn parameter_count_is_consistent() {
        let l = layer();
        assert_eq!(l.parameter_count(), 3 * 2 + 2);
    }
}
